//! Sequential circuits: partitioning with the enhanced MFVS (§4.2.1) and
//! computing signal probabilities across latch boundaries.
//!
//! ```sh
//! cargo run --example sequential_partitioning
//! ```

use dominolp::phase::flow::{minimize_power, FlowConfig};
use dominolp::phase::prob::{compute_probabilities, ProbabilityConfig};
use dominolp::sgraph::{extract_sgraph, mfvs, MfvsConfig};
use dominolp::workloads::{generate, GeneratorSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A sequential control block: 20 flip-flops over windowed logic.
    let spec = GeneratorSpec {
        n_latches: 20,
        ..GeneratorSpec::control_block("fsm_block", 24, 10, 220, 11)
    };
    let net = generate(&spec)?;
    println!(
        "sequential block: {} inputs, {} outputs, {} flip-flops",
        net.inputs().len(),
        net.outputs().len(),
        net.latches().len()
    );

    // The s-graph and its feedback structure.
    let g = extract_sgraph(&net);
    println!(
        "s-graph: {} vertices, {} edges, {} SCCs",
        g.vertex_count(),
        g.edge_count(),
        g.sccs().len()
    );
    let enhanced = mfvs(&g, &MfvsConfig::default());
    let plain = mfvs(
        &g,
        &MfvsConfig {
            symmetry: false,
            descending_weight: true,
        },
    );
    println!(
        "feedback vertex set: enhanced {} flip-flops (symmetry merges {}), plain CBA {}",
        enhanced.fvs.len(),
        enhanced.stats.symmetry_merges,
        plain.fvs.len()
    );

    // Signal probabilities through the partition: one vs four fixpoint
    // sweeps.
    let pi = vec![0.5; net.inputs().len()];
    for sweeps in [1usize, 4] {
        let probs = compute_probabilities(
            &net,
            &pi,
            &ProbabilityConfig {
                sweeps,
                ..ProbabilityConfig::default()
            },
        )?;
        let latch_probs: Vec<f64> = net
            .latches()
            .iter()
            .map(|&l| probs.get(l.index()))
            .collect();
        let avg = latch_probs.iter().sum::<f64>() / latch_probs.len() as f64;
        println!(
            "sweeps = {sweeps}: cut {} flops as pseudo-inputs, mean latch probability {avg:.3}",
            probs.partition().map(|p| p.cut.len()).unwrap_or(0)
        );
    }

    // Full min-power flow on the sequential block: phases are chosen for
    // primary outputs *and* latch data inputs.
    let report = minimize_power(&net, &pi, &FlowConfig::default())?;
    println!(
        "min-power flow: {} view outputs ({} POs + {} latch data), {} flipped, \
         est. switching {:.2}",
        report.assignment.len(),
        net.outputs().len(),
        net.latches().len(),
        report.assignment.negative_count(),
        report.power.total()
    );
    assert!(report.domino.is_inverter_free());
    Ok(())
}
