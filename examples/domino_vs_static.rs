//! Property 2.1 and 2.2 in action: domino switching equals signal
//! probability and never glitches; static CMOS follows `2p(1−p)` and *does*
//! glitch under unit delays.
//!
//! ```sh
//! cargo run --example domino_vs_static
//! ```

use dominolp::phase::power::{domino_switching, static_switching};
use dominolp::phase::prob::{compute_probabilities, ProbabilityConfig};
use dominolp::phase::{DominoSynthesizer, PhaseAssignment};
use dominolp::sim::{measure_domino_switching, simulate_static, SimConfig};
use dominolp::workloads::{generate, GeneratorSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = GeneratorSpec::control_block("blk", 20, 8, 90, 21);
    let net = generate(&spec)?;
    let pi = vec![0.5; net.inputs().len()];
    let cfg = SimConfig {
        cycles: 30_000,
        warmup: 32,
        seed: 2,
        ..SimConfig::default()
    };

    // Domino: zero-delay analysis is exact (Property 2.2) — compare the
    // BDD estimate with event counts from simulation.
    let probs = compute_probabilities(&net, &pi, &ProbabilityConfig::default())?;
    let synth = DominoSynthesizer::new(&net)?;
    let n = synth.view_outputs().len();
    let domino = synth.synthesize(&PhaseAssignment::all_positive(n))?;
    let est: f64 = domino
        .gates()
        .iter()
        .map(|g| {
            let p = probs.get(g.source.index());
            domino_switching(if g.complemented { 1.0 - p } else { p })
        })
        .sum();
    let sim = measure_domino_switching(&domino, &pi, &cfg);
    println!("domino block ({} gates):", domino.gate_count());
    println!("  BDD-estimated switching / cycle: {est:.2}");
    println!("  simulated events / cycle:        {:.2}", sim.block);
    println!(
        "  relative error: {:.2}% — zero-delay estimation is exact for domino\n",
        100.0 * (sim.block - est).abs() / est
    );

    // Static: unit-delay simulation shows glitching that no zero-delay
    // model can see.
    let st = simulate_static(&net, &pi, &cfg);
    println!("same logic as static CMOS (unit-delay simulation):");
    println!("  transitions / cycle: {:.2}", st.transitions_per_cycle());
    println!(
        "  glitch transitions:  {:.1}% of all transitions",
        100.0 * st.glitch_fraction()
    );
    println!(
        "\nFigure 2 reference points: at p = 0.9, domino switches {:.2}, static {:.2}",
        domino_switching(0.9),
        static_switching(0.9)
    );
    Ok(())
}
