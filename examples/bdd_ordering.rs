//! The §4.2.2 BDD variable ordering heuristic at work: reverse-topological,
//! fanout-cone-weighted orders shrink the shared BDD of a convergent
//! domino block.
//!
//! ```sh
//! cargo run --example bdd_ordering
//! ```

use dominolp::bdd::circuit::CircuitBdds;
use dominolp::bdd::ordering::{paper_order, random_order, topological_order};
use dominolp::workloads::figures::fig10_network;
use dominolp::workloads::{generate, GeneratorSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure 10 toy circuit.
    let net = fig10_network()?;
    println!("Figure 10 circuit (P = x1·x2·x3, Q = x3·x4, R = Q + x5):");
    for (label, order) in [
        ("paper (reverse topo)", paper_order(&net)),
        ("topological", topological_order(&net)),
    ] {
        let bdds = CircuitBdds::build_with_order(&net, order.clone())?;
        let vars: Vec<String> = order.iter().map(|v| format!("x{}", v + 1)).collect();
        println!(
            "  {label:<22} order {:<18} shared nodes {}",
            vars.join(","),
            bdds.output_node_count(&net)
        );
    }

    // A realistic convergent control block.
    let spec = GeneratorSpec::control_block("conv", 48, 16, 420, 9);
    let net = generate(&spec)?;
    println!("\nconvergent control block ({} inputs, {} gates):", 48, 420);
    let n = net.inputs().len();
    for (label, order) in [
        ("paper (reverse topo)", paper_order(&net)),
        ("topological", topological_order(&net)),
        ("random", random_order(n, 5)),
    ] {
        let bdds = CircuitBdds::build_with_order(&net, order)?;
        println!(
            "  {label:<22} total shared nodes {:>6}",
            bdds.total_node_count()
        );
    }

    // Orders never change the computed probabilities — only the cost.
    let pi = vec![0.5; n];
    let a =
        CircuitBdds::build_with_order(&net, paper_order(&net))?.node_probabilities(&net, &pi)?;
    let b =
        CircuitBdds::build_with_order(&net, random_order(n, 5))?.node_probabilities(&net, &pi)?;
    let max_diff = a
        .iter()
        .zip(&b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);
    println!("\nmax probability difference across orders: {max_diff:.2e} (exactness ✓)");
    Ok(())
}
