//! The paper's motivating scenario: an ASIC control block (cellular-phone /
//! chipset class) that needs domino speed under a tight power budget.
//!
//! Runs the full flow on the apex7-class benchmark: technology-independent
//! cleanup → MA and MP phase assignment → inverter-free synthesis → cell
//! mapping → timing → simulated power in mA.
//!
//! ```sh
//! cargo run --release --example asic_control_block
//! ```

use dominolp::netlist::optimize;
use dominolp::phase::flow::{minimize_area, minimize_power, FlowConfig};
use dominolp::sim::{measure_power, SimConfig};
use dominolp::techmap::{map, sta, Library};
use dominolp::workloads::table_suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = table_suite()?;
    let bench = suite
        .into_iter()
        .find(|b| b.name == "apex7")
        .expect("apex7 is part of the suite");

    // Flow step 1: technology-independent minimization.
    let (net, report) = optimize(&bench.network);
    println!(
        "apex7-class control block: {} nodes (optimizer folded {}, merged {})",
        net.len(),
        report.folded,
        report.merged
    );

    let pi = vec![0.5; net.inputs().len()];
    let cfg = FlowConfig::default();
    let lib = Library::standard();
    let sim = SimConfig::default();

    for (label, flow_report) in [
        (
            "minimum area  (baseline [15])",
            minimize_area(&net, &pi, &cfg)?,
        ),
        (
            "minimum power (this paper)   ",
            minimize_power(&net, &pi, &cfg)?,
        ),
    ] {
        let mapped = map(&flow_report.domino, &lib);
        let timing = sta(&mapped, &lib);
        let power = measure_power(&mapped, &lib, &pi, &sim);
        println!(
            "\n{label}:\n  cells {:>4}   delay {:>6.0} ps   I_cap {:>5.2} mA  I_sc {:>4.2} mA  \
             I_leak {:>4.3} mA   total {:>5.2} mA",
            mapped.effective_cell_count(),
            timing.worst_arrival_ps,
            power.cap_ma,
            power.short_circuit_ma,
            power.leakage_ma,
            power.total_ma()
        );
        println!(
            "  phases: {} negative of {} outputs; {} domino gates, {} boundary inverters",
            flow_report.assignment.negative_count(),
            flow_report.assignment.len(),
            flow_report.domino.gate_count(),
            flow_report.domino.input_inverter_count() + flow_report.domino.output_inverter_count()
        );
    }
    Ok(())
}
