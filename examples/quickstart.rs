//! Quickstart: synthesize a small circuit for low-power domino, end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dominolp::phase::flow::{minimize_area, minimize_power, FlowConfig};
use dominolp::workloads::figures::fig5_network;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 5 circuit: f = (a+b)+(c·d), g = !(a+b)+!(c·d).
    let net = fig5_network()?;
    println!(
        "circuit `{}`: {}",
        net.name(),
        dominolp::netlist::NetworkStats::of(&net)
    );

    // High input probabilities make phase choice dramatic.
    let pi = vec![0.9; net.inputs().len()];
    let cfg = FlowConfig::default();

    // Baseline: minimum-area phase assignment (Puri et al., ICCAD '96).
    let ma = minimize_area(&net, &pi, &cfg)?;
    println!(
        "\nminimum area : phases {}  cells {:>3}  est. switching {:.4}",
        ma.assignment,
        ma.area_cells,
        ma.power.total()
    );

    // This paper: minimum-power phase assignment.
    let mp = minimize_power(&net, &pi, &cfg)?;
    println!(
        "minimum power: phases {}  cells {:>3}  est. switching {:.4}",
        mp.assignment,
        mp.area_cells,
        mp.power.total()
    );

    let saving = 100.0 * (1.0 - mp.power.total() / ma.power.total());
    println!("\npower saving: {saving:.1}% (the paper's Figure 5 reports 75%)");
    assert!(mp.domino.is_inverter_free());

    // The domino block still computes the same functions.
    for bits in 0..16u32 {
        let vals: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
        assert_eq!(mp.domino.eval(&vals)?, net.eval_comb(&vals)?);
    }
    println!("functional equivalence verified over all 16 input vectors ✓");
    Ok(())
}
