//! Batch engine: run the whole public-domain suite in parallel with a
//! content-addressed result cache, then rerun it for free.
//!
//! ```sh
//! cargo run --release --example batch_engine
//! ```

use std::sync::Arc;
use std::time::Instant;

use dominolp::engine::{report, EngineConfig, FlowEngine, JobSpec, ResultCache};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One compare job (min-area vs min-power, the paper's table row) per
    // public-domain suite circuit.
    let jobs = dominolp::workloads::public_row_names()
        .into_iter()
        .map(|name| JobSpec::suite(name).resolve())
        .collect::<Result<Vec<_>, _>>()?;

    let cache = Arc::new(ResultCache::in_memory());
    let engine = FlowEngine::new(EngineConfig {
        threads: 0, // one worker per CPU
        cache: Some(Arc::clone(&cache)),
        snapshots: None,
    });

    // Cold: every flow is computed.
    let t0 = Instant::now();
    let cold = engine.run_batch(&jobs);
    let cold_elapsed = t0.elapsed();
    print!("{}", report::format_outcomes(&cold));

    // Warm: every job is answered from the cache, byte-identically.
    let t1 = Instant::now();
    let warm = engine.run_batch(&jobs);
    let warm_elapsed = t1.elapsed();
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.outcome(), w.outcome());
        assert!(w.was_cached());
    }

    let stats = cache.stats();
    println!(
        "cold {} ms, warm {} µs — {} misses then {} hits, 0 recomputations",
        cold_elapsed.as_millis(),
        warm_elapsed.as_micros(),
        stats.misses,
        stats.hits()
    );
    Ok(())
}
