//! BLIF interchange: generated workloads survive a write/parse round trip
//! and can enter the flow from BLIF text (how real MCNC files would come
//! in).

use dominolp::netlist::{parse_blif, write_blif};
use dominolp::phase::flow::{minimize_power, FlowConfig};
use dominolp::sim::VectorSource;
use dominolp::workloads::{generate, GeneratorSpec};

#[test]
fn roundtrip_generated_combinational() {
    for seed in 0..4u64 {
        let spec = GeneratorSpec::control_block(format!("rt{seed}"), 12, 5, 50, seed);
        let net = generate(&spec).expect("generator succeeds");
        let text = write_blif(&net);
        let back = parse_blif(&text).expect("roundtrip parses");
        assert_eq!(back.inputs().len(), net.inputs().len());
        assert_eq!(back.outputs().len(), net.outputs().len());
        let mut vectors = VectorSource::uniform(12, 40 + seed);
        for _ in 0..200 {
            let v = vectors.next_vector();
            assert_eq!(
                net.eval_comb(&v).expect("eval"),
                back.eval_comb(&v).expect("eval")
            );
        }
    }
}

#[test]
fn roundtrip_generated_sequential() {
    use dominolp::netlist::SequentialState;
    let spec = GeneratorSpec {
        n_latches: 5,
        ..GeneratorSpec::control_block("rtseq", 8, 3, 40, 5)
    };
    let net = generate(&spec).expect("generator succeeds");
    let text = write_blif(&net);
    let back = parse_blif(&text).expect("roundtrip parses");
    let mut s1 = SequentialState::new(&net);
    let mut s2 = SequentialState::new(&back);
    let mut vectors = VectorSource::uniform(8, 60);
    for cycle in 0..200 {
        let v = vectors.next_vector();
        assert_eq!(
            s1.step(&net, &v).expect("step"),
            s2.step(&back, &v).expect("step"),
            "cycle {cycle}"
        );
    }
}

#[test]
fn flow_runs_from_blif_text() {
    // A hand-written BLIF (two-level PLA style, as MCNC ships) through the
    // whole min-power flow.
    let text = "\
.model pla
.inputs a b c d
.outputs f g
.names a b c f
11- 1
--1 1
.names a d x
10 1
01 1
.names x c g
11 0
.end
";
    let net = parse_blif(text).expect("parses");
    let report = minimize_power(&net, &[0.5; 4], &FlowConfig::default()).expect("flow");
    assert!(report.domino.is_inverter_free());
    for bits in 0..16u32 {
        let v: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
        assert_eq!(
            report.domino.eval(&v).expect("eval"),
            net.eval_comb(&v).expect("eval")
        );
    }
}
