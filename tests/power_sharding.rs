//! The sharded-determinism contract of PR 4, pinned end to end:
//!
//! * **Sharded power search** — the exhaustive Gray-code walk over the
//!   power objective produces bit-identical outcomes (assignment,
//!   objective bits, trace, commit count) for every shard count, because
//!   the accountant's fixed-point totals are path-independent integers.
//! * **Sharded packed power** — `measure_power` and
//!   `measure_domino_switching` produce bit-identical reports for every
//!   *thread* count (threads is execution-only; the shard decomposition is
//!   part of the stream definition), including `threads = 1` and
//!   `threads` far beyond the run's word count.
//!
//! Both properties are exercised across proptest-generated random
//! networks, seeds, probabilities and assignments.

use dominolp::phase::power::PowerModel;
use dominolp::phase::prob::{compute_probabilities, ProbabilityConfig};
use dominolp::phase::search::{search_objective_with_shards, MinAreaConfig, Objective};
use dominolp::phase::{DominoSynthesizer, PhaseAssignment};
use dominolp::sim::{measure_domino_switching, measure_power, SimConfig};
use dominolp::techmap::{map, Library};
use dominolp::workloads::{generate, public_suite, GeneratorSpec};
use proptest::prelude::*;

/// Deterministic smoke pin on the public suite: the default-config packed
/// power measurement must not depend on the thread count, circuit by
/// circuit.
#[test]
fn public_suite_reports_are_thread_invariant() {
    let lib = Library::standard();
    for bench in public_suite().expect("suite generates").iter() {
        let net = &bench.network;
        let pi = vec![0.5; net.inputs().len()];
        let synth = DominoSynthesizer::new(net).expect("synthesizer");
        let n = synth.view_outputs().len();
        let domino = synth
            .synthesize(&PhaseAssignment::all_positive(n))
            .expect("synthesis");
        let mapped = map(&domino, &lib);
        let sequential = measure_power(&mapped, &lib, &pi, &SimConfig::default());
        for threads in [2, 8] {
            let cfg = SimConfig {
                threads,
                ..SimConfig::default()
            };
            assert_eq!(
                sequential,
                measure_power(&mapped, &lib, &pi, &cfg),
                "{}: threads={threads}",
                bench.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sharded packed power: bit-identical across thread counts, including
    /// threads > words (each shard of the 200-cycle run is a single
    /// partial word, so 16 threads exceed the run's 8 measured words).
    #[test]
    fn packed_power_is_thread_count_invariant(
        gen_seed in 0u64..1000,
        sim_seed in 0u64..1000,
        pis in 4usize..10,
        pos in 2usize..5,
        gates in 12usize..40,
        latches in 0usize..4,
        bits in 0u64..256,
        p10 in 1u64..10,
    ) {
        let spec = GeneratorSpec {
            n_latches: latches,
            ..GeneratorSpec::control_block(format!("sh{gen_seed}"), pis, pos, gates, gen_seed)
        };
        let net = generate(&spec).expect("generator succeeds");
        let pi = vec![p10 as f64 / 10.0; pis];
        let synth = DominoSynthesizer::new(&net).expect("valid");
        let n = synth.view_outputs().len();
        let pa = PhaseAssignment::from_bits(n, bits & ((1u64 << n.min(63)) - 1));
        let domino = synth.synthesize(&pa).expect("synthesis");
        let lib = Library::standard();
        let mapped = map(&domino, &lib);
        let base = SimConfig {
            cycles: 200,
            warmup: 8,
            seed: sim_seed,
            ..SimConfig::default()
        };

        let power_seq = measure_power(&mapped, &lib, &pi, &SimConfig { threads: 1, ..base });
        let switching_seq =
            measure_domino_switching(&domino, &pi, &SimConfig { threads: 1, ..base });
        for threads in [2usize, 8, 16] {
            let cfg = SimConfig { threads, ..base };
            prop_assert_eq!(&power_seq, &measure_power(&mapped, &lib, &pi, &cfg));
            prop_assert_eq!(&switching_seq, &measure_domino_switching(&domino, &pi, &cfg));
        }
    }

    /// Sharded power search: the exhaustive walk over the power objective
    /// (and the area objective, for contrast) is bit-identical to the
    /// sequential walk for every shard count.
    #[test]
    fn sharded_power_search_matches_sequential(
        gen_seed in 0u64..1000,
        pis in 4usize..9,
        pos in 2usize..5,
        gates in 10usize..35,
        latches in 0usize..3,
        p10 in 1u64..10,
    ) {
        let spec = GeneratorSpec {
            n_latches: latches,
            ..GeneratorSpec::control_block(format!("sw{gen_seed}"), pis, pos, gates, gen_seed)
        };
        let net = generate(&spec).expect("generator succeeds");
        let probs = compute_probabilities(
            &net,
            &vec![p10 as f64 / 10.0; pis],
            &ProbabilityConfig::default(),
        )
        .expect("probabilities");
        let synth = DominoSynthesizer::new(&net).expect("valid");
        let n = synth.view_outputs().len();
        let config = MinAreaConfig {
            exhaustive_limit: n,
            max_passes: 0,
        };
        for objective in [
            Objective::Area,
            Objective::Power {
                probs: probs.as_slice(),
                model: PowerModel::unit(),
            },
            Objective::Power {
                probs: probs.as_slice(),
                model: PowerModel::with_and_penalty(3.0),
            },
        ] {
            let seq =
                search_objective_with_shards(&synth, objective.clone(), &config, 1).unwrap();
            for shards in [2usize, 5, 8] {
                let par =
                    search_objective_with_shards(&synth, objective.clone(), &config, shards)
                        .unwrap();
                prop_assert_eq!(&seq.assignment, &par.assignment);
                prop_assert_eq!(seq.objective.to_bits(), par.objective.to_bits());
                prop_assert_eq!(seq.commits, par.commits);
                prop_assert_eq!(&seq.trace, &par.trace);
            }
        }
    }
}
