//! The packed-engine contract: the bit-parallel simulation kernels must be
//! **bit-identical** to the scalar reference implementations for the same
//! logical vector stream — identical per-node toggle counts, identical
//! power totals, identical probability estimates. The reference
//! (`dominolp::sim::reference`) unpacks the very same `PackedVectorSource`
//! words and simulates the 64 lanes one `bool` at a time; both sides
//! accumulate integer event counters and share the final integer→`f64`
//! conversion, so any disagreement is a packed-kernel bug, not float
//! noise.

use dominolp::phase::{DominoSynthesizer, Phase, PhaseAssignment};
use dominolp::sim::montecarlo::estimate_node_probabilities;
use dominolp::sim::{
    measure_domino_switching, measure_power, reference, simulate_static, SimConfig,
};
use dominolp::techmap::{map, Library};
use dominolp::workloads::{generate, public_suite, GeneratorSpec};
use proptest::prelude::*;

/// 3 full words + one 8-lane partial word: exercises the remainder mask.
fn small_cfg(seed: u64) -> SimConfig {
    SimConfig {
        cycles: 200,
        warmup: 3,
        seed,
        ..SimConfig::default()
    }
}

/// Golden equivalence on the public suite: the exact flow-shaped workload,
/// both MA-shaped (all-positive) and a mixed assignment, through mapping.
#[test]
fn packed_power_matches_scalar_reference_on_public_suite() {
    let lib = Library::standard();
    for bench in public_suite().expect("suite generates").iter() {
        let net = &bench.network;
        let pi = vec![0.5; net.inputs().len()];
        let synth = DominoSynthesizer::new(net).expect("synthesizer");
        let n = synth.view_outputs().len();
        let alternating = PhaseAssignment::from_phases(
            (0..n)
                .map(|i| {
                    if i % 2 == 0 {
                        Phase::Positive
                    } else {
                        Phase::Negative
                    }
                })
                .collect(),
        );
        for (tag, pa) in [
            ("all+", PhaseAssignment::all_positive(n)),
            ("alt", alternating),
        ] {
            let domino = synth.synthesize(&pa).expect("synthesis");
            let mapped = map(&domino, &lib);
            let cfg = small_cfg(0x00D0_1110 + pa.negative_count() as u64);
            let packed = measure_power(&mapped, &lib, &pi, &cfg);
            let scalar = reference::measure_power(&mapped, &lib, &pi, &cfg);
            assert_eq!(packed, scalar, "{} {tag}: power", bench.name);

            let packed_sw = measure_domino_switching(&domino, &pi, &cfg);
            let scalar_sw = reference::measure_domino_switching(&domino, &pi, &cfg);
            assert_eq!(packed_sw, scalar_sw, "{} {tag}: switching", bench.name);
        }
    }
}

#[test]
fn packed_montecarlo_and_static_match_scalar_reference() {
    for bench in public_suite().expect("suite generates").iter().take(2) {
        let net = &bench.network;
        let pi: Vec<f64> = (0..net.inputs().len())
            .map(|i| 0.15 + 0.07 * (i % 10) as f64)
            .collect();
        let cfg = small_cfg(17);
        assert_eq!(
            estimate_node_probabilities(net, &pi, &cfg),
            reference::estimate_node_probabilities(net, &pi, &cfg),
            "{}: monte-carlo",
            bench.name
        );
        assert_eq!(
            simulate_static(net, &pi, &cfg),
            reference::simulate_static(net, &pi, &cfg),
            "{}: static sim",
            bench.name
        );
    }
}

/// Sequential feedback: flop lanes must evolve independently and still
/// match the lane-by-lane scalar replay.
#[test]
fn packed_sequential_simulation_matches_scalar_reference() {
    let spec = GeneratorSpec {
        n_latches: 5,
        ..GeneratorSpec::control_block("pk_seq", 8, 3, 40, 6)
    };
    let net = generate(&spec).expect("generator succeeds");
    let pi = vec![0.6; 8];
    let cfg = SimConfig {
        cycles: 130, // 2 full words + 2-lane partial
        warmup: 8,
        seed: 23,
        ..SimConfig::default()
    };
    let synth = DominoSynthesizer::new(&net).expect("valid");
    let n = synth.view_outputs().len();
    let domino = synth
        .synthesize(&PhaseAssignment::from_bits(
            n,
            0b1011 & ((1 << n as u64) - 1),
        ))
        .expect("synthesis");
    let lib = Library::standard();
    let mapped = map(&domino, &lib);
    assert_eq!(
        measure_power(&mapped, &lib, &pi, &cfg),
        reference::measure_power(&mapped, &lib, &pi, &cfg)
    );
    assert_eq!(
        measure_domino_switching(&domino, &pi, &cfg),
        reference::measure_domino_switching(&domino, &pi, &cfg)
    );
    assert_eq!(
        estimate_node_probabilities(&net, &pi, &cfg),
        reference::estimate_node_probabilities(&net, &pi, &cfg)
    );
    assert_eq!(
        simulate_static(&net, &pi, &cfg),
        reference::simulate_static(&net, &pi, &cfg)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random networks, seeds, probabilities and assignments: packed and
    /// scalar must agree bit for bit on every kernel.
    #[test]
    fn packed_equals_scalar_on_random_networks(
        gen_seed in 0u64..1000,
        sim_seed in 0u64..1000,
        pis in 4usize..10,
        pos in 2usize..5,
        gates in 12usize..45,
        latches in 0usize..4,
        bits in 0u64..256,
        p10 in 1u64..10,
    ) {
        let spec = GeneratorSpec {
            n_latches: latches,
            ..GeneratorSpec::control_block(
                format!("pk{gen_seed}"), pis, pos, gates, gen_seed,
            )
        };
        let net = generate(&spec).expect("generator succeeds");
        let pi = vec![p10 as f64 / 10.0; pis];
        let cfg = small_cfg(sim_seed);
        let synth = DominoSynthesizer::new(&net).expect("valid");
        let n = synth.view_outputs().len();
        let pa = PhaseAssignment::from_bits(n, bits & ((1u64 << n.min(63)) - 1));
        let domino = synth.synthesize(&pa).expect("synthesis");
        let lib = Library::standard();
        let mapped = map(&domino, &lib);

        prop_assert_eq!(
            measure_power(&mapped, &lib, &pi, &cfg),
            reference::measure_power(&mapped, &lib, &pi, &cfg)
        );
        prop_assert_eq!(
            measure_domino_switching(&domino, &pi, &cfg),
            reference::measure_domino_switching(&domino, &pi, &cfg)
        );
        prop_assert_eq!(
            estimate_node_probabilities(&net, &pi, &cfg),
            reference::estimate_node_probabilities(&net, &pi, &cfg)
        );
        prop_assert_eq!(
            simulate_static(&net, &pi, &cfg),
            reference::simulate_static(&net, &pi, &cfg)
        );
    }
}
