//! Mapping/timing/power pipeline invariants at suite scale.

use dominolp::phase::flow::{minimize_area, minimize_power, FlowConfig};
use dominolp::sim::{measure_power, SimConfig, VectorSource};
use dominolp::techmap::{map, size_for_timing, sta, Library, SizingConfig};
use dominolp::workloads::{generate, row_spec, GeneratorSpec};

#[test]
fn mapped_netlist_equivalent_to_domino_block() {
    let spec = GeneratorSpec::control_block("mapchk", 18, 6, 80, 4);
    let net = generate(&spec).expect("generator succeeds");
    let pi = vec![0.5; 18];
    let report = minimize_power(&net, &pi, &FlowConfig::default()).expect("flow");
    let lib = Library::standard();
    let mapped = map(&report.domino, &lib);
    let mut vectors = VectorSource::uniform(18, 77);
    for _ in 0..300 {
        let v = vectors.next_vector();
        assert_eq!(
            mapped.eval_outputs(&v),
            net.eval_comb(&v).expect("eval"),
            "mapped netlist computes the original functions"
        );
    }
    // All cells obey the library fanin bound.
    assert!(mapped
        .cells()
        .iter()
        .all(|c| c.fanins.len() <= lib.max_fanin));
}

#[test]
fn sizing_trades_power_for_speed() {
    let spec = row_spec("frg1").expect("suite row");
    let net = generate(&spec).expect("generator succeeds");
    let pi = vec![0.5; net.inputs().len()];
    let report = minimize_area(&net, &pi, &FlowConfig::default()).expect("flow");
    let lib = Library::standard();
    let mut mapped = map(&report.domino, &lib);
    let sim = SimConfig::default();

    let before_delay = sta(&mapped, &lib).worst_arrival_ps;
    let before_power = measure_power(&mapped, &lib, &pi, &sim).total_ma();

    let target = before_delay * 0.7;
    let sizing = size_for_timing(
        &mut mapped,
        &lib,
        &SizingConfig {
            clock_period_ps: Some(target),
            ..SizingConfig::default()
        },
    );
    assert!(sizing.met, "frg1-class block must be sizable to 70%");
    let after_delay = sizing.timing.worst_arrival_ps;
    let after_power = measure_power(&mapped, &lib, &pi, &sim).total_ma();

    assert!(after_delay <= target);
    assert!(
        after_power > before_power,
        "speed costs power: {after_power} vs {before_power}"
    );
    // Function unchanged by sizing.
    let mut vectors = VectorSource::uniform(net.inputs().len(), 3);
    for _ in 0..100 {
        let v = vectors.next_vector();
        assert_eq!(mapped.eval_outputs(&v), net.eval_comb(&v).expect("eval"));
    }
}

#[test]
fn power_report_components_are_consistent() {
    let spec = GeneratorSpec::control_block("pwr", 16, 6, 70, 6);
    let net = generate(&spec).expect("generator succeeds");
    let pi = vec![0.5; 16];
    let report = minimize_power(&net, &pi, &FlowConfig::default()).expect("flow");
    let lib = Library::standard();
    let mapped = map(&report.domino, &lib);
    let power = measure_power(&mapped, &lib, &pi, &SimConfig::default());
    assert!(power.cap_ma > 0.0);
    assert!((power.short_circuit_ma - 0.1 * power.cap_ma).abs() < 1e-12);
    assert!((power.leakage_ma - mapped.cell_count() as f64 * lib.leak_ua * 1e-3).abs() < 1e-12);
    assert!(
        (power.total_ma() - (power.cap_ma + power.short_circuit_ma + power.leakage_ma)).abs()
            < 1e-12
    );
}
