//! Property-based tests (proptest) on the core invariants:
//!
//! * inverter-free synthesis preserves the function for *every* phase
//!   assignment;
//! * technology-independent optimization preserves the function;
//! * BDD evaluation agrees with direct network evaluation;
//! * domino rails are monotone (the property that makes the block
//!   domino-implementable);
//! * the incremental accountant equals full resynthesis.

use dominolp::bdd::circuit::CircuitBdds;
use dominolp::netlist::{optimize, Network, NodeId};
use dominolp::phase::power::{estimate_power, PowerModel};
use dominolp::phase::prob::{compute_probabilities, ProbabilityConfig};
use dominolp::phase::search::{ConeAccountant, Objective};
use dominolp::phase::{DominoSynthesizer, PhaseAssignment};
use proptest::prelude::*;

/// A recipe for one random combinational network: a list of gate creation
/// steps over the nodes created so far.
#[derive(Debug, Clone)]
enum Step {
    And(Vec<usize>),
    Or(Vec<usize>),
    Not(usize),
}

fn build(n_inputs: usize, steps: &[Step], n_outputs: usize) -> Network {
    let mut net = Network::new("prop");
    let mut nodes: Vec<NodeId> = (0..n_inputs)
        .map(|i| net.add_input(format!("i{i}")).expect("unique"))
        .collect();
    for step in steps {
        let pick = |raw: &[usize], nodes: &[NodeId]| -> Vec<NodeId> {
            let mut v: Vec<NodeId> = raw.iter().map(|&r| nodes[r % nodes.len()]).collect();
            v.dedup();
            v
        };
        let id = match step {
            Step::And(raw) => {
                let f = pick(raw, &nodes);
                net.add_and(f).expect("non-empty")
            }
            Step::Or(raw) => {
                let f = pick(raw, &nodes);
                net.add_or(f).expect("non-empty")
            }
            Step::Not(raw) => {
                let f = nodes[raw % nodes.len()];
                net.add_not(f).expect("valid")
            }
        };
        nodes.push(id);
    }
    let total = nodes.len();
    for o in 0..n_outputs {
        let driver = nodes[total - 1 - (o * 3) % total];
        net.add_output(format!("o{o}"), driver).expect("unique");
    }
    net
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        prop::collection::vec(0usize..64, 2..4).prop_map(Step::And),
        prop::collection::vec(0usize..64, 2..4).prop_map(Step::Or),
        (0usize..64).prop_map(Step::Not),
    ]
}

fn network_strategy() -> impl Strategy<Value = Network> {
    (
        3usize..7,
        prop::collection::vec(step_strategy(), 4..24),
        1usize..4,
    )
        .prop_map(|(pi, steps, po)| build(pi, &steps, po))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn synthesis_preserves_function(net in network_strategy(), bits: u64) {
        let synth = DominoSynthesizer::new(&net).expect("valid network");
        let n = synth.view_outputs().len();
        let pa = PhaseAssignment::from_bits(n, bits & ((1u64 << n) - 1));
        let domino = synth.synthesize(&pa).expect("synthesis succeeds");
        prop_assert!(domino.is_inverter_free());
        let n_in = net.inputs().len();
        for v in 0..(1u32 << n_in) {
            let vals: Vec<bool> = (0..n_in).map(|i| v & (1 << i) != 0).collect();
            prop_assert_eq!(
                domino.eval(&vals).expect("eval"),
                net.eval_comb(&vals).expect("eval")
            );
        }
    }

    #[test]
    fn optimize_preserves_function(net in network_strategy()) {
        let (opt, report) = optimize(&net);
        prop_assert!(report.nodes_after <= report.nodes_before);
        let n_in = net.inputs().len();
        for v in 0..(1u32 << n_in) {
            let vals: Vec<bool> = (0..n_in).map(|i| v & (1 << i) != 0).collect();
            prop_assert_eq!(
                opt.eval_comb(&vals).expect("eval"),
                net.eval_comb(&vals).expect("eval")
            );
        }
    }

    #[test]
    fn bdd_agrees_with_network_eval(net in network_strategy()) {
        let bdds = CircuitBdds::build(&net).expect("bdds build");
        let n_in = net.inputs().len();
        let outs = bdds.output_bdds(&net);
        for v in 0..(1u32 << n_in) {
            let vals: Vec<bool> = (0..n_in).map(|i| v & (1 << i) != 0).collect();
            let want = net.eval_comb(&vals).expect("eval");
            for (o, &bdd) in outs.iter().enumerate() {
                prop_assert_eq!(bdds.manager().eval(bdd, &vals).expect("eval"), want[o]);
            }
        }
    }

    #[test]
    fn domino_rails_are_monotone(net in network_strategy(), bits: u64) {
        // Raising one source rail (with complement rails *recomputed*, i.e.
        // comparing two consistent input vectors that differ in one bit)
        // must never lower a gate whose cone uses the input in only one
        // polarity; the stronger universal property is that every gate is
        // an AND/OR of rails — checked structurally by is_inverter_free.
        // Here: dynamic monotonicity in the rail vector itself.
        let synth = DominoSynthesizer::new(&net).expect("valid network");
        let n = synth.view_outputs().len();
        let pa = PhaseAssignment::from_bits(n, bits & ((1u64 << n) - 1));
        let domino = synth.synthesize(&pa).expect("synthesis succeeds");
        // Evaluate rails for increasing "virtual rail" vectors: force all
        // sources low vs all high with complements disabled is not a legal
        // input pair; instead verify gate-level monotonicity: every gate's
        // value under fanin values all-true is true.
        let n_in = net.inputs().len();
        let all_true = vec![true; n_in];
        let rails = domino.eval_rails(&all_true).expect("eval");
        for (gate, value) in domino.gates().iter().zip(&rails) {
            // A gate whose fanins are all direct rails must be true when
            // every direct rail is true.
            let all_direct = gate.fanins.iter().all(|f| matches!(
                f,
                dominolp::phase::DominoRef::Gate(_)
                    | dominolp::phase::DominoRef::Source { complemented: false, .. }
                    | dominolp::phase::DominoRef::Constant(true)
            ));
            let direct_gate_fanins_true = gate.fanins.iter().all(|f| match f {
                dominolp::phase::DominoRef::Gate(i) => rails[*i],
                dominolp::phase::DominoRef::Source { complemented, .. } => !complemented,
                dominolp::phase::DominoRef::Constant(v) => *v,
            });
            if all_direct && direct_gate_fanins_true {
                prop_assert!(*value, "monotone gate must evaluate high");
            }
        }
    }

    #[test]
    fn accountant_equals_full_resynthesis(net in network_strategy(), bits: u64, flips in prop::collection::vec(0usize..8, 0..6)) {
        let pi = vec![0.6; net.inputs().len()];
        let probs = compute_probabilities(&net, &pi, &ProbabilityConfig::default())
            .expect("probabilities compute");
        let synth = DominoSynthesizer::new(&net).expect("valid network");
        let n = synth.view_outputs().len();
        let pa = PhaseAssignment::from_bits(n, bits & ((1u64 << n) - 1));
        let model = PowerModel::unit();
        let mut acct = ConeAccountant::new(
            &synth,
            Objective::Power { probs: probs.as_slice(), model },
            pa,
        ).expect("accountant builds");
        for f in flips {
            acct.flip(f % n);
            let full = synth.synthesize(acct.assignment()).expect("synthesis succeeds");
            let est = estimate_power(&full, probs.as_slice(), &model);
            prop_assert!((acct.total() - est.total()).abs() < 1e-9,
                "incremental {} vs full {}", acct.total(), est.total());
        }
    }
}
