//! Golden equivalence tests: the dense-arena BDD engine, dense-refcount
//! accountant, sharded Gray-code walk *and* the bit-parallel simulation
//! engine must be bit-identical to the pinned fixtures on the public
//! suite.
//!
//! The fixtures live in `tests/fixtures/golden_kernel.txt` and are
//! regenerated with
//! `cargo run --release -p domino-bench --bin golden_dump -- --out
//! tests/fixtures/golden_kernel.txt`. They pin, per circuit: the
//! structural digest (cache-key ingredient), an FNV-1a hash over the exact
//! `f64` bit patterns of every node probability, the shared BDD node
//! count, the min-area / min-power search outcomes (assignment plus the
//! objective's raw bit pattern), the sifting outcome (`reorder` rows: the
//! post-reorder probability hash, node count, swap count and final
//! variable order), and — for the packed simulator — the
//! measured power total, switch-event count and domino switching averages
//! of the min-area assignment under the default `SimConfig`. Any kernel or
//! simulator change that shifts a single bit fails here; CI additionally
//! regenerates the fixture into a temp file and diffs it against the
//! checked-in copy, so a conscious change must update the fixture in the
//! same commit.
//!
//! The property tests at the bottom drive the open-addressed unique table
//! against a `std::collections::HashMap` reference model under random
//! workloads.

use std::collections::HashMap;

use dominolp::bdd::table::UniqueTable;
use dominolp::bdd::ReorderMode;
use dominolp::phase::flow::FlowConfig;
use dominolp::phase::prob::{compute_probabilities, ProbabilityConfig};
use dominolp::phase::search::{min_area_assignment, min_power_assignment};
use dominolp::phase::{DominoSynthesizer, PhaseAssignment};
use dominolp::sim::{measure_domino_switching, measure_power, SimConfig};
use dominolp::techmap::{map, Library};
use dominolp::workloads::public_suite;
use proptest::prelude::*;

const FIXTURES: &str = include_str!("fixtures/golden_kernel.txt");

/// One `key=value` fixture line, keyed by its leading tag (`kernel`/`sim`).
#[derive(Debug)]
struct Row {
    fields: HashMap<String, String>,
}

impl Row {
    fn get(&self, key: &str) -> &str {
        self.fields
            .get(key)
            .unwrap_or_else(|| panic!("fixture row missing field '{key}'"))
    }

    fn hex(&self, key: &str) -> u64 {
        u64::from_str_radix(self.get(key), 16)
            .unwrap_or_else(|_| panic!("fixture field '{key}' is not hex"))
    }

    fn num(&self, key: &str) -> u64 {
        self.get(key)
            .parse()
            .unwrap_or_else(|_| panic!("fixture field '{key}' is not a number"))
    }
}

/// Parses the fixture into `(kernel rows, reorder rows, sim rows)`, in
/// file order.
fn parse_fixtures() -> (Vec<Row>, Vec<Row>, Vec<Row>) {
    let mut kernel = Vec::new();
    let mut reorder = Vec::new();
    let mut sim = Vec::new();
    for line in FIXTURES.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("fixture line has a tag");
        let fields: HashMap<String, String> = parts
            .map(|kv| {
                let (k, v) = kv.split_once('=').expect("fixture field is key=value");
                (k.to_string(), v.to_string())
            })
            .collect();
        let row = Row { fields };
        match tag {
            "kernel" => kernel.push(row),
            "reorder" => reorder.push(row),
            "sim" => sim.push(row),
            other => panic!("unknown fixture tag '{other}'"),
        }
    }
    (kernel, reorder, sim)
}

/// FNV-1a over the `f64` bit patterns — equal hash ⟺ byte-identical
/// probabilities (must match `golden_dump`'s implementation).
fn prob_hash(probs: &[f64]) -> u64 {
    let mut state = 0xcbf2_9ce4_8422_2325u64;
    for &p in probs {
        for byte in p.to_bits().to_le_bytes() {
            state ^= u64::from(byte);
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    state
}

#[test]
fn kernel_is_bit_identical_to_fixtures() {
    let suite = public_suite().expect("suite generates");
    let config = FlowConfig::default();
    let (golden, _, _) = parse_fixtures();
    assert_eq!(suite.len(), golden.len());
    for (bench, golden) in suite.iter().zip(&golden) {
        assert_eq!(bench.name, golden.get("name"));
        let net = &bench.network;
        assert_eq!(
            net.structural_digest(),
            golden.hex("digest"),
            "{}: structural digest (cache key ingredient) moved",
            bench.name
        );
        let pi = vec![0.5; net.inputs().len()];
        let probs = compute_probabilities(net, &pi, &config.probability).expect("probabilities");
        assert_eq!(
            prob_hash(probs.as_slice()),
            golden.hex("prob_hash"),
            "{}: node probabilities are no longer bit-identical",
            bench.name
        );
        assert_eq!(
            probs.bdd_node_count() as u64,
            golden.num("bdd_nodes"),
            "{}",
            bench.name
        );

        let synth = DominoSynthesizer::new(net).expect("synthesizer");
        let n = synth.view_outputs().len();
        let ma = min_area_assignment(&synth, &config.area).expect("min-area");
        assert_eq!(
            ma.assignment.to_string(),
            golden.get("ma_assignment"),
            "{} MA",
            bench.name
        );
        assert_eq!(
            ma.objective.to_bits(),
            golden.hex("ma_objective"),
            "{} MA objective",
            bench.name
        );
        assert_eq!(
            ma.evaluations as u64,
            golden.num("ma_evaluations"),
            "{} MA",
            bench.name
        );

        let mp = min_power_assignment(
            &synth,
            &probs,
            PhaseAssignment::all_positive(n),
            &config.power,
        )
        .expect("min-power");
        assert_eq!(
            mp.assignment.to_string(),
            golden.get("mp_assignment"),
            "{} MP",
            bench.name
        );
        assert_eq!(
            mp.objective.to_bits(),
            golden.hex("mp_objective"),
            "{} MP objective",
            bench.name
        );
        assert_eq!(
            mp.evaluations as u64,
            golden.num("mp_evaluations"),
            "{} MP",
            bench.name
        );
    }
}

#[test]
fn sifted_kernel_is_bit_identical_to_fixtures() {
    let suite = public_suite().expect("suite generates");
    let config = ProbabilityConfig {
        reorder: ReorderMode::Sift,
        ..FlowConfig::default().probability
    };
    let (_, golden, _) = parse_fixtures();
    assert_eq!(suite.len(), golden.len());
    for (bench, golden) in suite.iter().zip(&golden) {
        assert_eq!(bench.name, golden.get("name"));
        assert_eq!("sift", golden.get("mode"));
        let net = &bench.network;
        let pi = vec![0.5; net.inputs().len()];
        let probs = compute_probabilities(net, &pi, &config).expect("sifted probabilities");
        assert_eq!(
            prob_hash(probs.as_slice()),
            golden.hex("prob_hash"),
            "{}: sifted node probabilities are no longer bit-identical",
            bench.name
        );
        assert_eq!(
            probs.bdd_node_count() as u64,
            golden.num("bdd_nodes"),
            "{}: sifted node count moved",
            bench.name
        );
        let outcome = probs
            .reorder_outcome()
            .expect("sift mode records an outcome");
        assert_eq!(
            outcome.swaps,
            golden.num("swaps"),
            "{}: sifting took a different number of swaps",
            bench.name
        );
        let order = outcome
            .final_order
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(".");
        assert_eq!(
            order,
            golden.get("order"),
            "{}: sifting settled on a different variable order",
            bench.name
        );
    }
}

#[test]
fn packed_simulation_is_bit_identical_to_fixtures() {
    let suite = public_suite().expect("suite generates");
    let config = FlowConfig::default();
    let lib = Library::standard();
    let sim_cfg = SimConfig::default();
    let (_, _, golden) = parse_fixtures();
    assert_eq!(suite.len(), golden.len());
    for (bench, golden) in suite.iter().zip(&golden) {
        assert_eq!(bench.name, golden.get("name"));
        let net = &bench.network;
        let pi = vec![0.5; net.inputs().len()];
        let synth = DominoSynthesizer::new(net).expect("synthesizer");
        let ma = min_area_assignment(&synth, &config.area).expect("min-area");
        let domino = synth.synthesize(&ma.assignment).expect("synthesis");
        let mapped = map(&domino, &lib);

        let power = measure_power(&mapped, &lib, &pi, &sim_cfg);
        assert_eq!(
            power.total_ma().to_bits(),
            golden.hex("power_total"),
            "{}: measured power total is no longer bit-identical",
            bench.name
        );
        assert_eq!(
            power.switch_events,
            golden.num("switch_events"),
            "{}: switch-event count moved",
            bench.name
        );
        assert_eq!(power.stats.vectors, golden.num("vectors"), "{}", bench.name);
        assert_eq!(power.stats.words, golden.num("words"), "{}", bench.name);

        let switching = measure_domino_switching(&domino, &pi, &sim_cfg);
        for (key, value) in [
            ("block", switching.block),
            ("input_inv", switching.input_inverters),
            ("output_inv", switching.output_inverters),
        ] {
            assert_eq!(
                value.to_bits(),
                golden.hex(key),
                "{}: switching '{key}' is no longer bit-identical",
                bench.name
            );
        }
    }
}

/// One random unique-table operation: a key triple (narrow ranges force
/// collisions and duplicate lookups).
fn key_strategy() -> impl Strategy<Value = (u32, u32, u32)> {
    (0u32..32, 0u32..64, 0u32..64)
}

proptest! {
    /// The open-addressed table must agree with a `HashMap` reference
    /// model under the manager's access pattern (lookup, insert on miss)
    /// for every random workload, including through growth.
    #[test]
    fn unique_table_agrees_with_hashmap_model(keys in proptest::collection::vec(key_strategy(), 1..400)) {
        let mut table = UniqueTable::new();
        let mut reference: HashMap<(u32, u32, u32), u32> = HashMap::new();
        let mut next = 2u32; // node handles start at 2
        for (level, lo, hi) in keys {
            let expect = reference.get(&(level, lo, hi)).copied();
            prop_assert_eq!(table.get(level, lo, hi), expect);
            if expect.is_none() {
                table.insert(level, lo, hi, next);
                reference.insert((level, lo, hi), next);
                next += 1;
            }
        }
        prop_assert_eq!(table.len(), reference.len());
        // Every interned key is still retrievable after all growth.
        for (&(level, lo, hi), &value) in &reference {
            prop_assert_eq!(table.get(level, lo, hi), Some(value));
        }
        // Exactly one counted miss per interned key (its first lookup);
        // everything else — including the retrieval loop above — hit.
        let (hits, misses) = table.counters();
        prop_assert_eq!(misses as usize, reference.len());
        prop_assert!(hits as usize >= reference.len());
    }
}
