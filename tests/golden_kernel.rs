//! Golden equivalence tests for the PR 2 kernel overhaul: the dense-arena
//! BDD engine, the dense-refcount accountant and the sharded Gray-code
//! walk must be *bit-identical* to the pre-refactor `HashMap`
//! implementation on the public suite.
//!
//! The fixtures below were generated from the pre-overhaul kernel with
//! `cargo run --release -p domino-bench --bin golden_dump` and pin, per
//! circuit: the structural digest (cache-key ingredient), an FNV-1a hash
//! over the exact `f64` bit patterns of every node probability, the shared
//! BDD node count, and the min-area / min-power search outcomes (assignment
//! plus the objective's raw bit pattern). Any kernel change that shifts a
//! single probability bit or a single search decision fails here.
//!
//! The property tests at the bottom drive the open-addressed unique table
//! against a `std::collections::HashMap` reference model under random
//! workloads.

use std::collections::HashMap;

use dominolp::bdd::table::UniqueTable;
use dominolp::phase::flow::FlowConfig;
use dominolp::phase::prob::compute_probabilities;
use dominolp::phase::search::{min_area_assignment, min_power_assignment};
use dominolp::phase::{DominoSynthesizer, PhaseAssignment};
use dominolp::workloads::public_suite;
use proptest::prelude::*;

struct GoldenRow {
    name: &'static str,
    digest: u64,
    prob_hash: u64,
    bdd_nodes: usize,
    ma_assignment: &'static str,
    ma_objective_bits: u64,
    ma_evaluations: usize,
    mp_assignment: &'static str,
    mp_objective_bits: u64,
    mp_evaluations: usize,
}

/// Pre-overhaul kernel values; regenerate with
/// `cargo run --release -p domino-bench --bin golden_dump`.
const GOLDEN: &[GoldenRow] = &[
    GoldenRow { name: "apex7", digest: 0xe23dcc7e250d3bdf, prob_hash: 0x3ddb35bee41d9e29, bdd_nodes: 380, ma_assignment: "++++++++++++++-+++++++++++++++++++++", ma_objective_bits: 0x4077300000000000, ma_evaluations: 73, mp_assignment: "+-+-++--+++--+---+---++-+++-+---++++", mp_objective_bits: 0x4063c49000000000, mp_evaluations: 530 },
    GoldenRow { name: "frg1", digest: 0x81af3594a297e6ed, prob_hash: 0xc61a601b42e15da9, bdd_nodes: 50, ma_assignment: "+++", ma_objective_bits: 0x405dc00000000000, ma_evaluations: 8, mp_assignment: "++-", mp_objective_bits: 0x404ac00000000000, mp_evaluations: 3 },
    GoldenRow { name: "x1", digest: 0x4cf57f9dc9662319, prob_hash: 0xb00ed94458a37753, bdd_nodes: 363, ma_assignment: "-+++++++++++++++++++++++++++", ma_objective_bits: 0x407a500000000000, ma_evaluations: 57, mp_assignment: "--+--++---+--++++-+++++-+-+-", mp_objective_bits: 0x40677d7000000000, mp_evaluations: 228 },
    GoldenRow { name: "x3", digest: 0x1ddbaa0a0b908f76, prob_hash: 0xc3d6cb4313d6159f, bdd_nodes: 2093, ma_assignment: "++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++++-++", ma_objective_bits: 0x4095fc0000000000, ma_evaluations: 199, mp_assignment: "++-++----++++--+--++-+---+-+----+-++++---+++-++-++--+--++++++---++-+++-+-++--++--++-++-++-+++--++++", mp_objective_bits: 0x4082fc2e54000000, mp_evaluations: 1499 },
];

/// FNV-1a over the `f64` bit patterns — equal hash ⟺ byte-identical
/// probabilities (must match `golden_dump`'s implementation).
fn prob_hash(probs: &[f64]) -> u64 {
    let mut state = 0xcbf2_9ce4_8422_2325u64;
    for &p in probs {
        for byte in p.to_bits().to_le_bytes() {
            state ^= u64::from(byte);
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    state
}

#[test]
fn kernel_is_bit_identical_to_pre_overhaul_fixtures() {
    let suite = public_suite().expect("suite generates");
    let config = FlowConfig::default();
    assert_eq!(suite.len(), GOLDEN.len());
    for (bench, golden) in suite.iter().zip(GOLDEN) {
        assert_eq!(bench.name, golden.name);
        let net = &bench.network;
        assert_eq!(
            net.structural_digest(),
            golden.digest,
            "{}: structural digest (cache key ingredient) moved",
            bench.name
        );
        let pi = vec![0.5; net.inputs().len()];
        let probs = compute_probabilities(net, &pi, &config.probability).expect("probabilities");
        assert_eq!(
            prob_hash(probs.as_slice()),
            golden.prob_hash,
            "{}: node probabilities are no longer bit-identical",
            bench.name
        );
        assert_eq!(probs.bdd_node_count(), golden.bdd_nodes, "{}", bench.name);

        let synth = DominoSynthesizer::new(net).expect("synthesizer");
        let n = synth.view_outputs().len();
        let ma = min_area_assignment(&synth, &config.area).expect("min-area");
        assert_eq!(
            ma.assignment.to_string(),
            golden.ma_assignment,
            "{} MA",
            bench.name
        );
        assert_eq!(
            ma.objective.to_bits(),
            golden.ma_objective_bits,
            "{} MA objective",
            bench.name
        );
        assert_eq!(ma.evaluations, golden.ma_evaluations, "{} MA", bench.name);

        let mp = min_power_assignment(
            &synth,
            &probs,
            PhaseAssignment::all_positive(n),
            &config.power,
        )
        .expect("min-power");
        assert_eq!(
            mp.assignment.to_string(),
            golden.mp_assignment,
            "{} MP",
            bench.name
        );
        assert_eq!(
            mp.objective.to_bits(),
            golden.mp_objective_bits,
            "{} MP objective",
            bench.name
        );
        assert_eq!(mp.evaluations, golden.mp_evaluations, "{} MP", bench.name);
    }
}

/// One random unique-table operation: a key triple (narrow ranges force
/// collisions and duplicate lookups).
fn key_strategy() -> impl Strategy<Value = (u32, u32, u32)> {
    (0u32..32, 0u32..64, 0u32..64)
}

proptest! {
    /// The open-addressed table must agree with a `HashMap` reference
    /// model under the manager's access pattern (lookup, insert on miss)
    /// for every random workload, including through growth.
    #[test]
    fn unique_table_agrees_with_hashmap_model(keys in proptest::collection::vec(key_strategy(), 1..400)) {
        let mut table = UniqueTable::new();
        let mut reference: HashMap<(u32, u32, u32), u32> = HashMap::new();
        let mut next = 2u32; // node handles start at 2
        for (level, lo, hi) in keys {
            let expect = reference.get(&(level, lo, hi)).copied();
            prop_assert_eq!(table.get(level, lo, hi), expect);
            if expect.is_none() {
                table.insert(level, lo, hi, next);
                reference.insert((level, lo, hi), next);
                next += 1;
            }
        }
        prop_assert_eq!(table.len(), reference.len());
        // Every interned key is still retrievable after all growth.
        for (&(level, lo, hi), &value) in &reference {
            prop_assert_eq!(table.get(level, lo, hi), Some(value));
        }
        // Exactly one counted miss per interned key (its first lookup);
        // everything else — including the retrieval loop above — hit.
        let (hits, misses) = table.counters();
        prop_assert_eq!(misses as usize, reference.len());
        prop_assert!(hits as usize >= reference.len());
    }
}
