//! Cross-crate integration: the complete flow preserves functionality and
//! its invariants on randomly generated control blocks.

use dominolp::netlist::optimize;
use dominolp::phase::flow::{minimize_area, minimize_power, FlowConfig};
use dominolp::sim::VectorSource;
use dominolp::workloads::{generate, GeneratorSpec};

fn sample_equivalence(
    net: &dominolp::netlist::Network,
    domino: &dominolp::phase::DominoNetwork,
    seed: u64,
) {
    let mut vectors = VectorSource::uniform(net.inputs().len(), seed);
    for _ in 0..200 {
        let v = vectors.next_vector();
        assert_eq!(
            domino.eval(&v).expect("eval"),
            net.eval_comb(&v).expect("eval"),
            "domino block must compute the original functions"
        );
    }
}

#[test]
fn ma_and_mp_flows_preserve_function() {
    for seed in 0..6u64 {
        let spec = GeneratorSpec::control_block(format!("rand{seed}"), 16, 6, 70, seed);
        let net = generate(&spec).expect("generator succeeds");
        let pi = vec![0.5; 16];
        let cfg = FlowConfig::default();
        let ma = minimize_area(&net, &pi, &cfg).expect("ma flow");
        let mp = minimize_power(&net, &pi, &cfg).expect("mp flow");
        assert!(ma.domino.is_inverter_free());
        assert!(mp.domino.is_inverter_free());
        sample_equivalence(&net, &ma.domino, 100 + seed);
        sample_equivalence(&net, &mp.domino, 200 + seed);
        // MP's estimate is never worse than the all-positive start, and the
        // reported power matches the search objective.
        assert!((mp.power.total() - mp.outcome.objective).abs() < 1e-9);
    }
}

#[test]
fn optimize_then_flow_agrees_with_raw_flow_functionally() {
    let spec = GeneratorSpec::control_block("opt", 14, 5, 60, 3);
    let raw = generate(&spec).expect("generator succeeds");
    let (opt, _) = optimize(&raw);
    let pi = vec![0.5; 14];
    let cfg = FlowConfig::default();
    let report = minimize_power(&opt, &pi, &cfg).expect("mp flow");
    // The optimized network's domino block computes the raw functions.
    let mut vectors = VectorSource::uniform(14, 7);
    for _ in 0..200 {
        let v = vectors.next_vector();
        assert_eq!(
            report.domino.eval(&v).expect("eval"),
            raw.eval_comb(&v).expect("eval")
        );
    }
    // Optimization never grows the network.
    assert!(opt.len() <= raw.len());
}

#[test]
fn flows_are_formally_equivalent_to_the_source() {
    use dominolp::bdd::circuit::check_equivalence;
    use dominolp::phase::DominoSynthesizer;
    for seed in 0..4u64 {
        let spec = GeneratorSpec::control_block(format!("feq{seed}"), 14, 5, 55, seed);
        let net = generate(&spec).expect("generator succeeds");
        let pi = vec![0.5; 14];
        let cfg = FlowConfig::default();
        let synth = DominoSynthesizer::new(&net).expect("valid");
        let view = synth.comb_view();
        for report in [
            minimize_area(&net, &pi, &cfg).expect("ma flow"),
            minimize_power(&net, &pi, &cfg).expect("mp flow"),
        ] {
            // Complete (BDD) equivalence — not sampling.
            assert_eq!(
                check_equivalence(&view, &report.domino.to_network()).expect("bdds build"),
                None,
                "seed {seed}"
            );
        }
    }
}

#[test]
fn sequential_flow_preserves_cycle_behaviour() {
    use dominolp::netlist::SequentialState;
    let spec = GeneratorSpec {
        n_latches: 6,
        ..GeneratorSpec::control_block("seqflow", 10, 4, 50, 9)
    };
    let net = generate(&spec).expect("generator succeeds");
    let pi = vec![0.5; 10];
    let report = minimize_power(&net, &pi, &FlowConfig::default()).expect("mp flow");

    // Step the original network and the domino block side by side: the
    // domino view outputs are [POs, latch Ds]; latch state evolves
    // identically, so POs must match cycle by cycle.
    let mut state = SequentialState::new(&net);
    let mut domino_state: Vec<bool> = report.domino.latch_inits().to_vec();
    let mut vectors = VectorSource::uniform(10, 31);
    for cycle in 0..100 {
        let v = vectors.next_vector();
        let want = state.step(&net, &v).expect("step");
        let mut sources = v.clone();
        sources.extend(domino_state.iter().copied());
        let outs = report.domino.eval(&sources).expect("eval");
        let n_pos = net.outputs().len();
        assert_eq!(&outs[..n_pos], &want[..], "cycle {cycle}");
        domino_state.copy_from_slice(&outs[n_pos..]);
    }
}
