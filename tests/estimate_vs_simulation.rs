//! The power-estimation contract: BDD-exact `Σ S·C·P` equals simulated
//! switching (Property 2.1/2.2 make zero-delay exact), and exact BDD
//! probabilities match Monte-Carlo sampling.

use dominolp::phase::power::{estimate_power, PowerModel};
use dominolp::phase::prob::{compute_probabilities, ProbabilityConfig};
use dominolp::phase::{DominoSynthesizer, PhaseAssignment};
use dominolp::sim::montecarlo::estimate_node_probabilities;
use dominolp::sim::{measure_domino_switching, SimConfig};
use dominolp::workloads::{generate, GeneratorSpec};

#[test]
fn bdd_probabilities_match_monte_carlo() {
    for seed in [1u64, 4] {
        let spec = GeneratorSpec::control_block(format!("mc{seed}"), 12, 4, 45, seed);
        let net = generate(&spec).expect("generator succeeds");
        let pi: Vec<f64> = (0..12).map(|i| 0.2 + 0.05 * i as f64).collect();
        let exact = compute_probabilities(&net, &pi, &ProbabilityConfig::default())
            .expect("probabilities compute");
        let mc = estimate_node_probabilities(
            &net,
            &pi,
            &SimConfig {
                cycles: 40_000,
                warmup: 0,
                seed: 77,
                ..SimConfig::default()
            },
        );
        for id in net.node_ids() {
            let i = id.index();
            assert!(
                (exact.get(i) - mc[i]).abs() < 0.015,
                "seed {seed} node {i}: exact {} vs mc {}",
                exact.get(i),
                mc[i]
            );
        }
    }
}

#[test]
fn estimate_matches_simulated_switching_for_every_assignment_shape() {
    let spec = GeneratorSpec::control_block("est", 10, 4, 36, 2);
    let net = generate(&spec).expect("generator succeeds");
    let pi = vec![0.7; 10];
    let probs = compute_probabilities(&net, &pi, &ProbabilityConfig::default()).expect("probs");
    let synth = DominoSynthesizer::new(&net).expect("valid");
    let n = synth.view_outputs().len();
    let cfg = SimConfig {
        cycles: 60_000,
        warmup: 16,
        seed: 3,
        ..SimConfig::default()
    };
    for bits in [0u64, 0b1010, (1 << n as u64) - 1] {
        let pa = PhaseAssignment::from_bits(n, bits & ((1 << n as u64) - 1));
        let domino = synth.synthesize(&pa).expect("synthesis succeeds");
        let est = estimate_power(&domino, probs.as_slice(), &PowerModel::unit());
        let sim = measure_domino_switching(&domino, &pi, &cfg);
        let tol = 0.03 * est.total().max(1.0);
        assert!(
            (est.total() - sim.total()).abs() < tol,
            "bits {bits:b}: est {} vs sim {}",
            est.total(),
            sim.total()
        );
    }
}

#[test]
fn sequential_estimate_tracks_simulation() {
    // With feedback, the BDD estimate uses partition + fixpoint sweeps —
    // an approximation; simulation sees the true correlated state. They
    // must still agree loosely.
    let spec = GeneratorSpec {
        n_latches: 5,
        ..GeneratorSpec::control_block("seq_est", 8, 3, 40, 6)
    };
    let net = generate(&spec).expect("generator succeeds");
    let pi = vec![0.5; 8];
    let probs = compute_probabilities(
        &net,
        &pi,
        &ProbabilityConfig {
            sweeps: 4,
            ..ProbabilityConfig::default()
        },
    )
    .expect("probs");
    let synth = DominoSynthesizer::new(&net).expect("valid");
    let n = synth.view_outputs().len();
    let domino = synth
        .synthesize(&PhaseAssignment::all_positive(n))
        .expect("synthesis succeeds");
    let est = estimate_power(&domino, probs.as_slice(), &PowerModel::unit());
    let sim = measure_domino_switching(
        &domino,
        &pi,
        &SimConfig {
            cycles: 60_000,
            warmup: 64,
            seed: 9,
            ..SimConfig::default()
        },
    );
    let rel = (est.total() - sim.total()).abs() / sim.total();
    assert!(
        rel < 0.15,
        "sequential estimate off by {:.1}%: est {} vs sim {}",
        100.0 * rel,
        est.total(),
        sim.total()
    );
}
