//! Search-machinery behaviour at suite scale: hill-climbing min-area beyond
//! the exhaustive limit, grouped-K vs pairwise, and cost-model sanity on
//! wide-interface circuits.

use dominolp::phase::cost::CostModel;
use dominolp::phase::prob::{compute_probabilities, ProbabilityConfig};
use dominolp::phase::search::{
    min_area_assignment, min_power_assignment, min_power_assignment_grouped, MinAreaConfig,
    MinPowerConfig,
};
use dominolp::phase::{DominoSynthesizer, PhaseAssignment};
use dominolp::workloads::{generate, GeneratorSpec};

#[test]
fn hill_climbing_min_area_matches_resynthesis() {
    // 24 outputs: beyond the default exhaustive limit, so the hill climber
    // runs; its reported objective must equal the real synthesized area.
    let spec = GeneratorSpec::control_block("wide", 30, 24, 160, 13);
    let net = generate(&spec).expect("generator succeeds");
    let synth = DominoSynthesizer::new(&net).expect("valid");
    let outcome = min_area_assignment(&synth, &MinAreaConfig::default()).expect("search");
    let full = synth.synthesize(&outcome.assignment).expect("synthesis");
    assert_eq!(outcome.objective as usize, full.area_cells());
    // Hill climbing from all-positive can only improve or stay.
    let all_pos = synth
        .synthesize(&PhaseAssignment::all_positive(24))
        .expect("synthesis");
    assert!(full.area_cells() <= all_pos.area_cells());
}

#[test]
fn exhaustive_limit_boundary_behaviour() {
    // Exactly at the limit the search is exhaustive (2^n evaluations).
    let spec = GeneratorSpec::control_block("exact", 12, 4, 40, 2);
    let net = generate(&spec).expect("generator succeeds");
    let synth = DominoSynthesizer::new(&net).expect("valid");
    let outcome = min_area_assignment(
        &synth,
        &MinAreaConfig {
            exhaustive_limit: 4,
            max_passes: 0,
        },
    )
    .expect("search");
    assert_eq!(outcome.evaluations, 16);
    // Certify optimality against brute force.
    let brute = (0..16u64)
        .map(|bits| {
            synth
                .synthesize(&PhaseAssignment::from_bits(4, bits))
                .expect("synthesis")
                .area_cells()
        })
        .min()
        .expect("non-empty");
    assert_eq!(outcome.objective as usize, brute);
}

#[test]
fn grouped_k_never_loses_to_pairwise_at_scale() {
    let spec = GeneratorSpec::control_block("grp", 20, 7, 90, 8);
    let net = generate(&spec).expect("generator succeeds");
    let pi = vec![0.5; 20];
    let probs = compute_probabilities(&net, &pi, &ProbabilityConfig::default()).expect("probs");
    let synth = DominoSynthesizer::new(&net).expect("valid");
    let n = synth.view_outputs().len();
    let cfg = MinPowerConfig::default();
    let pair = min_power_assignment(&synth, &probs, PhaseAssignment::all_positive(n), &cfg)
        .expect("search");
    let triple =
        min_power_assignment_grouped(&synth, &probs, PhaseAssignment::all_positive(n), &cfg, 3)
            .expect("search");
    // Both end at local optima of the same refinement; grouped exploration
    // can only help the pre-refinement phase.
    assert!(triple.objective <= pair.objective * 1.02 + 1e-9);
}

#[test]
fn cost_model_invariants_at_scale() {
    let spec = GeneratorSpec::control_block("cm", 40, 12, 200, 5);
    let net = generate(&spec).expect("generator succeeds");
    let pi = vec![0.5; 40];
    let probs = compute_probabilities(&net, &pi, &ProbabilityConfig::default()).expect("probs");
    let synth = DominoSynthesizer::new(&net).expect("valid");
    let cm = CostModel::new(&synth, &probs);
    let n = cm.len();
    assert_eq!(n, 12);
    for i in 0..n {
        assert!(cm.cone_size(i) > 0, "every cone is non-empty");
        for phase in [
            dominolp::phase::Phase::Positive,
            dominolp::phase::Phase::Negative,
        ] {
            let a = cm.average(i, phase);
            assert!((0.0..=1.0).contains(&a));
        }
        for j in 0..n {
            if i == j {
                continue;
            }
            let o = cm.overlap(i, j);
            // |Di ∩ Dj| ≤ min(|Di|, |Dj|) ⇒ O ≤ 0.5 (0.5 iff identical
            // cones); symmetric.
            assert!((0.0..=0.5).contains(&o), "O({i},{j}) = {o}");
            assert_eq!(cm.overlap(i, j), cm.overlap(j, i));
        }
        // K is monotone in the averages: all-positive cost with high
        // averages exceeds the flipped cost when averages exceed ½.
        for j in 0..n {
            if i == j {
                continue;
            }
            let (pi_, pj_, k) = cm.pair_best(i, j, &PhaseAssignment::all_positive(n));
            assert!(k <= cm.cost(i, j, pi_, pj_) + 1e-12);
        }
    }
}
