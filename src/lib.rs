//! # dominolp — low-power domino logic synthesis via output phase assignment
//!
//! Umbrella crate for the `dominolp` workspace, a from-scratch reproduction of
//! *Patra & Narayanan, "Automated Phase Assignment for the Synthesis of Low
//! Power Domino Circuits", DAC 1999*.
//!
//! Each subsystem lives in its own crate and is re-exported here under a short
//! module name:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`netlist`] | `domino-netlist` | Boolean networks, BLIF I/O, traversal |
//! | [`bdd`] | `domino-bdd` | ROBDDs, exact signal probability, variable ordering |
//! | [`sgraph`] | `domino-sgraph` | s-graphs, MFVS heuristics, sequential partitioning |
//! | [`phase`] | `domino-phase` | inverter-free domino synthesis, min-area & min-power phase assignment, power estimation |
//! | [`techmap`] | `domino-techmap` | domino cell library, mapping, STA, sizing |
//! | [`sim`] | `domino-sim` | statistical vector simulation ("PowerMill" substitute) |
//! | [`workloads`] | `domino-workloads` | benchmark circuits and paper figure examples |
//! | [`engine`] | `domino-engine` | parallel batch flow engine, content-addressed result cache |
//! | [`serve`] | `domino-serve` | `dominod` phase-assignment server, wire protocol, `dominoc` CLI |
//! | [`fleet`] | `domino-fleet` | `dominogw` consistent-hash gateway, backend pools, cache peering |
//!
//! # Quickstart
//!
//! ```
//! use dominolp::phase::{DominoSynthesizer, PhaseAssignment};
//! use dominolp::workloads::figures::fig5_network;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = fig5_network()?;
//! let synth = DominoSynthesizer::new(&net)?;
//! // All-positive phases: every output implemented without a boundary inverter.
//! let assignment = PhaseAssignment::all_positive(net.outputs().len());
//! let domino = synth.synthesize(&assignment)?;
//! assert!(domino.is_inverter_free());
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end flows and `crates/bench` for the binaries
//! that regenerate every table and figure of the paper.

pub use domino_bdd as bdd;
pub use domino_engine as engine;
pub use domino_fleet as fleet;
pub use domino_netlist as netlist;
pub use domino_phase as phase;
pub use domino_serve as serve;
pub use domino_sgraph as sgraph;
pub use domino_sim as sim;
pub use domino_techmap as techmap;
pub use domino_workloads as workloads;

/// The architecture book — crate map, the end-to-end flow, and the
/// determinism contract. Rendered from `docs/ARCHITECTURE.md`; including
/// it here also compiles the book's `rust` fences as doctests, so CI
/// (`cargo test --doc`) fails when a documented snippet rots.
#[doc = include_str!("../docs/ARCHITECTURE.md")]
pub mod architecture {}

/// The benchmarking book — `perf_snapshot`, the CI regression gate,
/// baseline workflow, and the per-PR `BENCH_PR*.json` records. Rendered
/// from `docs/BENCHMARKING.md`; fences compile as doctests like
/// [`architecture`]'s.
#[doc = include_str!("../docs/BENCHMARKING.md")]
pub mod benchmarking {}
