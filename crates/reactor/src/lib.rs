//! A minimal readiness reactor for the serve layer: a hand-rolled
//! epoll(7) wrapper, a socketpair-based cross-thread waker, and a hashed
//! timer wheel for idle-timeout deadlines.
//!
//! The build environment has no crate-registry access, so this is the
//! project's `mio`: just enough of the epoll surface for `dominod` and
//! `dominogw` to drive thousands of kept-alive HTTP connections from one
//! thread. The unsafe FFI is confined to this crate — `domino-serve` and
//! `domino-fleet` keep their `#![forbid(unsafe_code)]`.
//!
//! * [`Poller`] — level-triggered epoll: register a fd with a `u64`
//!   token and an [`Interest`], harvest [`Event`]s with [`Poller::wait`].
//! * [`Waker`] — a `UnixStream` pair whose read end lives in the poller;
//!   any thread can [`Waker::wake`] the poll loop out of its sleep.
//! * [`TimerWheel`] — a hashed wheel of `(token, seq)` deadlines with
//!   lazy cancellation (stale `seq`s are simply ignored by the caller).

#![warn(missing_docs)]

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Linux `epoll_event`. On x86-64 the kernel ABI packs this to 12 bytes;
/// other architectures use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0x80000;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
}

/// Which readiness a registration cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when the fd is readable.
    pub readable: bool,
    /// Report when the fd is writable.
    pub writable: bool,
    /// Report peer half-closes (`EPOLLRDHUP`) as [`Event::hangup`].
    /// Level-triggered epoll re-reports a half-close on every wait, so a
    /// caller that has noted the hangup (but keeps the fd open to flush
    /// a pending response) must re-register without this bit or the poll
    /// loop spins.
    pub rdhup: bool,
}

impl Interest {
    /// Read-readiness only (plus half-close reports).
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
        rdhup: true,
    };
    /// Write-readiness only (plus half-close reports).
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
        rdhup: true,
    };
    /// Both read- and write-readiness (plus half-close reports).
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
        rdhup: true,
    };

    fn mask(self) -> u32 {
        let mut mask = 0;
        if self.readable {
            mask |= EPOLLIN;
        }
        if self.writable {
            mask |= EPOLLOUT;
        }
        if self.rdhup {
            mask |= EPOLLRDHUP;
        }
        mask
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable (or has pending data before a hangup).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer closed (EPOLLHUP / EPOLLRDHUP).
    pub hangup: bool,
    /// The fd is in an error state (EPOLLERR).
    pub error: bool,
}

/// A level-triggered epoll instance.
#[derive(Debug)]
pub struct Poller {
    epfd: OwnedFd,
}

/// How many kernel events one [`Poller::wait`] call can harvest. More
/// ready fds than this simply surface on the next call (level-triggered).
const WAIT_BATCH: usize = 1024;

impl Poller {
    /// Creates the epoll instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    ///
    /// The raw OS error from `epoll_create1`.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 has no pointer arguments; a non-negative
        // return is a freshly created fd we immediately take ownership of.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `fd` is a valid, just-created epoll fd owned by no one
        // else.
        let epfd = unsafe { OwnedFd::from_raw_fd(fd) };
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Option<Interest>) -> io::Result<()> {
        let mut event = EpollEvent {
            events: interest.map_or(0, Interest::mask),
            data: token,
        };
        // SAFETY: `event` is a valid epoll_event for the duration of the
        // call; the kernel copies it and keeps no reference.
        let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// The raw OS error from `epoll_ctl` (e.g. `EEXIST`).
    pub fn add(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd.as_raw_fd(), token, Some(interest))
    }

    /// Changes the interest set of an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// The raw OS error from `epoll_ctl` (e.g. `ENOENT`).
    pub fn modify(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd.as_raw_fd(), token, Some(interest))
    }

    /// Removes `fd` from the poller. Dropping the fd deregisters it too,
    /// but an explicit delete keeps close-ordering obvious.
    ///
    /// # Errors
    ///
    /// The raw OS error from `epoll_ctl` (e.g. `ENOENT`).
    pub fn delete(&self, fd: &impl AsRawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd.as_raw_fd(), 0, None)
    }

    /// Blocks up to `timeout` (forever when `None`) for readiness,
    /// appending reports to `events` (which is cleared first). An
    /// `EINTR`ed wait returns an empty batch rather than an error.
    ///
    /// # Errors
    ///
    /// The raw OS error from `epoll_wait`.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(t) => {
                // Round up so a 100µs timeout polls for 1ms, not 0 (a busy
                // loop); clamp into the i32 the syscall takes.
                let ms = t.as_millis();
                if ms == 0 && !t.is_zero() {
                    1
                } else {
                    ms.min(i32::MAX as u128) as i32
                }
            }
        };
        let mut buf = [EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
        // SAFETY: `buf` is a writable array of WAIT_BATCH epoll_events;
        // the kernel fills at most that many entries.
        let rc = unsafe {
            epoll_wait(
                self.epfd.as_raw_fd(),
                buf.as_mut_ptr(),
                WAIT_BATCH as i32,
                timeout_ms,
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for raw in buf.iter().take(rc as usize) {
            // Copy out of the (possibly packed) struct before use: no
            // references into packed fields.
            let entry = *raw;
            let mask = { entry.events };
            let token = { entry.data };
            events.push(Event {
                token,
                readable: mask & EPOLLIN != 0,
                writable: mask & EPOLLOUT != 0,
                hangup: mask & (EPOLLHUP | EPOLLRDHUP) != 0,
                error: mask & EPOLLERR != 0,
            });
        }
        Ok(())
    }
}

/// Wakes a [`Poller::wait`] loop from another thread: a `UnixStream`
/// pair whose read end is registered in the poller. Replaces the old
/// "self-connect to the listen address" drain trick — a wake never
/// depends on the listener still accepting.
#[derive(Debug)]
pub struct Waker {
    tx: Arc<UnixStream>,
    rx: UnixStream,
}

impl Waker {
    /// Creates the pair; both ends are non-blocking.
    ///
    /// # Errors
    ///
    /// The OS error from `socketpair(2)` or `fcntl`.
    pub fn new() -> io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker {
            tx: Arc::new(tx),
            rx,
        })
    }

    /// Nudges the poll loop. Cheap and idempotent: a full pipe means a
    /// wake is already pending, which is all a wake means.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&*self.tx).write(&[1u8]);
    }

    /// Drains pending wake bytes (call when the waker's token reports
    /// readable, before re-polling).
    pub fn drain(&self) {
        use std::io::Read;
        let mut sink = [0u8; 64];
        while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
    }

    /// A write-end handle so other threads can wake the loop without
    /// sharing the whole waker. Handles share one socket (no `dup`), so
    /// cloning them never consumes an fd — a server at its NOFILE limit
    /// can still be woken.
    ///
    /// # Errors
    ///
    /// None today; the signature stays fallible so a future handle that
    /// must allocate an fd can surface it.
    pub fn handle(&self) -> io::Result<WakeHandle> {
        Ok(WakeHandle {
            tx: Arc::clone(&self.tx),
        })
    }
}

impl AsRawFd for Waker {
    /// The read end — this is the fd to register in the poller.
    fn as_raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }
}

/// A cloneable write-end handle of a [`Waker`]. All handles share the
/// waker's single write socket, so cloning is an `Arc` bump — it cannot
/// fail, and in particular cannot panic under fd exhaustion.
#[derive(Debug, Clone)]
pub struct WakeHandle {
    tx: Arc<UnixStream>,
}

impl WakeHandle {
    /// Nudges the poll loop (see [`Waker::wake`]).
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&*self.tx).write(&[1u8]);
    }
}

#[derive(Debug, Clone, Copy)]
struct TimerEntry {
    token: u64,
    seq: u64,
    rounds: u64,
}

/// A hashed timer wheel: deadlines quantized to a tick, stored in a ring
/// of slots, fired by [`TimerWheel::advance`]. Cancellation is lazy —
/// the caller tags each schedule with a per-connection `seq` and ignores
/// expirations whose `seq` is stale.
#[derive(Debug)]
pub struct TimerWheel {
    start: Instant,
    tick: Duration,
    slots: Vec<Vec<TimerEntry>>,
    /// Ticks fully consumed by `advance` so far.
    current: u64,
}

impl TimerWheel {
    /// A wheel of `slots` buckets, each `tick` wide. Deadlines beyond
    /// `slots * tick` wrap (they carry a round counter), so a small wheel
    /// handles arbitrarily long timeouts.
    pub fn new(tick: Duration, slots: usize) -> TimerWheel {
        assert!(!tick.is_zero(), "timer tick must be non-zero");
        assert!(slots >= 2, "timer wheel needs at least 2 slots");
        TimerWheel {
            start: Instant::now(),
            tick,
            slots: vec![Vec::new(); slots],
            current: 0,
        }
    }

    /// The wheel's resolution — a natural poll timeout for the reactor.
    pub fn tick(&self) -> Duration {
        self.tick
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.start);
        (elapsed.as_nanos() / self.tick.as_nanos()) as u64
    }

    /// Schedules `(token, seq)` to expire at `fire_at` (quantized up to
    /// the next tick boundary, never the current one).
    pub fn schedule(&mut self, token: u64, seq: u64, fire_at: Instant) {
        let target = self.tick_of(fire_at).max(self.current + 1);
        let slot = (target % self.slots.len() as u64) as usize;
        let rounds = (target - self.current - 1) / self.slots.len() as u64;
        self.slots[slot].push(TimerEntry { token, seq, rounds });
    }

    /// Advances the wheel to `now`, appending every expired `(token,
    /// seq)` to `expired` in firing order.
    pub fn advance(&mut self, now: Instant, expired: &mut Vec<(u64, u64)>) {
        let target = self.tick_of(now);
        while self.current < target {
            self.current += 1;
            let slot = (self.current % self.slots.len() as u64) as usize;
            self.slots[slot].retain_mut(|entry| {
                if entry.rounds == 0 {
                    expired.push((entry.token, entry.seq));
                    false
                } else {
                    entry.rounds -= 1;
                    true
                }
            });
        }
    }
}

/// Linux `struct rlimit` (64-bit `rlim_t` on every supported target).
#[repr(C)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

const RLIMIT_NOFILE: i32 = 7;

extern "C" {
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

/// Raises the process's open-file soft limit to at least `min` (clamped
/// to the hard limit) and returns the resulting soft limit. A soft limit
/// already at or above `min` is left untouched. High-connection-count
/// harnesses call this so "thousands of kept-alive sockets" does not die
/// on a default 1024-fd ulimit.
///
/// # Errors
///
/// The raw OS error from `getrlimit`/`setrlimit`.
pub fn raise_open_file_limit(min: u64) -> io::Result<u64> {
    let mut lim = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: getrlimit writes the current limits into the struct we own.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur >= min {
        return Ok(lim.rlim_cur);
    }
    let raised = RLimit {
        rlim_cur: min.min(lim.rlim_max),
        rlim_max: lim.rlim_max,
    };
    // SAFETY: setrlimit only reads the struct; the new soft limit is
    // clamped to the hard limit, which an unprivileged process may set.
    if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(raised.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn poller_reports_readable_with_token() {
        let poller = Poller::new().expect("epoll");
        let (mut a, b) = UnixStream::pair().expect("pair");
        b.set_nonblocking(true).expect("nonblocking");
        poller.add(&b, 7, Interest::READABLE).expect("add");

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty(), "nothing written yet");

        a.write_all(b"x").expect("write");
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn poller_reports_writable_and_modify_narrows() {
        let poller = Poller::new().expect("epoll");
        let (a, _b) = UnixStream::pair().expect("pair");
        a.set_nonblocking(true).expect("nonblocking");
        poller.add(&a, 3, Interest::BOTH).expect("add");

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert!(events[0].writable);

        // Narrow to read-only: an idle writable socket goes quiet.
        poller.modify(&a, 3, Interest::READABLE).expect("modify");
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty());

        poller.delete(&a).expect("delete");
    }

    #[test]
    fn poller_reports_hangup_on_peer_close() {
        let poller = Poller::new().expect("epoll");
        let (a, b) = UnixStream::pair().expect("pair");
        b.set_nonblocking(true).expect("nonblocking");
        poller.add(&b, 9, Interest::READABLE).expect("add");
        drop(a);

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert!(events[0].hangup);
    }

    #[test]
    fn waker_wakes_a_blocked_poll() {
        let poller = Poller::new().expect("epoll");
        let waker = Waker::new().expect("waker");
        poller
            .add(&waker, u64::MAX, Interest::READABLE)
            .expect("add");
        let handle = waker.handle().expect("handle");

        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            handle.wake();
        });

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, u64::MAX);
        waker.drain();
        t.join().expect("join");

        // Drained: the next poll is quiet again.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty());
    }

    #[test]
    fn timer_wheel_fires_once_at_deadline() {
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8);
        let now = Instant::now();
        wheel.schedule(42, 1, now + Duration::from_millis(35));

        let mut expired = Vec::new();
        wheel.advance(now + Duration::from_millis(20), &mut expired);
        assert!(expired.is_empty(), "not due yet");
        wheel.advance(now + Duration::from_millis(60), &mut expired);
        assert_eq!(expired, vec![(42, 1)]);
        expired.clear();
        wheel.advance(now + Duration::from_millis(200), &mut expired);
        assert!(expired.is_empty(), "fires exactly once");
    }

    #[test]
    fn timer_wheel_wraps_long_deadlines() {
        // 4 slots × 10ms = a 40ms ring; a 95ms deadline must wrap twice.
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 4);
        let now = Instant::now();
        wheel.schedule(1, 0, now + Duration::from_millis(95));
        wheel.schedule(2, 0, now + Duration::from_millis(15));

        let mut expired = Vec::new();
        wheel.advance(now + Duration::from_millis(50), &mut expired);
        assert_eq!(expired, vec![(2, 0)], "short deadline fires alone");
        expired.clear();
        wheel.advance(now + Duration::from_millis(120), &mut expired);
        assert_eq!(expired, vec![(1, 0)]);
    }

    #[test]
    fn timer_wheel_past_deadline_fires_next_advance() {
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8);
        let now = Instant::now();
        // A deadline already in the past still lands one tick out.
        wheel.schedule(5, 3, now);
        let mut expired = Vec::new();
        wheel.advance(now + Duration::from_millis(25), &mut expired);
        assert_eq!(expired, vec![(5, 3)]);
    }
}
