//! Shared harness for the experiment binaries: runs circuits through the
//! minimum-area and minimum-power flows (untimed or timed), measures power
//! with the PowerMill-substitute simulator, and formats paper-style rows.
//!
//! Since the `domino-engine` subsystem landed, this crate no longer executes
//! flows itself: [`Experiment`] lowers its knobs into an engine
//! [`JobSpec`] and every run goes through
//! [`domino_engine::run_job`] — the same code path as the `dominoc` CLI —
//! so results are cacheable, batchable and identical across the binaries
//! and the CLI. [`Experiment::compare_batch`] fans a whole suite out over a
//! [`FlowEngine`] thread pool.
//!
//! Every table and figure of the paper has a binary in `src/bin/`:
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — untimed MA vs MP, p(PI) = 0.5 |
//! | `table2` | Table 2 — timed (resized) MA vs MP |
//! | `fig2` | Figure 2 — switching vs signal probability curves |
//! | `fig3` | Figure 3 — inverter removal by phase change |
//! | `fig4` | Figure 4 — trapped-inverter logic duplication |
//! | `fig5` | Figure 5 — switching totals of two assignments |
//! | `fig6` | Figure 6 — convergence trace of the minimization loop |
//! | `fig7` | Figure 7 — sequential partition quality |
//! | `fig9` | Figure 9 — the symmetry MFVS transformation |
//! | `fig10` | Figure 10 — BDD variable ordering comparison |
//! | `ablations` | DESIGN.md A1–A5 design-choice studies |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod check;
pub mod fleet_probe;
pub mod serve_probe;

use domino_engine::{
    run_job, run_objective, EngineError, FlowEngine, FlowJob, JobResult, JobSpec, PiSpec,
    RunObjective,
};
use domino_netlist::Network;
use domino_phase::flow::FlowConfig;
use domino_sim::SimConfig;
use domino_techmap::Library;

/// One side (MA or MP) of a table row — the engine's pure-data result.
///
/// `size` is the mapped cell count (the "Size" column), [`power_ma`] the
/// simulated current (the "Pwr" column).
///
/// [`power_ma`]: domino_engine::ObjectiveResult::power_ma
pub type FlowResult = domino_engine::ObjectiveResult;

/// MA-vs-MP comparison for one circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Circuit name.
    pub name: String,
    /// Minimum-area flow result.
    pub ma: FlowResult,
    /// Minimum-power flow result.
    pub mp: FlowResult,
    /// The shared clock target of a timed run, ps.
    pub clock_ps: Option<f64>,
}

impl Comparison {
    /// `% Area Pen.` column: MP size overhead relative to MA.
    pub fn area_penalty_pct(&self) -> f64 {
        100.0 * (self.mp.size as f64 - self.ma.size as f64) / self.ma.size as f64
    }

    /// `% Pwr Sav.` column: MP power saving relative to MA.
    pub fn power_saving_pct(&self) -> f64 {
        100.0 * (self.ma.power_ma() - self.mp.power_ma()) / self.ma.power_ma()
    }

    fn from_outcome(outcome: domino_engine::FlowOutcome) -> Result<Self, EngineError> {
        match (outcome.ma, outcome.mp) {
            (Some(ma), Some(mp)) => Ok(Comparison {
                name: outcome.name,
                ma,
                mp,
                clock_ps: outcome.clock_ps,
            }),
            _ => Err(EngineError::Spec(
                "comparison outcome is missing a side".into(),
            )),
        }
    }
}

/// Experiment knobs shared by the table binaries.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Primary-input signal probability (the paper uses 0.5).
    pub pi_probability: f64,
    /// Flow configuration (search + probability machinery).
    pub flow: FlowConfig,
    /// Cell library.
    pub library: Library,
    /// Simulation length/seed.
    pub sim: SimConfig,
    /// Timed synthesis: resize to meet this fraction of the unsized MA
    /// delay (None = untimed, Table 1).
    pub timing_fraction: Option<f64>,
    /// `P_i` penalty for series-stack AND gates in the MP objective (§4.2):
    /// timed runs set this so the power search avoids structures the sizer
    /// cannot rescue.
    pub mp_and_penalty: Option<f64>,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment {
            pi_probability: 0.5,
            flow: FlowConfig::default(),
            library: Library::standard(),
            sim: SimConfig::default(),
            timing_fraction: None,
            mp_and_penalty: None,
        }
    }
}

impl Experiment {
    /// Lowers these knobs into an engine [`JobSpec`] for `net` (serialized
    /// as inline BLIF, so the spec is self-contained and cacheable).
    pub fn to_spec(&self, name: &str, net: &Network, objective: RunObjective) -> JobSpec {
        let mut spec = JobSpec::for_network(name, net);
        spec.objective = objective;
        spec.pi = PiSpec::Uniform(self.pi_probability);
        spec.flow = self.flow.clone();
        spec.library = self.library.clone();
        spec.sim = self.sim;
        spec.timing_fraction = self.timing_fraction;
        spec.mp_and_penalty = self.mp_and_penalty;
        spec
    }

    /// Builds a resolved engine job for `net`.
    pub fn job(&self, name: &str, net: &Network, objective: RunObjective) -> FlowJob {
        FlowJob::new(self.to_spec(name, net, objective), net.clone())
    }

    /// Runs one flow variant (`minimize_area` when `area` else
    /// `minimize_power`) through mapping, optional sizing, and simulation —
    /// via the engine's [`run_objective`].
    ///
    /// When timing is requested, the clock target is derived from the MA
    /// netlist's unsized delay via `timing_fraction` (pass it in
    /// `clock_ps`); `clock_ps = None` derives it from this netlist itself.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] from the flow.
    pub fn run_flow(
        &self,
        net: &Network,
        area: bool,
        clock_ps: Option<f64>,
    ) -> Result<FlowResult, EngineError> {
        let objective = if area {
            RunObjective::MinArea
        } else {
            RunObjective::MinPower
        };
        let job = self.job(net.name(), net, objective);
        run_objective(&job, area, clock_ps)
    }

    /// Runs the MA-vs-MP comparison on one circuit through the engine. For
    /// timed experiments the clock target is a fraction of the *MA* unsized
    /// delay, applied to both variants (the paper's "realistic timing
    /// constraints").
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] from either flow.
    pub fn compare(&self, name: &str, net: &Network) -> Result<Comparison, EngineError> {
        let job = self.job(name, net, RunObjective::Compare);
        Comparison::from_outcome(run_job(&job)?)
    }

    /// Runs MA-vs-MP comparisons for a whole suite on a [`FlowEngine`] —
    /// parallel across circuits, cache-aware, one `Result` per circuit in
    /// input order.
    pub fn compare_batch(
        &self,
        circuits: &[(&str, &Network)],
        engine: &FlowEngine,
    ) -> Vec<Result<Comparison, EngineError>> {
        let jobs: Vec<FlowJob> = circuits
            .iter()
            .map(|(name, net)| self.job(name, net, RunObjective::Compare))
            .collect();
        engine
            .run_batch(&jobs)
            .into_iter()
            .map(|result| match result {
                JobResult::Completed { outcome, .. } => Comparison::from_outcome(*outcome),
                JobResult::Failed(e) => Err(e),
                JobResult::Cancelled => Err(EngineError::Cancelled),
            })
            .collect()
    }
}

/// Formats a table of comparisons in the paper's column layout.
pub fn format_table(rows: &[(Comparison, &str, usize, usize)]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    writeln!(
        s,
        "{:<11} {:<13} {:>5} {:>5} | {:>6} {:>8} | {:>6} {:>8} | {:>10} {:>10}",
        "Ckt", "Desc.", "#PIs", "#POs", "MA Sz", "MA Pwr", "MP Sz", "MP Pwr", "%AreaPen", "%PwrSav"
    )
    .unwrap();
    writeln!(s, "{}", "-".repeat(104)).unwrap();
    let mut pen_sum = 0.0;
    let mut sav_sum = 0.0;
    for (cmp, desc, pis, pos) in rows {
        writeln!(
            s,
            "{:<11} {:<13} {:>5} {:>5} | {:>6} {:>8.2} | {:>6} {:>8.2} | {:>10.1} {:>10.1}",
            cmp.name,
            desc,
            pis,
            pos,
            cmp.ma.size,
            cmp.ma.power_ma(),
            cmp.mp.size,
            cmp.mp.power_ma(),
            cmp.area_penalty_pct(),
            cmp.power_saving_pct()
        )
        .unwrap();
        pen_sum += cmp.area_penalty_pct();
        sav_sum += cmp.power_saving_pct();
    }
    let n = rows.len() as f64;
    writeln!(s, "{}", "-".repeat(104)).unwrap();
    writeln!(
        s,
        "{:<37} {:>15} {:>8} {:>6} {:>8} | {:>10.1} {:>10.1}",
        "Average",
        "",
        "",
        "",
        "",
        pen_sum / n,
        sav_sum / n
    )
    .unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5() -> Network {
        let mut net = Network::new("fig5");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let d = net.add_input("d").unwrap();
        let aob = net.add_or([a, b]).unwrap();
        let cad = net.add_and([c, d]).unwrap();
        let f = net.add_or([aob, cad]).unwrap();
        let naob = net.add_not(aob).unwrap();
        let ncad = net.add_not(cad).unwrap();
        let g = net.add_or([naob, ncad]).unwrap();
        net.add_output("f", f).unwrap();
        net.add_output("g", g).unwrap();
        net
    }

    #[test]
    fn compare_agrees_with_run_flow() {
        let net = fig5();
        let mut experiment = Experiment::default();
        experiment.sim.cycles = 256;
        let cmp = experiment.compare("fig5", &net).unwrap();
        let ma = experiment.run_flow(&net, true, None).unwrap();
        let mp = experiment.run_flow(&net, false, None).unwrap();
        assert_eq!(cmp.ma, ma);
        assert_eq!(cmp.mp, mp);
    }

    #[test]
    fn compare_batch_matches_serial_compare() {
        let net = fig5();
        let mut experiment = Experiment::default();
        experiment.sim.cycles = 256;
        let serial = experiment.compare("fig5", &net).unwrap();
        let batch = experiment.compare_batch(&[("fig5", &net)], &FlowEngine::serial());
        assert_eq!(batch.len(), 1);
        assert_eq!(*batch[0].as_ref().unwrap(), serial);
    }

    #[test]
    fn experiment_spec_is_serializable() {
        let net = fig5();
        let experiment = Experiment {
            timing_fraction: Some(0.85),
            mp_and_penalty: Some(2.5),
            ..Experiment::default()
        };
        let spec = experiment.to_spec("fig5", &net, RunObjective::Compare);
        let json = spec.to_json();
        let back = JobSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        // The inline-BLIF source resolves back to the same structure.
        let job = back.resolve().unwrap();
        assert_eq!(job.network.structural_digest(), net.structural_digest());
    }
}
