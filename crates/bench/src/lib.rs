//! Shared harness for the experiment binaries: runs a circuit through the
//! minimum-area and minimum-power flows (untimed or timed), measures power
//! with the PowerMill-substitute simulator, and formats paper-style rows.
//!
//! Every table and figure of the paper has a binary in `src/bin/`:
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — untimed MA vs MP, p(PI) = 0.5 |
//! | `table2` | Table 2 — timed (resized) MA vs MP |
//! | `fig2` | Figure 2 — switching vs signal probability curves |
//! | `fig3` | Figure 3 — inverter removal by phase change |
//! | `fig4` | Figure 4 — trapped-inverter logic duplication |
//! | `fig5` | Figure 5 — switching totals of two assignments |
//! | `fig6` | Figure 6 — convergence trace of the minimization loop |
//! | `fig7` | Figure 7 — sequential partition quality |
//! | `fig9` | Figure 9 — the symmetry MFVS transformation |
//! | `fig10` | Figure 10 — BDD variable ordering comparison |
//! | `ablations` | DESIGN.md A1–A5 design-choice studies |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use domino_netlist::Network;
use domino_phase::flow::{minimize_area, minimize_power, FlowConfig};
use domino_phase::PhaseError;
use domino_sim::{measure_power, PowerReport, SimConfig};
use domino_techmap::{map, size_for_timing, sta, Library, MappedNetlist, SizingConfig};

/// One side (MA or MP) of a table row.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Mapped standard-cell count (the "Size" column).
    pub size: usize,
    /// Simulated current, mA (the "Pwr" column).
    pub power: PowerReport,
    /// Estimated (BDD) switching power, for reference.
    pub estimated_switching: f64,
    /// Worst arrival after mapping (and sizing, if timed), ps.
    pub worst_arrival_ps: f64,
    /// Whether the timing constraint was met (timed runs).
    pub timing_met: bool,
    /// Search evaluations performed.
    pub evaluations: usize,
    /// The mapped netlist (for further inspection).
    pub mapped: MappedNetlist,
}

/// MA-vs-MP comparison for one circuit.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Circuit name.
    pub name: String,
    /// Minimum-area flow result.
    pub ma: FlowResult,
    /// Minimum-power flow result.
    pub mp: FlowResult,
}

impl Comparison {
    /// `% Area Pen.` column: MP size overhead relative to MA.
    pub fn area_penalty_pct(&self) -> f64 {
        100.0 * (self.mp.size as f64 - self.ma.size as f64) / self.ma.size as f64
    }

    /// `% Pwr Sav.` column: MP power saving relative to MA.
    pub fn power_saving_pct(&self) -> f64 {
        100.0 * (self.ma.power.total_ma() - self.mp.power.total_ma())
            / self.ma.power.total_ma()
    }
}

/// Experiment knobs shared by the table binaries.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Primary-input signal probability (the paper uses 0.5).
    pub pi_probability: f64,
    /// Flow configuration (search + probability machinery).
    pub flow: FlowConfig,
    /// Cell library.
    pub library: Library,
    /// Simulation length/seed.
    pub sim: SimConfig,
    /// Timed synthesis: resize to meet this fraction of the unsized MA
    /// delay (None = untimed, Table 1).
    pub timing_fraction: Option<f64>,
    /// `P_i` penalty for series-stack AND gates in the MP objective (§4.2):
    /// timed runs set this so the power search avoids structures the sizer
    /// cannot rescue.
    pub mp_and_penalty: Option<f64>,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment {
            pi_probability: 0.5,
            flow: FlowConfig::default(),
            library: Library::standard(),
            sim: SimConfig::default(),
            timing_fraction: None,
            mp_and_penalty: None,
        }
    }
}

impl Experiment {
    /// Runs one flow variant (`minimize_area` when `area` else
    /// `minimize_power`) through mapping, optional sizing, and simulation.
    ///
    /// When timing is requested, the clock target is derived from the MA
    /// netlist's unsized delay via `timing_fraction` (pass it in
    /// `clock_ps`); `clock_ps = None` derives it from this netlist itself.
    ///
    /// # Errors
    ///
    /// Propagates [`PhaseError`] from the flow.
    pub fn run_flow(
        &self,
        net: &Network,
        area: bool,
        clock_ps: Option<f64>,
    ) -> Result<FlowResult, PhaseError> {
        let pi = vec![self.pi_probability; net.inputs().len()];
        let report = if area {
            minimize_area(net, &pi, &self.flow)?
        } else {
            let mut flow = self.flow.clone();
            if let Some(penalty) = self.mp_and_penalty {
                flow.power.model = domino_phase::power::PowerModel::with_and_penalty(penalty);
            }
            minimize_power(net, &pi, &flow)?
        };
        let mut mapped = map(&report.domino, &self.library);
        let mut timing_met = true;
        let timing = sta(&mapped, &self.library);
        let mut worst = timing.worst_arrival_ps;
        if let Some(fraction) = self.timing_fraction {
            let target = clock_ps.unwrap_or(worst * fraction);
            let sizing = size_for_timing(
                &mut mapped,
                &self.library,
                &SizingConfig {
                    clock_period_ps: Some(target),
                    ..SizingConfig::default()
                },
            );
            worst = sizing.timing.worst_arrival_ps;
            timing_met = sizing.met;
        }
        let power = measure_power(&mapped, &self.library, &pi, &self.sim);
        Ok(FlowResult {
            size: mapped.effective_cell_count(),
            power,
            estimated_switching: report.power.total(),
            worst_arrival_ps: worst,
            timing_met,
            evaluations: report.outcome.evaluations,
            mapped,
        })
    }

    /// Runs the MA-vs-MP comparison on one circuit. For timed experiments
    /// the clock target is a fraction of the *MA* unsized delay, applied to
    /// both variants (the paper's "realistic timing constraints").
    ///
    /// # Errors
    ///
    /// Propagates [`PhaseError`] from either flow.
    pub fn compare(&self, name: &str, net: &Network) -> Result<Comparison, PhaseError> {
        // Derive a common clock from the MA mapping when timed.
        let clock_ps = if let Some(fraction) = self.timing_fraction {
            let untimed = Experiment {
                timing_fraction: None,
                sim: SimConfig {
                    cycles: 16, // probe run: only timing is needed
                    ..self.sim
                },
                ..self.clone()
            };
            let probe = untimed.run_flow(net, true, None)?;
            Some(probe.worst_arrival_ps * fraction)
        } else {
            None
        };
        let ma = self.run_flow(net, true, clock_ps)?;
        let mp = self.run_flow(net, false, clock_ps)?;
        Ok(Comparison {
            name: name.to_string(),
            ma,
            mp,
        })
    }
}

/// Formats a table of comparisons in the paper's column layout.
pub fn format_table(rows: &[(Comparison, &str, usize, usize)]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    writeln!(
        s,
        "{:<11} {:<13} {:>5} {:>5} | {:>6} {:>8} | {:>6} {:>8} | {:>10} {:>10}",
        "Ckt", "Desc.", "#PIs", "#POs", "MA Sz", "MA Pwr", "MP Sz", "MP Pwr", "%AreaPen", "%PwrSav"
    )
    .unwrap();
    writeln!(s, "{}", "-".repeat(104)).unwrap();
    let mut pen_sum = 0.0;
    let mut sav_sum = 0.0;
    for (cmp, desc, pis, pos) in rows {
        writeln!(
            s,
            "{:<11} {:<13} {:>5} {:>5} | {:>6} {:>8.2} | {:>6} {:>8.2} | {:>10.1} {:>10.1}",
            cmp.name,
            desc,
            pis,
            pos,
            cmp.ma.size,
            cmp.ma.power.total_ma(),
            cmp.mp.size,
            cmp.mp.power.total_ma(),
            cmp.area_penalty_pct(),
            cmp.power_saving_pct()
        )
        .unwrap();
        pen_sum += cmp.area_penalty_pct();
        sav_sum += cmp.power_saving_pct();
    }
    let n = rows.len() as f64;
    writeln!(s, "{}", "-".repeat(104)).unwrap();
    writeln!(
        s,
        "{:<37} {:>15} {:>8} {:>6} {:>8} | {:>10.1} {:>10.1}",
        "Average", "", "", "", "", pen_sum / n, sav_sum / n
    )
    .unwrap();
    s
}
