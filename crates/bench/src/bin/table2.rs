//! Regenerates **Table 2**: timed synthesis — the Table 1 flow plus
//! timing-driven gate resizing to meet a clock constraint derived from the
//! minimum-area netlist's delay. The question the paper asks: do the power
//! savings survive when a timing step can "undo" them? (Their answer, and
//! ours: yes — MP stays ahead, and its area can even come out *smaller*
//! because fewer high-activity cells sit on critical paths.)
//!
//! The four public circuits run in parallel on a `domino-engine` pool.

use std::sync::Arc;

use domino_bench::{format_table, Experiment};
use domino_engine::{EngineConfig, FlowEngine, ResultCache};
use domino_workloads::public_suite;

fn main() {
    let suite = public_suite().expect("suite generates");
    let experiment = Experiment {
        // Clock target: 85% of the unsized MA delay — tight enough that the
        // sizer must work, loose enough to be feasible (the paper's
        // "realistic timing constraints").
        timing_fraction: Some(0.85),
        // §4.2's P_i: penalize series-stack ANDs so the power search avoids
        // structures the sizer cannot rescue ("the low power synthesized
        // circuits still meet timing constraints").
        mp_and_penalty: Some(2.5),
        ..Experiment::default()
    };
    let engine = FlowEngine::new(EngineConfig {
        threads: 0,
        cache: Some(Arc::new(ResultCache::in_memory())),
        snapshots: None,
    });

    println!("Table 2: timed synthesis when signal probabilities of primary inputs were 0.5\n");
    let circuits: Vec<(&str, &domino_netlist::Network)> =
        suite.iter().map(|b| (b.name, &b.network)).collect();
    let comparisons = experiment.compare_batch(&circuits, &engine);
    let mut rows = Vec::new();
    for (bench, cmp) in suite.iter().zip(comparisons) {
        let cmp = cmp.expect("flow succeeds");
        println!(
            "  {}: clock met (MA: {}, MP: {}); worst arrival MA {:.0} ps, MP {:.0} ps",
            bench.name,
            cmp.ma.timing_met,
            cmp.mp.timing_met,
            cmp.ma.worst_arrival_ps,
            cmp.mp.worst_arrival_ps
        );
        rows.push((
            cmp,
            bench.description,
            bench.network.inputs().len(),
            bench.network.outputs().len(),
        ));
    }
    println!();
    println!("{}", format_table(&rows));

    println!("paper reference:");
    println!(
        "{:<8} {:>8} {:>8} {:>10} {:>10}",
        "Ckt", "MA Size", "MA Pwr", "%AreaPen", "%PwrSav"
    );
    for (name, size, pwr, pen, sav) in [
        ("apex7", 452, 3.72, 7.3, 18.3),
        ("frg1", 98, 3.20, 50.0, 40.3),
        ("x1", 406, 7.67, 6.7, 20.5),
        ("x3", 2005, 70.13, -20.0, 62.0),
    ] {
        println!("{name:<8} {size:>8} {pwr:>8.2} {pen:>10.1} {sav:>10.1}");
    }
    println!("paper averages: area penalty 8.6%, power saving 35.3%");
}
