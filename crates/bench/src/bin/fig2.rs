//! Regenerates **Figure 2**: switching probability vs signal probability
//! for domino gates (the identity line, Property 2.1) and static CMOS gates
//! (the `2p(1−p)` parabola). Each analytic point is cross-validated by
//! simulation.

use domino_phase::power::{domino_switching, static_switching};
use domino_phase::{DominoSynthesizer, PhaseAssignment};
use domino_sim::{measure_domino_switching, simulate_static, SimConfig};

fn main() {
    println!("Figure 2: signal probability vs switching probability\n");
    println!(
        "{:>6} {:>10} {:>12} {:>10} {:>12}",
        "p", "domino", "domino(sim)", "static", "static(sim)"
    );

    // A single 2-input OR driven so its output probability sweeps the axis:
    // p(out) = 1 - (1-q)^2 ⇒ q = 1 - sqrt(1-p).
    for step in 0..=10 {
        let p = step as f64 / 10.0;
        let q = 1.0 - (1.0 - p).sqrt();

        // Domino: a one-gate block, measured by the event counter.
        let mut net = domino_netlist::Network::new("probe");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let g = net.add_or([a, b]).unwrap();
        net.add_output("f", g).unwrap();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let domino = synth.synthesize(&PhaseAssignment::all_positive(1)).unwrap();
        let cfg = SimConfig {
            cycles: 20_000,
            warmup: 0,
            seed: 7 + step as u64,
            ..SimConfig::default()
        };
        let dom_sim = measure_domino_switching(&domino, &[q, q], &cfg).block;

        // Static: the same gate simulated as static CMOS with transition
        // counting (per-cycle toggle rate of the one gate).
        let st = simulate_static(&net, &[q, q], &cfg);
        // Subtract input-node transitions: count only the gate's.
        // transitions includes PIs (2 nodes) + gate; per-node toggle of a
        // PI with prob q is 2q(1-q); isolate the gate:
        let pi_toggles = 2.0 * (2.0 * q * (1.0 - q)) * cfg.cycles as f64;
        let gate_toggles = (st.transitions as f64 - pi_toggles) / cfg.cycles as f64;

        println!(
            "{:>6.2} {:>10.3} {:>12.3} {:>10.3} {:>12.3}",
            p,
            domino_switching(p),
            dom_sim,
            static_switching(p),
            gate_toggles.max(0.0)
        );
    }
    println!("\ndomino = p (line through origin, slope 1; exceeds static for p > 0.5)");
    println!("static = 2p(1-p) (parabola, peak 0.5 at p = 0.5)");
}
