//! Regenerates **Figure 4**: conflicting phase assignments trap inverters
//! and force logic duplication.
//!
//! `f = (a+b)·c` and `g = !(a+b)·c` share the cone `(a+b)`. Assignments
//! that demand it in both polarities duplicate it; assignments that
//! complement `g` at the boundary do not.

use domino_phase::{DominoSynthesizer, PhaseAssignment};

fn main() {
    let mut net = domino_netlist::Network::new("fig4");
    let a = net.add_input("a").unwrap();
    let b = net.add_input("b").unwrap();
    let c = net.add_input("c").unwrap();
    let aob = net.add_or([a, b]).unwrap();
    let naob = net.add_not(aob).unwrap();
    let f = net.add_and([aob, c]).unwrap();
    let g = net.add_and([naob, c]).unwrap();
    net.add_output("f", f).unwrap();
    net.add_output("g", g).unwrap();

    println!("Figure 4: phase assignments and trapped-inverter duplication\n");
    println!("f = (a+b)·c,  g = !(a+b)·c  — the cone (a+b) is shared\n");
    let synth = DominoSynthesizer::new(&net).expect("valid network");
    println!(
        "{:>12} | {:>12} {:>16} {:>10}",
        "phases(f,g)", "domino gates", "duplicated nodes", "cells"
    );
    for bits in 0..4u64 {
        let pa = PhaseAssignment::from_bits(2, bits);
        let d = synth.synthesize(&pa).expect("synthesis succeeds");
        println!(
            "{:>12} | {:>12} {:>16} {:>10}",
            pa.to_string(),
            d.gate_count(),
            d.duplicated_node_count(),
            d.area_cells()
        );
    }
    println!("\n(+,+) realizes (a+b) in both polarities — duplication; (+,-) lets the");
    println!("output inverter of g absorb the complement — no duplication.");
}
