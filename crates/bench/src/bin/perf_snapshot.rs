//! Machine-readable performance snapshot of the hot paths: full MA-vs-MP
//! flow wall time, BDD construction, warm probability evaluation, and the
//! min-power search, per public-suite circuit.
//!
//! Writes a JSON document (default `perf_snapshot.json`) so the repo's
//! performance trajectory is recorded per PR — `BENCH_PR2.json` holds the
//! before/after pair for the PR 2 kernel overhaul.
//!
//! ```text
//! cargo run --release -p domino-bench --bin perf_snapshot -- [--fast] [--out <path>]
//! ```
//!
//! `--fast` restricts to the two cheapest circuits with one sample each —
//! the CI smoke invocation. The full run takes a handful of seconds.

use std::time::Instant;

use domino_bdd::circuit::CircuitBdds;
use domino_bench::Experiment;
use domino_engine::json::Json;
use domino_phase::flow::FlowConfig;
use domino_phase::prob::compute_probabilities;
use domino_phase::search::min_power_assignment;
use domino_phase::{DominoSynthesizer, PhaseAssignment};
use domino_workloads::public_suite;

/// Wall-clock median of `samples` runs of `f`, in milliseconds.
fn median_ms<T>(samples: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "perf_snapshot.json".to_string());

    let samples = if fast { 1 } else { 3 };
    let suite = public_suite().expect("suite generates");
    let circuits: Vec<_> = suite
        .iter()
        .filter(|b| !fast || ["frg1", "apex7"].contains(&b.name))
        .collect();

    let experiment = Experiment::default();
    let flow_config = FlowConfig::default();

    let mut rows = Vec::new();
    for bench in &circuits {
        let net = &bench.network;
        let pi = vec![0.5; net.inputs().len()];

        let flow_ms = median_ms(samples, || {
            experiment.compare(bench.name, net).expect("flow runs")
        });
        let build_ms = median_ms(samples, || CircuitBdds::build(net).expect("bdds build"));
        let bdds = CircuitBdds::build(net).expect("bdds build");
        // One untimed warm-up eval, then timed warm evaluations: after the
        // kernel overhaul these allocate nothing and hit the dense memo.
        let source_probs = vec![0.5; net.inputs().len() + net.latches().len()];
        let _ = bdds.node_probabilities(net, &source_probs).expect("probs");
        let prob_eval_ms = median_ms(samples.max(3), || {
            bdds.node_probabilities(net, &source_probs).expect("probs")
        });
        let probs =
            compute_probabilities(net, &pi, &flow_config.probability).expect("probabilities");
        let synth = DominoSynthesizer::new(net).expect("synthesizer");
        let n = synth.view_outputs().len();
        let search_ms = median_ms(samples, || {
            min_power_assignment(
                &synth,
                &probs,
                PhaseAssignment::all_positive(n),
                &flow_config.power,
            )
            .expect("search runs")
        });
        let stats = bdds.manager().stats();

        rows.push(Json::obj(vec![
            ("name", Json::Str(bench.name.to_string())),
            ("flow_ms", Json::Num(flow_ms)),
            ("bdd_build_ms", Json::Num(build_ms)),
            ("prob_eval_ms", Json::Num(prob_eval_ms)),
            ("search_ms", Json::Num(search_ms)),
            ("bdd_nodes", Json::Num(probs.bdd_node_count() as f64)),
            ("manager_nodes", Json::Num(stats.nodes as f64)),
            (
                "unique_hit_rate",
                rate(stats.unique_hits, stats.unique_misses),
            ),
            (
                "op_cache_hit_rate",
                rate(stats.cache_hits, stats.cache_misses),
            ),
        ]));
    }

    let doc = Json::obj(vec![
        ("fast", Json::Bool(fast)),
        ("samples", Json::Num(samples as f64)),
        ("circuits", Json::Arr(rows)),
    ]);
    let text = doc.serialize();
    std::fs::write(&out, format!("{text}\n")).expect("write snapshot");
    println!("{text}");
    eprintln!("wrote {out}");
}

/// Hit rate as a fraction, or `null` before any accesses.
fn rate(hits: u64, misses: u64) -> Json {
    let total = hits + misses;
    if total == 0 {
        Json::Null
    } else {
        Json::Num(hits as f64 / total as f64)
    }
}
