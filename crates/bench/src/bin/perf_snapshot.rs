//! Machine-readable performance snapshot of the hot paths: full MA-vs-MP
//! flow wall time, BDD construction, warm probability evaluation, the
//! min-power search, and packed power simulation, per public-suite
//! circuit; a `serve` section measuring the `dominod` service (cold vs
//! warm-cache throughput and latency, via the same harness as
//! `serve_bench`) — plus the CI perf-regression gate.
//!
//! Writes a JSON document (default `perf_snapshot.json`) so the repo's
//! performance trajectory is recorded per PR — `BENCH_PR2.json` and
//! `BENCH_PR3.json` hold the before/after pairs of past overhauls.
//!
//! ```text
//! cargo run --release -p domino-bench --bin perf_snapshot -- \
//!     [--fast] [--out <path>] [--check <baseline.json>] [--tolerance <pct>]
//! ```
//!
//! `--fast` restricts to the two cheapest circuits — the CI smoke
//! invocation. The full run takes a handful of seconds.
//!
//! `--check <baseline>` compares the freshly measured metrics against a
//! committed baseline (see `bench/baselines/`) via
//! [`domino_bench::check`] and exits non-zero when any metric regressed —
//! wall clocks beyond `--tolerance` percent (default 25), deterministic
//! node counts on any growth at all: the CI perf-regression gate. Only
//! metrics present in both documents are compared, so baselines survive
//! metric additions. Every failure is one greppable `REGRESSED` line
//! naming the metric and both values.
//!
//! A `reorder` section measures the dynamic-variable-reordering win on
//! the `reorder_stress` generator circuit (static declared order is
//! exponential, sifting recovers the linear interleaved order) and gates
//! the node shrink.
//!
//! A `warm_restart` section exercises the persistence layer on a
//! giant generated circuit: a cold process flows it against an empty
//! snapshot directory, a fresh store over the same directory simulates
//! the restarted process, and the gated facts are deterministic — the
//! restart performs zero kernel builds, its outcome is byte-identical
//! to the cold run, and a corrupted snapshot is quarantined and rebuilt,
//! never served.

use std::process::ExitCode;
use std::time::Instant;

use domino_bdd::circuit::CircuitBdds;
use domino_bdd::{ReorderConfig, ReorderMode};
use domino_bench::check::check_snapshot;
use domino_bench::fleet_probe::{measure_fleet, FleetLoadConfig};
use domino_bench::serve_probe::{
    measure_connection_scale, measure_serve, ConnectionScaleConfig, ServeLoadConfig,
};
use domino_bench::Experiment;
use domino_engine::json::{parse, Json};
use domino_engine::{run_job_snapshotted, FlowJob, JobSpec, SnapshotStore};
use domino_phase::flow::FlowConfig;
use domino_phase::prob::compute_probabilities;
use domino_phase::search::min_power_assignment;
use domino_phase::{DominoSynthesizer, PhaseAssignment};
use domino_sim::{measure_power, SimConfig};
use domino_techmap::{map, Library};
use domino_workloads::{generate_giant, public_suite, reorder_stress, GiantSpec};

/// Disjoint input pairs of the reorder-stress circuit: large enough that
/// the static-order blow-up is unmistakable, small enough to build in
/// microseconds even statically.
const REORDER_PAIRS: usize = 8;

/// Wall-clock minimum of `samples` runs of `f`, in milliseconds.
///
/// The gate compares machines against their own committed baseline, and
/// scheduler noise is one-sided (it only ever *adds* time), so the minimum
/// is the stable statistic — a median can shift 30% when the machine is
/// briefly busy, and a single spike must not fail CI.
fn best_ms<T>(samples: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e3
        })
        .min_by(f64::total_cmp)
        .expect("at least one sample")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out = flag("--out").unwrap_or_else(|| "perf_snapshot.json".to_string());
    let check = flag("--check");
    let tolerance_pct: f64 = flag("--tolerance")
        .map(|t| t.parse().expect("--tolerance needs a number"))
        .unwrap_or(25.0);

    // The packed engine made single flows ~1 ms, so even the CI smoke mode
    // can afford 9 samples — single samples (and on virtualized runners
    // even small sample counts) jitter past any reasonable gate tolerance,
    // and the gate statistic is the min, so extra samples only stabilize.
    let samples = if fast { 9 } else { 5 };
    let suite = public_suite().expect("suite generates");
    let circuits: Vec<_> = suite
        .iter()
        .filter(|b| !fast || ["frg1", "apex7"].contains(&b.name))
        .collect();

    let experiment = Experiment::default();
    let flow_config = FlowConfig::default();
    let lib = Library::standard();

    let mut rows = Vec::new();
    for bench in &circuits {
        let net = &bench.network;
        let pi = vec![0.5; net.inputs().len()];

        let flow_ms = best_ms(samples, || {
            experiment.compare(bench.name, net).expect("flow runs")
        });
        let build_ms = best_ms(samples, || CircuitBdds::build(net).expect("bdds build"));
        let bdds = CircuitBdds::build(net).expect("bdds build");
        // One untimed warm-up eval, then timed warm evaluations: after the
        // kernel overhaul these allocate nothing and hit the dense memo.
        let source_probs = vec![0.5; net.inputs().len() + net.latches().len()];
        let _ = bdds.node_probabilities(net, &source_probs).expect("probs");
        let prob_eval_ms = best_ms(samples.max(3), || {
            bdds.node_probabilities(net, &source_probs).expect("probs")
        });
        let probs =
            compute_probabilities(net, &pi, &flow_config.probability).expect("probabilities");
        let synth = DominoSynthesizer::new(net).expect("synthesizer");
        let n = synth.view_outputs().len();
        let search_ms = best_ms(samples, || {
            min_power_assignment(
                &synth,
                &probs,
                PhaseAssignment::all_positive(n),
                &flow_config.power,
            )
            .expect("search runs")
        });
        // Packed power simulation of the all-positive mapped netlist under
        // the default 4096-cycle config — the flow's dominant cost before
        // the bit-parallel engine.
        let domino = synth
            .synthesize(&PhaseAssignment::all_positive(n))
            .expect("synthesis");
        let mapped = map(&domino, &lib);
        let sim_cfg = SimConfig::default();
        let sim_ms = best_ms(samples, || measure_power(&mapped, &lib, &pi, &sim_cfg));
        let stats = bdds.manager().stats();

        rows.push(Json::obj(vec![
            ("name", Json::Str(bench.name.to_string())),
            ("flow_ms", Json::Num(flow_ms)),
            ("bdd_build_ms", Json::Num(build_ms)),
            ("prob_eval_ms", Json::Num(prob_eval_ms)),
            ("search_ms", Json::Num(search_ms)),
            ("sim_ms", Json::Num(sim_ms)),
            ("bdd_nodes", Json::Num(probs.bdd_node_count() as f64)),
            ("manager_nodes", Json::Num(stats.nodes as f64)),
            (
                "unique_hit_rate",
                rate(stats.unique_hits, stats.unique_misses),
            ),
            (
                "op_cache_hit_rate",
                rate(stats.cache_hits, stats.cache_misses),
            ),
        ]));
    }

    // The dominod service, measured with the same harness as serve_bench:
    // cold wave (every request recomputes) vs best warm wave (every
    // request answered by the shared cache — verified by the harness).
    let serve = measure_serve(&ServeLoadConfig {
        fast,
        clients: 4,
        warm_passes: 3,
    });
    let serve_doc = Json::obj(vec![
        ("clients", Json::Num(serve.clients as f64)),
        ("workers", Json::Num(serve.workers as f64)),
        ("jobs_per_wave", Json::Num(serve.jobs_per_wave as f64)),
        ("cold_ms", Json::Num(serve.cold.mean_ms)),
        ("cold_jobs_per_s", Json::Num(serve.cold.jobs_per_s)),
        ("serve_ms", Json::Num(serve.warm.mean_ms)),
        ("jobs_per_s", Json::Num(serve.warm.jobs_per_s)),
        ("warm_speedup", Json::Num(serve.warm_speedup)),
        ("keepalive_speedup", Json::Num(serve.keepalive_speedup)),
    ]);

    // Connection scale: N concurrent kept-alive connections held against
    // one reactor-fronted server, every response byte-verified, the
    // server's thread count verified bounded by the harness itself. The
    // gated value is the deterministic connection count, not a wall
    // clock — a regression here means the serve layer lost capacity.
    let scale = measure_connection_scale(&ConnectionScaleConfig {
        connections: if fast { 512 } else { 2048 },
        ..ConnectionScaleConfig::default()
    });
    let scale_doc = Json::obj(vec![
        ("connections", Json::Num(scale.connections as f64)),
        ("open_ms", Json::Num(scale.open_ms)),
        ("requests_per_s", Json::Num(scale.requests_per_s)),
        ("open_connections", Json::Num(scale.open_connections as f64)),
        ("process_threads", Json::Num(scale.process_threads as f64)),
        ("thread_bound", Json::Num(scale.thread_bound as f64)),
    ]);

    // The fleet (gateway + backends + cache peering), measured in-process
    // with the same harness as fleet_bench: the gated numbers are the
    // warm wave through the gateway (the routed service floor) and the
    // peer-warm growth wave (routing + peek + fill on re-homed keys).
    let fleet = measure_fleet(&FleetLoadConfig {
        fast,
        clients: 4,
        backends: 2,
        warm_passes: 3,
        processes: false,
    });
    let fleet_doc = Json::obj(vec![
        ("backends", Json::Num(fleet.backends as f64)),
        ("clients", Json::Num(fleet.clients as f64)),
        ("jobs_per_wave", Json::Num(fleet.jobs_per_wave as f64)),
        ("cold_ms", Json::Num(fleet.cold.mean_ms)),
        ("cold_jobs_per_s", Json::Num(fleet.cold.jobs_per_s)),
        ("fleet_ms", Json::Num(fleet.warm.mean_ms)),
        ("jobs_per_s", Json::Num(fleet.warm.jobs_per_s)),
        ("peer_warm_ms", Json::Num(fleet.peer_warm.mean_ms)),
        (
            "peer_warm_jobs_per_s",
            Json::Num(fleet.peer_warm.jobs_per_s),
        ),
        ("warm_speedup", Json::Num(fleet.warm_speedup)),
        ("peer_fills", Json::Num(fleet.peer_fills as f64)),
    ]);

    // Dynamic variable reordering, measured on the reorder-stress circuit
    // under its *declared* (worst-case) input order: sifting must recover
    // most of the exponential blow-up. Node counts are deterministic, so
    // the gate on them is exact.
    let stress = reorder_stress(REORDER_PAIRS).expect("stress circuit generates");
    let identity: Vec<usize> = (0..stress.inputs().len()).collect();
    let static_bdds =
        CircuitBdds::build_with_order(&stress, identity.clone()).expect("static build");
    let nodes_static = static_bdds.total_node_count();
    let sift_config = ReorderConfig::with_mode(ReorderMode::Sift);
    let (sifted_bdds, outcome) =
        CircuitBdds::build_reordered(&stress, identity.clone(), &sift_config)
            .expect("sifted build");
    let nodes_sifted = sifted_bdds.total_node_count();
    let outcome = outcome.expect("sift mode records an outcome");
    let shrink_pct = 100.0 * (1.0 - nodes_sifted as f64 / nodes_static as f64);
    let reorder_ms = best_ms(samples, || {
        CircuitBdds::build_reordered(&stress, identity.clone(), &sift_config).expect("sifted build")
    });
    let reorder_doc = Json::obj(vec![
        ("circuit", Json::Str(stress.name().to_string())),
        ("pairs", Json::Num(REORDER_PAIRS as f64)),
        ("nodes_static", Json::Num(nodes_static as f64)),
        ("nodes_sifted", Json::Num(nodes_sifted as f64)),
        ("shrink_pct", Json::Num(shrink_pct)),
        ("swaps", Json::Num(outcome.swaps as f64)),
        ("reorder_ms", Json::Num(reorder_ms)),
    ]);

    // Warm-restart persistence, exercised on a giant generated circuit
    // (deep pipelined cones — far larger than any suite row, yet windowed
    // so exact probabilities stay cheap). One cold process flows it
    // against an empty snapshot directory; a fresh store over the same
    // directory simulates the restarted process. Every gated fact is
    // deterministic: zero kernel builds after restart, byte-identical
    // outcome, and corruption quarantined + rebuilt rather than served.
    let giant_spec = if fast {
        GiantSpec::giant("giant", 96, 16, 10, 2, 71)
    } else {
        GiantSpec::giant("giant", 192, 32, 14, 2, 71)
    };
    let giant = generate_giant(&giant_spec).expect("giant generates");
    let mut giant_job = JobSpec::for_network("giant", &giant);
    // Modest simulation budget: the section measures persistence, and the
    // sim replays identically on both sides of the restart anyway.
    giant_job.sim.cycles = 1024;
    let job = FlowJob::new(giant_job, giant.clone());

    let snap_dir = std::env::temp_dir().join(format!("dominolp-perf-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snap_dir);
    let cold_store = SnapshotStore::on_disk(&snap_dir).expect("snapshot dir");
    let cold_start = Instant::now();
    let cold_outcome =
        run_job_snapshotted(&job, Some(&cold_store), &|| false).expect("cold flow runs");
    let cold_ms = cold_start.elapsed().as_secs_f64() * 1e3;
    let cold_stats = cold_store.stats();
    let cold_bytes = cold_store.disk_bytes();
    assert_eq!(
        cold_stats.kernel_builds, 1,
        "cold run builds the shared kernel exactly once"
    );
    let cold_json = cold_outcome.to_json().serialize();

    let restart_store = SnapshotStore::on_disk(&snap_dir).expect("snapshot dir");
    let restart_outcome =
        run_job_snapshotted(&job, Some(&restart_store), &|| false).expect("warm flow runs");
    let restart_ms = best_ms(samples, || {
        run_job_snapshotted(&job, Some(&restart_store), &|| false).expect("warm flow runs")
    });
    let restart_stats = restart_store.stats();
    let restart_identical = restart_outcome.to_json().serialize() == cold_json;

    // Corrupt every snapshot on disk; the next "process" must quarantine,
    // rebuild, and still produce the byte-identical outcome.
    for entry in std::fs::read_dir(&snap_dir).expect("snapshot dir lists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("snap") {
            let mut bytes = std::fs::read(&path).expect("snapshot reads");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            std::fs::write(&path, bytes).expect("snapshot rewrites");
        }
    }
    let corrupt_store = SnapshotStore::on_disk(&snap_dir).expect("snapshot dir");
    let corrupt_outcome =
        run_job_snapshotted(&job, Some(&corrupt_store), &|| false).expect("recovery flow runs");
    let corrupt_stats = corrupt_store.stats();
    let corrupt_recovered = corrupt_outcome.to_json().serialize() == cold_json
        && corrupt_stats.corrupt_evictions >= 1
        && corrupt_stats.kernel_builds >= 1;
    let _ = std::fs::remove_dir_all(&snap_dir);

    let warm_restart_doc = Json::obj(vec![
        ("circuit", Json::Str(giant_spec.name.clone())),
        ("gate_budget", Json::Num(giant_spec.gate_budget() as f64)),
        ("cold_ms", Json::Num(cold_ms)),
        ("restart_ms", Json::Num(restart_ms)),
        ("warm_speedup", Json::Num(cold_ms / restart_ms.max(1e-9))),
        (
            "restart_kernel_builds",
            Json::Num(restart_stats.kernel_builds as f64),
        ),
        ("restart_hits", Json::Num(restart_stats.hits as f64)),
        ("restart_identical", Json::Bool(restart_identical)),
        ("corrupt_recovered", Json::Bool(corrupt_recovered)),
        ("snapshot_disk_bytes", Json::Num(cold_bytes as f64)),
    ]);

    let doc = Json::obj(vec![
        ("fast", Json::Bool(fast)),
        ("samples", Json::Num(samples as f64)),
        ("circuits", Json::Arr(rows)),
        ("serve", serve_doc),
        ("serve_scale", scale_doc),
        ("fleet", fleet_doc),
        ("reorder", reorder_doc),
        ("warm_restart", warm_restart_doc),
    ]);
    let text = doc.serialize();
    std::fs::write(&out, format!("{text}\n")).expect("write snapshot");
    println!("{text}");
    eprintln!("wrote {out}");

    match check {
        Some(baseline_path) => {
            let text = std::fs::read_to_string(&baseline_path)
                .unwrap_or_else(|e| panic!("reading baseline '{baseline_path}': {e}"));
            let baseline = parse(&text).expect("baseline parses");
            let report = check_snapshot(&doc, &baseline, tolerance_pct);
            for line in &report.lines {
                eprintln!("{line}");
            }
            if report.passed() {
                eprintln!(
                    "check: all {} metrics within {tolerance_pct}% of '{baseline_path}'",
                    report.compared
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "check: {} metric(s) regressed beyond {tolerance_pct}% vs '{baseline_path}'",
                    report.regressions
                );
                ExitCode::FAILURE
            }
        }
        None => ExitCode::SUCCESS,
    }
}

/// Hit rate as a fraction, or `null` before any accesses.
fn rate(hits: u64, misses: u64) -> Json {
    let total = hits + misses;
    if total == 0 {
        Json::Null
    } else {
        Json::Num(hits as f64 / total as f64)
    }
}
