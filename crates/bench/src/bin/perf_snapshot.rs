//! Machine-readable performance snapshot of the hot paths: full MA-vs-MP
//! flow wall time, BDD construction, warm probability evaluation, the
//! min-power search, and packed power simulation, per public-suite
//! circuit; a `serve` section measuring the `dominod` service (cold vs
//! warm-cache throughput and latency, via the same harness as
//! `serve_bench`) — plus the CI perf-regression gate.
//!
//! Writes a JSON document (default `perf_snapshot.json`) so the repo's
//! performance trajectory is recorded per PR — `BENCH_PR2.json` and
//! `BENCH_PR3.json` hold the before/after pairs of past overhauls.
//!
//! ```text
//! cargo run --release -p domino-bench --bin perf_snapshot -- \
//!     [--fast] [--out <path>] [--check <baseline.json>] [--tolerance <pct>]
//! ```
//!
//! `--fast` restricts to the two cheapest circuits — the CI smoke
//! invocation. The full run takes a handful of seconds.
//!
//! `--check <baseline>` compares the freshly measured wall-clock metrics
//! against a committed baseline (see `bench/baselines/`) and exits
//! non-zero when any metric regressed by more than `--tolerance` percent
//! (default 25): the CI perf-regression gate. Only metrics present in both
//! documents are compared, so baselines survive metric additions.

use std::process::ExitCode;
use std::time::Instant;

use domino_bdd::circuit::CircuitBdds;
use domino_bench::fleet_probe::{measure_fleet, FleetLoadConfig};
use domino_bench::serve_probe::{
    measure_connection_scale, measure_serve, ConnectionScaleConfig, ServeLoadConfig,
};
use domino_bench::Experiment;
use domino_engine::json::{parse, Json};
use domino_phase::flow::FlowConfig;
use domino_phase::prob::compute_probabilities;
use domino_phase::search::min_power_assignment;
use domino_phase::{DominoSynthesizer, PhaseAssignment};
use domino_sim::{measure_power, SimConfig};
use domino_techmap::{map, Library};
use domino_workloads::public_suite;

/// Wall-clock metrics compared by the regression gate (everything else in
/// a snapshot row is informational).
const TIME_METRICS: &[&str] = &[
    "flow_ms",
    "bdd_build_ms",
    "prob_eval_ms",
    "search_ms",
    "sim_ms",
];

/// Wall-clock minimum of `samples` runs of `f`, in milliseconds.
///
/// The gate compares machines against their own committed baseline, and
/// scheduler noise is one-sided (it only ever *adds* time), so the minimum
/// is the stable statistic — a median can shift 30% when the machine is
/// briefly busy, and a single spike must not fail CI.
fn best_ms<T>(samples: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e3
        })
        .min_by(f64::total_cmp)
        .expect("at least one sample")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out = flag("--out").unwrap_or_else(|| "perf_snapshot.json".to_string());
    let check = flag("--check");
    let tolerance_pct: f64 = flag("--tolerance")
        .map(|t| t.parse().expect("--tolerance needs a number"))
        .unwrap_or(25.0);

    // The packed engine made single flows ~1 ms, so even the CI smoke mode
    // can afford 9 samples — single samples (and on virtualized runners
    // even small sample counts) jitter past any reasonable gate tolerance,
    // and the gate statistic is the min, so extra samples only stabilize.
    let samples = if fast { 9 } else { 5 };
    let suite = public_suite().expect("suite generates");
    let circuits: Vec<_> = suite
        .iter()
        .filter(|b| !fast || ["frg1", "apex7"].contains(&b.name))
        .collect();

    let experiment = Experiment::default();
    let flow_config = FlowConfig::default();
    let lib = Library::standard();

    let mut rows = Vec::new();
    for bench in &circuits {
        let net = &bench.network;
        let pi = vec![0.5; net.inputs().len()];

        let flow_ms = best_ms(samples, || {
            experiment.compare(bench.name, net).expect("flow runs")
        });
        let build_ms = best_ms(samples, || CircuitBdds::build(net).expect("bdds build"));
        let bdds = CircuitBdds::build(net).expect("bdds build");
        // One untimed warm-up eval, then timed warm evaluations: after the
        // kernel overhaul these allocate nothing and hit the dense memo.
        let source_probs = vec![0.5; net.inputs().len() + net.latches().len()];
        let _ = bdds.node_probabilities(net, &source_probs).expect("probs");
        let prob_eval_ms = best_ms(samples.max(3), || {
            bdds.node_probabilities(net, &source_probs).expect("probs")
        });
        let probs =
            compute_probabilities(net, &pi, &flow_config.probability).expect("probabilities");
        let synth = DominoSynthesizer::new(net).expect("synthesizer");
        let n = synth.view_outputs().len();
        let search_ms = best_ms(samples, || {
            min_power_assignment(
                &synth,
                &probs,
                PhaseAssignment::all_positive(n),
                &flow_config.power,
            )
            .expect("search runs")
        });
        // Packed power simulation of the all-positive mapped netlist under
        // the default 4096-cycle config — the flow's dominant cost before
        // the bit-parallel engine.
        let domino = synth
            .synthesize(&PhaseAssignment::all_positive(n))
            .expect("synthesis");
        let mapped = map(&domino, &lib);
        let sim_cfg = SimConfig::default();
        let sim_ms = best_ms(samples, || measure_power(&mapped, &lib, &pi, &sim_cfg));
        let stats = bdds.manager().stats();

        rows.push(Json::obj(vec![
            ("name", Json::Str(bench.name.to_string())),
            ("flow_ms", Json::Num(flow_ms)),
            ("bdd_build_ms", Json::Num(build_ms)),
            ("prob_eval_ms", Json::Num(prob_eval_ms)),
            ("search_ms", Json::Num(search_ms)),
            ("sim_ms", Json::Num(sim_ms)),
            ("bdd_nodes", Json::Num(probs.bdd_node_count() as f64)),
            ("manager_nodes", Json::Num(stats.nodes as f64)),
            (
                "unique_hit_rate",
                rate(stats.unique_hits, stats.unique_misses),
            ),
            (
                "op_cache_hit_rate",
                rate(stats.cache_hits, stats.cache_misses),
            ),
        ]));
    }

    // The dominod service, measured with the same harness as serve_bench:
    // cold wave (every request recomputes) vs best warm wave (every
    // request answered by the shared cache — verified by the harness).
    let serve = measure_serve(&ServeLoadConfig {
        fast,
        clients: 4,
        warm_passes: 3,
    });
    let serve_doc = Json::obj(vec![
        ("clients", Json::Num(serve.clients as f64)),
        ("workers", Json::Num(serve.workers as f64)),
        ("jobs_per_wave", Json::Num(serve.jobs_per_wave as f64)),
        ("cold_ms", Json::Num(serve.cold.mean_ms)),
        ("cold_jobs_per_s", Json::Num(serve.cold.jobs_per_s)),
        ("serve_ms", Json::Num(serve.warm.mean_ms)),
        ("jobs_per_s", Json::Num(serve.warm.jobs_per_s)),
        ("warm_speedup", Json::Num(serve.warm_speedup)),
        ("keepalive_speedup", Json::Num(serve.keepalive_speedup)),
    ]);

    // Connection scale: N concurrent kept-alive connections held against
    // one reactor-fronted server, every response byte-verified, the
    // server's thread count verified bounded by the harness itself. The
    // gated value is the deterministic connection count, not a wall
    // clock — a regression here means the serve layer lost capacity.
    let scale = measure_connection_scale(&ConnectionScaleConfig {
        connections: if fast { 512 } else { 2048 },
        ..ConnectionScaleConfig::default()
    });
    let scale_doc = Json::obj(vec![
        ("connections", Json::Num(scale.connections as f64)),
        ("open_ms", Json::Num(scale.open_ms)),
        ("requests_per_s", Json::Num(scale.requests_per_s)),
        ("open_connections", Json::Num(scale.open_connections as f64)),
        ("process_threads", Json::Num(scale.process_threads as f64)),
        ("thread_bound", Json::Num(scale.thread_bound as f64)),
    ]);

    // The fleet (gateway + backends + cache peering), measured in-process
    // with the same harness as fleet_bench: the gated numbers are the
    // warm wave through the gateway (the routed service floor) and the
    // peer-warm growth wave (routing + peek + fill on re-homed keys).
    let fleet = measure_fleet(&FleetLoadConfig {
        fast,
        clients: 4,
        backends: 2,
        warm_passes: 3,
        processes: false,
    });
    let fleet_doc = Json::obj(vec![
        ("backends", Json::Num(fleet.backends as f64)),
        ("clients", Json::Num(fleet.clients as f64)),
        ("jobs_per_wave", Json::Num(fleet.jobs_per_wave as f64)),
        ("cold_ms", Json::Num(fleet.cold.mean_ms)),
        ("cold_jobs_per_s", Json::Num(fleet.cold.jobs_per_s)),
        ("fleet_ms", Json::Num(fleet.warm.mean_ms)),
        ("jobs_per_s", Json::Num(fleet.warm.jobs_per_s)),
        ("peer_warm_ms", Json::Num(fleet.peer_warm.mean_ms)),
        (
            "peer_warm_jobs_per_s",
            Json::Num(fleet.peer_warm.jobs_per_s),
        ),
        ("warm_speedup", Json::Num(fleet.warm_speedup)),
        ("peer_fills", Json::Num(fleet.peer_fills as f64)),
    ]);

    let doc = Json::obj(vec![
        ("fast", Json::Bool(fast)),
        ("samples", Json::Num(samples as f64)),
        ("circuits", Json::Arr(rows)),
        ("serve", serve_doc),
        ("serve_scale", scale_doc),
        ("fleet", fleet_doc),
    ]);
    let text = doc.serialize();
    std::fs::write(&out, format!("{text}\n")).expect("write snapshot");
    println!("{text}");
    eprintln!("wrote {out}");

    match check {
        Some(baseline_path) => check_against_baseline(&doc, &baseline_path, tolerance_pct),
        None => ExitCode::SUCCESS,
    }
}

/// Noise floor for the regression gate, ms: both sides of a comparison
/// are clamped up to this before the ratio is taken, so microsecond-scale
/// metrics (whose wall-clock jitter easily exceeds any tolerance) cannot
/// flake the gate, while a genuine blow-up past the floor still trips it.
const CHECK_FLOOR_MS: f64 = 0.05;

/// Noise floor for the serve latency metric: per-request wall time under
/// client concurrency sits around a millisecond and swings with scheduler
/// load, so sub-half-millisecond differences never trip the gate.
const SERVE_FLOOR_MS: f64 = 0.5;

/// Shared verdict logic for the serve-metric comparisons (`ratio` is
/// oriented so that > 1 means worse).
fn serve_verdict(ratio: f64, limit: f64, regressions: &mut usize) -> &'static str {
    if ratio > limit {
        *regressions += 1;
        "REGRESSED"
    } else if ratio < 1.0 / limit {
        "improved"
    } else {
        "ok"
    }
}

/// Compares `current` against the baseline document at `path`; reports
/// every time-metric ratio and fails on regressions beyond the tolerance.
fn check_against_baseline(current: &Json, path: &str, tolerance_pct: f64) -> ExitCode {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading baseline '{path}': {e}"));
    let baseline = parse(&text).expect("baseline parses");
    let limit = 1.0 + tolerance_pct / 100.0;
    let find_row = |doc: &Json, name: &str| -> Option<Json> {
        doc.get("circuits")?
            .as_arr()?
            .iter()
            .find(|row| row.get("name").and_then(Json::as_str) == Some(name))
            .cloned()
    };

    let mut regressions = 0usize;
    let mut compared = 0usize;
    let current_rows = current
        .get("circuits")
        .and_then(Json::as_arr)
        .expect("snapshot has circuits");
    for row in current_rows {
        let name = row.get("name").and_then(Json::as_str).expect("row name");
        let Some(base_row) = find_row(&baseline, name) else {
            eprintln!("check: {name}: not in baseline, skipped");
            continue;
        };
        for &metric in TIME_METRICS {
            let (Some(now), Some(base)) = (
                row.get(metric).and_then(Json::as_f64),
                base_row.get(metric).and_then(Json::as_f64),
            ) else {
                continue; // metric absent on one side (older baseline)
            };
            if base <= 0.0 {
                continue;
            }
            compared += 1;
            let ratio = now.max(CHECK_FLOOR_MS) / base.max(CHECK_FLOOR_MS);
            let verdict = if ratio > limit {
                regressions += 1;
                "REGRESSED"
            } else if ratio < 1.0 / limit {
                "improved"
            } else {
                "ok"
            };
            eprintln!(
                "check: {name:<11} {metric:<13} {now:>9.3} ms vs {base:>9.3} ms  \
                 ({ratio:>5.2}x)  {verdict}"
            );
        }
    }

    // Service metrics: a warm latency (lower is better) and a throughput
    // (higher is better) per section — `serve` is the single dominod, and
    // `fleet` the warm wave routed through the dominogw gateway. All are
    // wall-clock under client concurrency, which jitters more than the
    // kernel minima above, so they get twice the tolerance and a larger
    // floor. Sections absent from the baseline are skipped, so baselines
    // predating the fleet still gate what they know.
    let serve_limit = 1.0 + 2.0 * tolerance_pct / 100.0;
    for (section, latency_metric) in [("serve", "serve_ms"), ("fleet", "fleet_ms")] {
        let (Some(now), Some(base)) = (current.get(section), baseline.get(section)) else {
            continue;
        };
        let pair = |metric: &str| Some((now.get(metric)?.as_f64()?, base.get(metric)?.as_f64()?));
        if let Some((now_ms, base_ms)) = pair(latency_metric) {
            compared += 1;
            let ratio = now_ms.max(SERVE_FLOOR_MS) / base_ms.max(SERVE_FLOOR_MS);
            let verdict = serve_verdict(ratio, serve_limit, &mut regressions);
            eprintln!(
                "check: {section:<11} {latency_metric:<13} {now_ms:>9.3} ms vs \
                 {base_ms:>9.3} ms  ({ratio:>5.2}x)  {verdict}"
            );
        }
        if let Some((now_tp, base_tp)) = pair("jobs_per_s") {
            if base_tp > 0.0 && now_tp > 0.0 {
                compared += 1;
                // Compared through per-job wall time with the same noise
                // floor as the latency metric: throughput is the inverse
                // of the same wall clock, so without the floor a
                // sub-floor latency wiggle the latency clamp absorbs
                // would still trip the gate here as a throughput ratio.
                let ratio =
                    (1e3 / now_tp).max(SERVE_FLOOR_MS) / (1e3 / base_tp).max(SERVE_FLOOR_MS);
                let verdict = serve_verdict(ratio, serve_limit, &mut regressions);
                eprintln!(
                    "check: {section:<11} jobs_per_s    {now_tp:>9.0} /s vs {base_tp:>9.0} /s  \
                     ({:>5.2}x)  {verdict}",
                    now_tp / base_tp
                );
            }
        }
    }

    // The connection-scale section gates a deterministic capability, not
    // a wall clock: the serve layer must still hold at least as many
    // concurrent kept-alive connections as the baseline records (the
    // harness itself already verified byte-identity and the thread
    // bound, panicking otherwise).
    if let (Some(now), Some(base)) = (current.get("serve_scale"), baseline.get("serve_scale")) {
        if let (Some(now_c), Some(base_c)) = (
            now.get("connections").and_then(Json::as_u64),
            base.get("connections").and_then(Json::as_u64),
        ) {
            compared += 1;
            let verdict = if now_c < base_c {
                regressions += 1;
                "REGRESSED"
            } else {
                "ok"
            };
            eprintln!(
                "check: serve_scale connections   {now_c:>9} held vs {base_c:>9} held  {verdict}"
            );
        }
    }

    if compared == 0 {
        eprintln!("check: no comparable metrics between snapshot and '{path}'");
        return ExitCode::FAILURE;
    }
    if regressions > 0 {
        eprintln!("check: {regressions} metric(s) regressed beyond {tolerance_pct}% vs '{path}'");
        return ExitCode::FAILURE;
    }
    eprintln!("check: all {compared} metrics within {tolerance_pct}% of '{path}'");
    ExitCode::SUCCESS
}

/// Hit rate as a fraction, or `null` before any accesses.
fn rate(hits: u64, misses: u64) -> Json {
    let total = hits + misses;
    if total == 0 {
        Json::Null
    } else {
        Json::Num(hits as f64 / total as f64)
    }
}
