//! Regenerates **Figure 7**: partition quality of a sequential circuit —
//! the MFVS-based cut introduces fewer pseudo primary inputs than naive
//! alternatives.

use domino_sgraph::{extract_sgraph, partition, MfvsConfig};
use domino_workloads::figures::fig7_network;
use domino_workloads::{generate, GeneratorSpec};

fn main() {
    println!("Figure 7: sequential partitioning and block input counts\n");

    let net = fig7_network().expect("figure circuit builds");
    let g = extract_sgraph(&net);
    println!(
        "figure circuit: {} latches, s-graph edges {:?}",
        net.latches().len(),
        g.edges()
    );
    let p = partition(&net, &MfvsConfig::default());
    println!(
        "enhanced-MFVS partition: cut {} latch(es) -> {} pseudo primary input(s)",
        p.cut.len(),
        p.pseudo_input_count()
    );
    println!(
        "naive partition (cut every latch): {} pseudo primary inputs\n",
        net.latches().len()
    );

    // A larger randomized sequential control block for scale.
    let spec = GeneratorSpec {
        n_latches: 24,
        ..GeneratorSpec::control_block("seq_ctrl", 32, 12, 260, 17)
    };
    let seq = generate(&spec).expect("generator succeeds");
    let sg = extract_sgraph(&seq);
    println!(
        "seq_ctrl: {} latches, s-graph {} edges",
        seq.latches().len(),
        sg.edge_count()
    );
    for (label, cfg) in [
        ("enhanced MFVS (symmetry on)", MfvsConfig::default()),
        (
            "plain CBA (symmetry off)",
            MfvsConfig {
                symmetry: false,
                descending_weight: true,
            },
        ),
    ] {
        let p = partition(&seq, &cfg);
        println!(
            "  {label}: cut {} -> {} pseudo inputs (reductions: {:?})",
            p.cut.len(),
            p.pseudo_input_count(),
            p.mfvs.stats
        );
    }
    println!("  naive (cut all): {} pseudo inputs", seq.latches().len());
}
