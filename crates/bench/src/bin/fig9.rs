//! Regenerates **Figure 9**: the symmetry-based MFVS transformation.
//!
//! The five-flip-flop s-graph {A,B,E} ↔ {C,D} is strongly connected and
//! irreducible under the classical transformations. Grouping vertices with
//! identical fanins and fanouts yields supervertices ABE (weight 3) and CD
//! (weight 2); processing in descending weight order bypasses the heavy
//! supervertex and self-loops the light one into the cut — the optimal FVS
//! {C, D}.

use domino_sgraph::{exact_mfvs, mfvs, MfvsConfig};
use domino_workloads::figures::fig9_sgraph;

fn main() {
    let g = fig9_sgraph();
    println!("Figure 9: symmetry transformation for MFVS\n");
    println!(
        "s-graph: 5 vertices (A=0, B=1, C=2, D=3, E=4), {} edges, strongly connected",
        g.edge_count()
    );

    let plain = mfvs(
        &g,
        &MfvsConfig {
            symmetry: false,
            descending_weight: true,
        },
    );
    println!("\nclassical reductions only:");
    println!("  FVS = {:?} (size {})", plain.fvs, plain.fvs.len());
    println!("  stats: {:?}", plain.stats);

    let enhanced = mfvs(&g, &MfvsConfig::default());
    println!("\nwith the symmetry transformation:");
    println!(
        "  supervertices: ABE (weight 3), CD (weight 2) — {} merges",
        enhanced.stats.symmetry_merges
    );
    println!("  FVS = {:?} (size {})", enhanced.fvs, enhanced.fvs.len());
    println!("  stats: {:?}", enhanced.stats);

    let exact = exact_mfvs(&g);
    println!("\nexact minimum FVS: {:?} (size {})", exact, exact.len());
    assert_eq!(
        enhanced.fvs.len(),
        exact.len(),
        "enhanced heuristic is optimal here"
    );
    println!("\nenhanced = exact ✓ (paper: ABE/CD supervertices crack the graph)");
}
