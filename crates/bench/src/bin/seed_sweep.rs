//! Seed sweep helper: for each suite circuit, scans generator seeds and
//! reports simulated power saving and area penalty, to select seeds whose
//! behaviour matches the paper's published rows (e.g. frg1's large saving
//! with large area overhead, Industry 2's slightly negative saving).

use domino_bench::Experiment;
use domino_workloads::{generate, row_spec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("frg1");
    let n_seeds: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(24);

    let Some(base_spec) = row_spec(which) else {
        eprintln!("unknown circuit {which}");
        std::process::exit(1);
    };

    let experiment = Experiment::default();
    println!(
        "{which}: pi={} po={} gates={}",
        base_spec.n_inputs, base_spec.n_outputs, base_spec.n_gates
    );
    println!(
        "{:>6} | {:>6} {:>6} | {:>8} {:>8} | {:>8}",
        "seed", "MA", "MP", "pen%", "sav%", "est-sav%"
    );
    for seed in 0..n_seeds {
        let spec = domino_workloads::GeneratorSpec {
            seed,
            ..base_spec.clone()
        };
        let net = match generate(&spec) {
            Ok(n) => n,
            Err(e) => {
                println!("{seed:>6} | generation failed: {e}");
                continue;
            }
        };
        match experiment.compare(which, &net) {
            Ok(cmp) => {
                let est = 100.0 * (cmp.ma.estimated_switching - cmp.mp.estimated_switching)
                    / cmp.ma.estimated_switching;
                println!(
                    "{:>6} | {:>6} {:>6} | {:>8.1} {:>8.1} | {:>8.1}",
                    seed,
                    cmp.ma.size,
                    cmp.mp.size,
                    cmp.area_penalty_pct(),
                    cmp.power_saving_pct(),
                    est
                );
            }
            Err(e) => println!("{seed:>6} | flow failed: {e}"),
        }
    }
}
