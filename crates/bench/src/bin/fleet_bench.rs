//! `fleet_bench` — the `dominogw` fleet load generator: real `dominod`
//! and `dominogw` processes over loopback TCP (in-process fallback when
//! the binaries are not built), driven through three waves — cold, warm,
//! and a peer-warm growth wave where a node that never computed anything
//! answers warm because the gateway peered its cache from the old homes.
//!
//! ```text
//! cargo build --release            # builds dominod + dominogw siblings
//! cargo run --release -p domino-bench --bin fleet_bench -- \
//!     [--fast] [--clients <n>] [--backends <n>] [--passes <n>] \
//!     [--in-process] [--out <path>]
//! ```
//!
//! `--fast` restricts to the two cheapest circuits (the CI artifact
//! mode). The JSON document (default `fleet_bench.json`) carries all
//! three waves plus the verified peering accounting; `perf_snapshot`'s
//! `fleet` section measures the same waves (in-process) for the CI
//! regression gate, via the shared [`domino_bench::fleet_probe`] harness.

use domino_bench::fleet_probe::{measure_fleet, sibling_binary, FleetLoadConfig};
use domino_bench::serve_probe::WaveStats;
use domino_engine::json::Json;

fn wave_json(wave: &WaveStats) -> Json {
    Json::obj(vec![
        ("jobs", Json::Num(wave.jobs as f64)),
        ("wall_ms", Json::Num(wave.wall_ms)),
        ("jobs_per_s", Json::Num(wave.jobs_per_s)),
        ("mean_ms", Json::Num(wave.mean_ms)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let binaries_built =
        sibling_binary("dominod").is_some() && sibling_binary("dominogw").is_some();
    let in_process = args.iter().any(|a| a == "--in-process") || !binaries_built;
    if in_process && !binaries_built {
        eprintln!(
            "fleet_bench: dominod/dominogw binaries not found next to this executable; \
             measuring in-process (build them with: cargo build --release)"
        );
    }
    let config = FleetLoadConfig {
        fast: args.iter().any(|a| a == "--fast"),
        clients: flag("--clients")
            .map(|v| v.parse().expect("--clients needs an integer"))
            .unwrap_or(4),
        backends: flag("--backends")
            .map(|v| v.parse().expect("--backends needs an integer"))
            .unwrap_or(2),
        warm_passes: flag("--passes")
            .map(|v| v.parse().expect("--passes needs an integer"))
            .unwrap_or(3),
        processes: !in_process,
    };
    let out = flag("--out").unwrap_or_else(|| "fleet_bench.json".to_string());

    let m = measure_fleet(&config);

    let doc = Json::obj(vec![
        ("fast", Json::Bool(config.fast)),
        ("mode", Json::Str(m.mode.to_string())),
        ("backends", Json::Num(m.backends as f64)),
        ("clients", Json::Num(m.clients as f64)),
        ("jobs_per_wave", Json::Num(m.jobs_per_wave as f64)),
        ("cold", wave_json(&m.cold)),
        ("warm", wave_json(&m.warm)),
        ("peer_warm", wave_json(&m.peer_warm)),
        ("warm_speedup", Json::Num(m.warm_speedup)),
        ("peer_fills", Json::Num(m.peer_fills as f64)),
        ("grown_stores", Json::Num(m.grown_stores as f64)),
        ("grown_hits", Json::Num(m.grown_hits as f64)),
    ]);
    let text = doc.serialize();
    std::fs::write(&out, format!("{text}\n")).expect("write fleet_bench output");
    println!("{text}");
    eprintln!(
        "fleet_bench [{}]: {} backends (+1 grown), {} clients x {} jobs | \
         cold {:.1} jobs/s | warm {:.1} jobs/s ({:.1}x) | \
         peer-warm {:.1} jobs/s, {} key(s) re-homed and answered warm by a \
         node that computed nothing",
        m.mode,
        m.backends,
        m.clients,
        m.jobs_per_wave,
        m.cold.jobs_per_s,
        m.warm.jobs_per_s,
        m.warm_speedup,
        m.peer_warm.jobs_per_s,
        m.peer_fills,
    );
    eprintln!("wrote {out}");
}
