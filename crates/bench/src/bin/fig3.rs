//! Regenerates **Figure 3**: removing inverters by changing output phase
//! and applying DeMorgan's law.
//!
//! The initial synthesis of `f = !common`, `g = common` with
//! `common = (a+b) + !(c·d)` contains internal inverters, which domino
//! cannot implement. Each phase assignment pushes them to the boundaries;
//! the table shows where they end up.

use domino_phase::{DominoSynthesizer, PhaseAssignment};
use domino_workloads::figures::fig3_network;

fn main() {
    let net = fig3_network().expect("figure circuit builds");
    let (_, _, nots) = net.gate_counts();
    println!("Figure 3: phase assignment removes inverters\n");
    println!("initial technology-independent synthesis: {nots} internal/boundary inverters");
    println!("(common = (a+b) + !(c·d);  f = !common [negative phase],  g = common [positive])\n");

    let synth = DominoSynthesizer::new(&net).expect("valid network");
    println!(
        "{:>12} | {:>12} {:>10} {:>10} {:>10} | {:>14}",
        "phases(f,g)", "domino gates", "input inv", "output inv", "cells", "inverter-free"
    );
    for bits in 0..4u64 {
        let pa = PhaseAssignment::from_bits(2, bits);
        let d = synth.synthesize(&pa).expect("synthesis succeeds");
        println!(
            "{:>12} | {:>12} {:>10} {:>10} {:>10} | {:>14}",
            pa.to_string(),
            d.gate_count(),
            d.input_inverter_count(),
            d.output_inverter_count(),
            d.area_cells(),
            d.is_inverter_free()
        );
        // Verify the block really computes f and g.
        for v in 0..16u32 {
            let vals: Vec<bool> = (0..4).map(|i| v & (1 << i) != 0).collect();
            assert_eq!(
                d.eval(&vals).expect("eval"),
                net.eval_comb(&vals).expect("eval"),
                "function preserved"
            );
        }
    }
    println!("\nThe paper's step-by-step transformation corresponds to the (-, +) row:");
    println!("f keeps its boundary inverter (negative phase), g is realized directly; the");
    println!("internal inverter on (c·d) is pushed to the input boundary by DeMorgan,");
    println!("leaving an inverter-free domino block.");
}
