//! Regenerates **Figure 6** (the overall power minimization paradigm) as a
//! convergence trace: estimated power after each committed candidate of the
//! §4.1 loop, on the apex7-class benchmark.

use domino_bench::Experiment;
use domino_phase::flow::minimize_power;
use domino_workloads::table_suite;

fn main() {
    let suite = table_suite().expect("suite generates");
    let bench = suite.iter().find(|b| b.name == "apex7").expect("apex7");
    let experiment = Experiment::default();
    let pi = vec![experiment.pi_probability; bench.network.inputs().len()];
    let report = minimize_power(&bench.network, &pi, &experiment.flow).expect("flow succeeds");

    println!(
        "Figure 6: power-minimization loop convergence on {}\n",
        bench.name
    );
    println!("candidate evaluations: {}", report.outcome.evaluations);
    println!("committed improvements: {}\n", report.outcome.commits);
    println!("{:>8} {:>14} {:>10}", "commit", "est. power", "of initial");
    let initial = report.outcome.trace.first().copied().unwrap_or(0.0);
    for (i, p) in report.outcome.trace.iter().enumerate() {
        println!("{:>8} {:>14.3} {:>9.1}%", i, p, 100.0 * p / initial);
    }
    println!(
        "\nfinal assignment: {} ({} negative-phase outputs of {})",
        report.assignment,
        report.assignment.negative_count(),
        report.assignment.len()
    );
}
