//! Regenerates **Table 1**: synthesis and power for minimum-area (MA,
//! Puri et al. \[15\]) vs minimum-power (MP, this paper) phase assignment,
//! primary-input signal probabilities 0.5, untimed.
//!
//! Power is measured with the PowerMill-substitute simulator (capacitive +
//! short-circuit + leakage current, mA); size is mapped standard cells.
//! All seven circuits fan out over a `domino-engine` thread pool
//! (`TABLE_THREADS` workers, default one per CPU).

use std::sync::Arc;

use domino_bench::{format_table, Experiment};
use domino_engine::{EngineConfig, FlowEngine, ResultCache};
use domino_workloads::table_suite;

fn main() {
    let suite = table_suite().expect("suite generates");
    let experiment = Experiment::default();
    let threads = std::env::var("TABLE_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let engine = FlowEngine::new(EngineConfig {
        threads,
        cache: Some(Arc::new(ResultCache::in_memory())),
        snapshots: None,
    });

    println!("Table 1: synthesis when signal probabilities of primary inputs were 0.5\n");
    let circuits: Vec<(&str, &domino_netlist::Network)> =
        suite.iter().map(|b| (b.name, &b.network)).collect();
    let comparisons = experiment.compare_batch(&circuits, &engine);
    let mut rows = Vec::new();
    for (bench, cmp) in suite.iter().zip(comparisons) {
        let cmp = cmp.expect("flow succeeds");
        rows.push((
            cmp,
            bench.description,
            bench.network.inputs().len(),
            bench.network.outputs().len(),
        ));
    }
    println!("{}", format_table(&rows));

    println!("paper reference (same columns):");
    println!(
        "{:<11} {:>9} {:>9} {:>11}",
        "Ckt", "MA Size", "MA Pwr", "%PwrSav"
    );
    for bench in &suite {
        println!(
            "{:<11} {:>9} {:>9.2} {:>11.1}",
            bench.name, bench.paper_ma_size, bench.paper_ma_power, bench.paper_power_saving
        );
    }
    println!("paper averages: area penalty 11.8%, power saving 18.0%");
}
