//! Ablation studies for the design choices called out in DESIGN.md §7:
//!
//! * **A1** — symmetry supervertex reduction on/off (MFVS size);
//! * **A2** — BDD ordering: paper heuristic vs topological vs random;
//! * **A3** — cost-`K` pair guidance vs random candidate order;
//! * **A4** — commit-only-if-better vs always-commit;
//! * **A5** — exact BDD probabilities vs Monte-Carlo estimates feeding the
//!   same search.

use domino_bdd::circuit::CircuitBdds;
use domino_bdd::ordering::{paper_order, random_order, topological_order};
use domino_bench::Experiment;
use domino_engine::{FlowEngine, RunObjective};
use domino_phase::prob::{compute_probabilities, NodeProbabilities, ProbabilityConfig};
use domino_phase::search::{min_power_assignment, MinPowerConfig};
use domino_phase::{DominoSynthesizer, PhaseAssignment};
use domino_sgraph::{extract_sgraph, mfvs, MfvsConfig};
use domino_sim::montecarlo::estimate_node_probabilities;
use domino_sim::SimConfig;
use domino_workloads::{generate, table_suite, GeneratorSpec};

fn main() {
    let suite = table_suite().expect("suite generates");

    println!("== A1: symmetry supervertex reduction (sequential control blocks) ==");
    println!(
        "{:<10} {:>8} {:>14} {:>14}",
        "circuit", "latches", "FVS plain", "FVS enhanced"
    );
    for seed in [3u64, 5, 9] {
        let spec = GeneratorSpec {
            n_latches: 30,
            ..GeneratorSpec::control_block(format!("seq{seed}"), 40, 16, 320, seed)
        };
        let net = generate(&spec).expect("generator succeeds");
        let g = extract_sgraph(&net);
        let plain = mfvs(
            &g,
            &MfvsConfig {
                symmetry: false,
                descending_weight: true,
            },
        );
        let enhanced = mfvs(&g, &MfvsConfig::default());
        println!(
            "{:<10} {:>8} {:>14} {:>14}",
            format!("seq{seed}"),
            net.latches().len(),
            plain.fvs.len(),
            enhanced.fvs.len()
        );
    }

    println!("\n== A2: BDD variable ordering (total shared nodes) ==");
    println!(
        "{:<12} {:>10} {:>12} {:>10}",
        "ckt", "paper", "topological", "random"
    );
    for bench in suite.iter().take(4) {
        let net = &bench.network;
        let n = net.inputs().len() + net.latches().len();
        let build = |order: Vec<usize>| -> usize {
            CircuitBdds::build_with_order(net, order)
                .map(|b| b.total_node_count())
                .unwrap_or(usize::MAX)
        };
        println!(
            "{:<12} {:>10} {:>12} {:>10}",
            bench.name,
            build(paper_order(net)),
            build(topological_order(net)),
            build(random_order(n, 1))
        );
    }

    println!("\n== A3/A4: search policy (estimated power, lower is better) ==");
    println!(
        "{:<12} {:>12} {:>12} {:>14}",
        "ckt", "K-guided", "random-order", "always-commit"
    );
    // Each policy variant is an engine job (min-power objective, refinement
    // disabled to isolate the pairwise-loop policies); all 3 variants × 4
    // circuits fan out over one engine pool.
    {
        // Refinement disabled: isolate the pairwise-loop policies.
        let strict = MinPowerConfig {
            refinement_passes: 0,
            ..MinPowerConfig::default()
        };
        let policies = [
            ("K-guided", strict.clone()),
            (
                "random-order",
                MinPowerConfig {
                    k_guided: false,
                    seed: 7,
                    ..strict.clone()
                },
            ),
            (
                "always-commit",
                MinPowerConfig {
                    always_commit: true,
                    ..strict.clone()
                },
            ),
        ];
        let public: Vec<_> = suite
            .iter()
            .filter(|b| b.description == "Public Domain")
            .collect();
        let mut experiment = Experiment::default();
        experiment.sim.cycles = 64; // only the BDD estimate is reported
        let jobs: Vec<_> = public
            .iter()
            .flat_map(|bench| {
                policies.iter().map(|(_, cfg)| {
                    let mut exp = experiment.clone();
                    exp.flow.power = cfg.clone();
                    exp.job(bench.name, &bench.network, RunObjective::MinPower)
                })
            })
            .collect();
        let results = FlowEngine::default().run_batch(&jobs);
        for (row, bench) in public.iter().enumerate() {
            let est = |col: usize| -> f64 {
                match &results[row * policies.len() + col] {
                    r @ domino_engine::JobResult::Completed { .. } => {
                        r.outcome()
                            .and_then(|o| o.mp.as_ref())
                            .expect("min-power job has an MP side")
                            .estimated_switching
                    }
                    other => panic!(
                        "{} / {} search failed: {other:?}",
                        bench.name, policies[col].0
                    ),
                }
            };
            println!(
                "{:<12} {:>12.2} {:>12.2} {:>14.2}",
                bench.name,
                est(0),
                est(1),
                est(2)
            );
        }
    }

    println!("\n== A5: exact BDD vs Monte-Carlo probabilities feeding the search ==");
    println!(
        "{:<12} {:>14} {:>14} {:>16}",
        "ckt", "exact-driven", "mc-driven", "assignments eq?"
    );
    for bench in suite.iter().filter(|b| b.description == "Public Domain") {
        let net = &bench.network;
        let pi = vec![0.5; net.inputs().len()];
        let exact = compute_probabilities(net, &pi, &ProbabilityConfig::default()).expect("probs");
        let mc_vec = estimate_node_probabilities(
            net,
            &pi,
            &SimConfig {
                cycles: 8192,
                warmup: 16,
                seed: 23,
                ..SimConfig::default()
            },
        );
        let mc = NodeProbabilities::from_vec(mc_vec);
        let synth = DominoSynthesizer::new(net).expect("valid");
        let n = synth.view_outputs().len();
        let a = min_power_assignment(
            &synth,
            &exact,
            PhaseAssignment::all_positive(n),
            &MinPowerConfig::default(),
        )
        .expect("search succeeds");
        let b = min_power_assignment(
            &synth,
            &mc,
            PhaseAssignment::all_positive(n),
            &MinPowerConfig::default(),
        )
        .expect("search succeeds");
        println!(
            "{:<12} {:>14.2} {:>14.2} {:>16}",
            bench.name,
            a.objective,
            b.objective,
            a.assignment == b.assignment
        );
    }
}
