//! Regenerates **Figure 10**: BDD node counts for the P/Q/R circuit under
//! three variable orders — the paper's reverse-topological fanout-weighted
//! heuristic, the naive topological order, and the "disturbed signal
//! grouping" order.
//!
//! Paper counts: 7 (reverse-topological) < 9 (disturbed) < 11
//! (topological). Exact counts depend on unpublished gate details; the
//! reconstruction reproduces the *ranking*, which is the heuristic's claim.

use domino_bdd::circuit::CircuitBdds;
use domino_bdd::ordering::{paper_order, random_order, sandwich_disturbed, topological_order};
use domino_workloads::figures::fig10_network;
use domino_workloads::table_suite;

fn main() {
    let net = fig10_network().expect("figure circuit builds");
    println!("Figure 10: BDD variable ordering on the P/Q/R circuit\n");
    println!("P = x1·x2·x3, Q = x3·x4, R = Q + x5\n");

    let rev = paper_order(&net);
    let topo = topological_order(&net);
    let dist = sandwich_disturbed(rev.clone());
    let count = |order: Vec<usize>| -> usize {
        CircuitBdds::build_with_order(&net, order)
            .expect("small circuit builds")
            .output_node_count(&net)
    };
    let names = |o: &[usize]| -> Vec<String> { o.iter().map(|v| format!("x{}", v + 1)).collect() };

    let c_rev = count(rev.clone());
    let c_topo = count(topo.clone());
    let c_dist = count(dist.clone());
    println!(
        "{:<36} {:<22} {:>6}  (paper)",
        "order", "variables (top→bottom)", "nodes"
    );
    println!(
        "{:<36} {:<22} {:>6}  {:>7}",
        "reverse topological (the heuristic)",
        names(&rev).join(","),
        c_rev,
        7
    );
    println!(
        "{:<36} {:<22} {:>6}  {:>7}",
        "disturbed signal grouping",
        names(&dist).join(","),
        c_dist,
        9
    );
    println!(
        "{:<36} {:<22} {:>6}  {:>7}",
        "topological",
        names(&topo).join(","),
        c_topo,
        11
    );
    assert!(c_rev <= c_dist && c_rev <= c_topo, "heuristic wins");
    println!("\nranking preserved: reverse-topological ≤ disturbed ≤ topological ✓");

    // "In practice … our heuristic is actually much more effective": show
    // it on the benchmark suite.
    println!("\nbenchmark-scale node counts (all circuit nodes, shared):");
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "ckt", "paper-order", "topological", "random"
    );
    for bench in table_suite().expect("suite generates") {
        let net = &bench.network;
        let n = net.inputs().len() + net.latches().len();
        let build = |order: Vec<usize>| -> usize {
            CircuitBdds::build_with_order(net, order)
                .map(|b| b.total_node_count())
                .unwrap_or(usize::MAX)
        };
        println!(
            "{:<12} {:>12} {:>12} {:>12}",
            bench.name,
            build(paper_order(net)),
            build(topological_order(net)),
            build(random_order(n, 99))
        );
    }
}
