//! Regenerates **Figure 5**: the exact switching comparison between two
//! phase assignments of `f = (a+b)+(c·d)`, `g = !(a+b)+!(c·d)` at primary
//! input probability 0.9.
//!
//! Expected (paper values): assignment (f+, g−) — block 3.6, inputs 0.0,
//! outputs .8019; assignment (f−, g+) — block .40, inputs .72, outputs
//! .0019; "the second realization has 75% fewer transitions".

use domino_phase::power::{estimate_power, PowerModel};
use domino_phase::prob::{compute_probabilities, ProbabilityConfig};
use domino_phase::{DominoSynthesizer, Phase, PhaseAssignment};
use domino_sim::{measure_domino_switching, SimConfig};
use domino_workloads::figures::fig5_network;

fn main() {
    let net = fig5_network().expect("figure circuit builds");
    let pi = vec![0.9; 4];
    let probs = compute_probabilities(&net, &pi, &ProbabilityConfig::default())
        .expect("probabilities compute");
    let synth = DominoSynthesizer::new(&net).expect("valid network");

    println!("Figure 5: switching in circuits from two phase assignments (p(PI) = 0.9)\n");
    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>10} | {:>12}",
        "assignment", "block", "input invs", "output invs", "TOTAL", "sim total"
    );

    let mut totals = Vec::new();
    for (fa, ga, label) in [
        (Phase::Positive, Phase::Negative, "(f+, g-)"),
        (Phase::Negative, Phase::Positive, "(f-, g+)"),
    ] {
        let pa = PhaseAssignment::from_phases(vec![fa, ga]);
        let d = synth.synthesize(&pa).expect("synthesis succeeds");
        let est = estimate_power(&d, probs.as_slice(), &PowerModel::unit());
        let sim = measure_domino_switching(
            &d,
            &pi,
            &SimConfig {
                cycles: 200_000,
                warmup: 16,
                seed: 5,
                ..SimConfig::default()
            },
        );
        println!(
            "{:<14} {:>14.4} {:>14.4} {:>14.4} {:>10.4} | {:>12.4}",
            label,
            est.block,
            est.input_inverters,
            est.output_inverters,
            est.total(),
            sim.total()
        );
        totals.push(est.total());
    }
    let reduction = 100.0 * (1.0 - totals[1] / totals[0]);
    println!("\nsecond realization has {reduction:.1}% fewer weighted transitions (paper: 75%)");
    println!("paper values: 3.6/0.0/.8019 = 4.4019  vs  .40/.72/.0019 = 1.1219");
}
