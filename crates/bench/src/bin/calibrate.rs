//! Calibration probe: reports MA/MP sizes, BDD node counts and runtimes for
//! the benchmark suite, so the generator gate budgets can be tuned against
//! the paper's published MA cell counts.

use std::time::Instant;

use domino_bench::Experiment;
use domino_workloads::table_suite;

fn main() {
    let suite = table_suite().expect("suite generates");
    let mut experiment = Experiment::default();
    experiment.flow.power.refinement_passes = 6;
    println!(
        "{:<11} {:>5} {:>5} | {:>9} {:>7} | {:>7} {:>9} {:>7} {:>8} | {:>8}",
        "ckt", "pi", "po", "paper MA", "MA", "MP", "evals", "sav%", "est-sav%", "time"
    );
    for bench in &suite {
        let t0 = Instant::now();
        match experiment.compare(bench.name, &bench.network) {
            Ok(cmp) => {
                let est_sav = 100.0 * (cmp.ma.estimated_switching - cmp.mp.estimated_switching)
                    / cmp.ma.estimated_switching;
                println!(
                    "{:<11} {:>5} {:>5} | {:>9} {:>7} | {:>7} {:>9} {:>7.1} {:>8.1} | {:>7.2}s",
                    bench.name,
                    bench.network.inputs().len(),
                    bench.network.outputs().len(),
                    bench.paper_ma_size,
                    cmp.ma.size,
                    cmp.mp.size,
                    cmp.mp.evaluations,
                    cmp.power_saving_pct(),
                    est_sav,
                    t0.elapsed().as_secs_f64()
                );
            }
            Err(e) => println!("{:<11} FAILED: {e}", bench.name),
        }
    }
}
