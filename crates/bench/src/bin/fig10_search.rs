//! One-off search tool: brute-forces small P/Q/R gate structures over
//! x1..x5 looking for a circuit whose shared BDD node counts under the
//! three Figure 10 orders equal the paper's (7, 11, 9).

use domino_bdd::circuit::CircuitBdds;
use domino_bdd::ordering::{paper_order, sandwich_disturbed, topological_order};
use domino_netlist::{Network, NodeId};

type Builder = fn(&mut Network, &[NodeId]) -> NodeId;

fn gates() -> Vec<(&'static str, Builder)> {
    vec![
        ("and", |n, f| n.add_and(f.iter().copied()).unwrap()),
        ("or", |n, f| n.add_or(f.iter().copied()).unwrap()),
        ("a&!b..", |n, f| {
            // first input direct, rest complemented, AND
            let mut v = vec![f[0]];
            for &x in &f[1..] {
                v.push(n.add_not(x).unwrap());
            }
            n.add_and(v).unwrap()
        }),
        ("a+!b..", |n, f| {
            let mut v = vec![f[0]];
            for &x in &f[1..] {
                v.push(n.add_not(x).unwrap());
            }
            n.add_or(v).unwrap()
        }),
        ("!a&b..", |n, f| {
            let mut v = vec![n.add_not(f[0]).unwrap()];
            v.extend(&f[1..]);
            n.add_and(v).unwrap()
        }),
        ("maj/mix", |n, f| {
            // (f0·f1) + f2… : mixed structure
            if f.len() >= 3 {
                let ab = n.add_and([f[0], f[1]]).unwrap();
                n.add_or([ab, f[2]]).unwrap()
            } else {
                let na = n.add_not(f[0]).unwrap();
                n.add_and([na, f[1]]).unwrap()
            }
        }),
    ]
}

fn counts(build: impl Fn(&mut Network)) -> (usize, usize, usize) {
    let mut net = Network::new("cand");
    build(&mut net);
    let rev = paper_order(&net);
    let topo = topological_order(&net);
    let dist = sandwich_disturbed(rev.clone());
    let c = |order: Vec<usize>| {
        CircuitBdds::build_with_order(&net, order)
            .unwrap()
            .output_node_count(&net)
    };
    (c(rev), c(topo), c(dist))
}

fn main() {
    let gs = gates();
    let mut best: Option<((usize, usize, usize), String)> = None;
    // P over (x1,x2,x3); Q over (x3,x4) or (x4,x3); R over (Q,x5) or (x5,Q).
    for (pn, pf) in &gs {
        for (qn, qf) in &gs {
            for (rn, rf) in &gs {
                for q_swap in [false, true] {
                    for r_swap in [false, true] {
                        let got = counts(|net| {
                            let x: Vec<NodeId> = (1..=5)
                                .map(|i| net.add_input(format!("x{i}")).unwrap())
                                .collect();
                            let p = pf(net, &[x[0], x[1], x[2]]);
                            let qargs = if q_swap { [x[3], x[2]] } else { [x[2], x[3]] };
                            let q = qf(net, &qargs);
                            let rargs = if r_swap { [x[4], q] } else { [q, x[4]] };
                            let r = rf(net, &rargs);
                            net.add_output("P", p).unwrap();
                            net.add_output("Q", q).unwrap();
                            net.add_output("R", r).unwrap();
                        });
                        let desc = format!(
                            "P={pn} Q={qn}(swap={q_swap}) R={rn}(swap={r_swap}) -> {got:?}"
                        );
                        if got == (7, 11, 9) {
                            println!("EXACT: {desc}");
                            return;
                        }
                        let score = |t: (usize, usize, usize)| {
                            (t.0 as i32 - 7).abs()
                                + (t.1 as i32 - 11).abs()
                                + (t.2 as i32 - 9).abs()
                        };
                        if best.as_ref().is_none_or(|(b, _)| score(got) < score(*b)) {
                            best = Some((got, desc));
                        }
                    }
                }
            }
        }
    }
    if let Some((got, desc)) = best {
        println!("closest: {desc} (target (7, 11, 9), got {got:?})");
    }
}
