//! Regenerates the kernel-equivalence fixtures pinned by
//! `tests/golden_kernel.rs` (checked in at
//! `tests/fixtures/golden_kernel.txt`).
//!
//! For every public-domain suite circuit this emits, as stable
//! `key=value` text: the network's structural digest, an FNV-1a hash over
//! the exact bit patterns of every node probability, the shared BDD node
//! count, the minimum-area / minimum-power search outcomes (assignment
//! string plus the objective's `f64` bit pattern) — and, since the
//! bit-parallel simulation engine landed, the packed power measurement
//! (total current bits + switch events) and domino switching counts of the
//! min-area assignment under the default `SimConfig`. The golden test
//! compares the live kernel against these values bit for bit, so any
//! refactor of the BDD manager, accountant, search, vector stream or
//! packed simulator must leave them untouched (or consciously regenerate).
//!
//! ```text
//! cargo run --release -p domino-bench --bin golden_dump -- [--out <path>]
//! ```
//!
//! Without `--out` the fixture text goes to stdout. CI regenerates into a
//! temp file and diffs against the checked-in fixture, failing when a code
//! change silently shifts pinned outputs without a fixture update.

use std::fmt::Write as _;

use domino_bdd::ReorderMode;
use domino_phase::flow::FlowConfig;
use domino_phase::prob::{compute_probabilities, ProbabilityConfig};
use domino_phase::search::{min_area_assignment, min_power_assignment};
use domino_phase::{DominoSynthesizer, PhaseAssignment};
use domino_sim::{measure_domino_switching, measure_power, SimConfig};
use domino_techmap::{map, Library};
use domino_workloads::public_suite;

/// FNV-1a over the `f64` bit patterns of a probability vector: equal hash
/// ⟺ byte-identical probabilities (no tolerance).
fn prob_hash(probs: &[f64]) -> u64 {
    let mut state = 0xcbf2_9ce4_8422_2325u64;
    for &p in probs {
        for byte in p.to_bits().to_le_bytes() {
            state ^= u64::from(byte);
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    state
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let suite = public_suite().expect("suite generates");
    let config = FlowConfig::default();
    let lib = Library::standard();
    let sim_cfg = SimConfig::default();
    let mut text = String::new();
    writeln!(
        text,
        "# golden kernel fixtures — regenerate with:\n\
         #   cargo run --release -p domino-bench --bin golden_dump -- --out tests/fixtures/golden_kernel.txt"
    )
    .unwrap();
    for bench in &suite {
        let net = &bench.network;
        let pi = vec![0.5; net.inputs().len()];
        let probs = compute_probabilities(net, &pi, &config.probability).expect("probabilities");
        let synth = DominoSynthesizer::new(net).expect("synthesizer");
        let n = synth.view_outputs().len();
        let ma = min_area_assignment(&synth, &config.area).expect("min-area");
        let mp = min_power_assignment(
            &synth,
            &probs,
            PhaseAssignment::all_positive(n),
            &config.power,
        )
        .expect("min-power");
        writeln!(
            text,
            "kernel name={} digest={:016x} prob_hash={:016x} bdd_nodes={} \
             ma_assignment={} ma_objective={:016x} ma_evaluations={} \
             mp_assignment={} mp_objective={:016x} mp_evaluations={}",
            bench.name,
            net.structural_digest(),
            prob_hash(probs.as_slice()),
            probs.bdd_node_count(),
            ma.assignment,
            ma.objective.to_bits(),
            ma.evaluations,
            mp.assignment,
            mp.objective.to_bits(),
            mp.evaluations,
        )
        .unwrap();

        // Reorder pins: the same probability computation with sifting
        // enabled must stay bit-identical too — node probabilities, the
        // shared node count after reordering, the exact swap count and
        // the final variable order are all deterministic.
        let sifted = compute_probabilities(
            net,
            &pi,
            &ProbabilityConfig {
                reorder: ReorderMode::Sift,
                ..config.probability.clone()
            },
        )
        .expect("sifted probabilities");
        let outcome = sifted
            .reorder_outcome()
            .expect("sift mode records an outcome");
        let order = outcome
            .final_order
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(".");
        writeln!(
            text,
            "reorder name={} mode=sift prob_hash={:016x} bdd_nodes={} swaps={} order={}",
            bench.name,
            prob_hash(sifted.as_slice()),
            sifted.bdd_node_count(),
            outcome.swaps,
            order,
        )
        .unwrap();

        // Packed-simulation pins: power and switching of the MA assignment
        // under the default simulation config.
        let domino = synth.synthesize(&ma.assignment).expect("synthesis");
        let mapped = map(&domino, &lib);
        let power = measure_power(&mapped, &lib, &pi, &sim_cfg);
        let switching = measure_domino_switching(&domino, &pi, &sim_cfg);
        writeln!(
            text,
            "sim name={} power_total={:016x} switch_events={} vectors={} words={} \
             block={:016x} input_inv={:016x} output_inv={:016x}",
            bench.name,
            power.total_ma().to_bits(),
            power.switch_events,
            power.stats.vectors,
            power.stats.words,
            switching.block.to_bits(),
            switching.input_inverters.to_bits(),
            switching.output_inverters.to_bits(),
        )
        .unwrap();
    }

    match out {
        Some(path) => {
            std::fs::write(&path, &text).expect("write fixture");
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
}
