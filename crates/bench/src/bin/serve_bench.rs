//! `serve_bench` — the `dominod` load generator: N concurrent clients
//! over the public suite against an in-process server, cold cache vs warm
//! cache, with the cache accounting verified (warm hit delta == request
//! count) before any number is reported.
//!
//! ```text
//! cargo run --release -p domino-bench --bin serve_bench -- \
//!     [--fast] [--clients <n>] [--passes <n>] [--connections <n>] [--out <path>]
//! ```
//!
//! `--fast` restricts to the two cheapest circuits (the CI artifact
//! mode). The JSON document (default `serve_bench.json`) carries both
//! waves' wall/throughput/latency and the warm-over-cold speedup; the
//! same measurement feeds `perf_snapshot`'s `serve` section and the CI
//! regression gate, via the shared [`domino_bench::serve_probe`] harness.
//!
//! `--connections <n>` additionally runs the connection-scale harness:
//! `n` concurrent kept-alive connections held open against one server,
//! every response byte-verified and the server's thread count verified
//! bounded (the reactor serves connections with sockets, not threads).

use domino_bench::serve_probe::{
    measure_connection_scale, measure_serve, ConnectionScaleConfig, ServeLoadConfig, WaveStats,
};
use domino_engine::json::Json;

fn wave_json(wave: &WaveStats) -> Json {
    Json::obj(vec![
        ("jobs", Json::Num(wave.jobs as f64)),
        ("wall_ms", Json::Num(wave.wall_ms)),
        ("jobs_per_s", Json::Num(wave.jobs_per_s)),
        ("mean_ms", Json::Num(wave.mean_ms)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let config = ServeLoadConfig {
        fast: args.iter().any(|a| a == "--fast"),
        clients: flag("--clients")
            .map(|v| v.parse().expect("--clients needs an integer"))
            .unwrap_or(4),
        warm_passes: flag("--passes")
            .map(|v| v.parse().expect("--passes needs an integer"))
            .unwrap_or(3),
    };
    let out = flag("--out").unwrap_or_else(|| "serve_bench.json".to_string());
    let connections: Option<usize> =
        flag("--connections").map(|v| v.parse().expect("--connections needs an integer"));

    let m = measure_serve(&config);

    let mut doc = Json::obj(vec![
        ("fast", Json::Bool(config.fast)),
        ("clients", Json::Num(m.clients as f64)),
        ("workers", Json::Num(m.workers as f64)),
        ("jobs_per_wave", Json::Num(m.jobs_per_wave as f64)),
        ("warm_passes", Json::Num(config.warm_passes as f64)),
        ("cold", wave_json(&m.cold)),
        ("warm", wave_json(&m.warm)),
        ("warm_speedup", Json::Num(m.warm_speedup)),
        ("warm_requests", Json::Num(m.warm_requests as f64)),
        ("warm_cache_hits", Json::Num(m.warm_hits as f64)),
        ("keepalive", wave_json(&m.keepalive)),
        ("per_connection", wave_json(&m.per_connection)),
        ("keepalive_speedup", Json::Num(m.keepalive_speedup)),
        ("connection_reuses", Json::Num(m.connection_reuses as f64)),
    ]);
    if let Some(n) = connections {
        let scale = measure_connection_scale(&ConnectionScaleConfig {
            connections: n,
            ..ConnectionScaleConfig::default()
        });
        if let Json::Obj(pairs) = &mut doc {
            pairs.push((
                "connection_scale".to_string(),
                Json::obj(vec![
                    ("connections", Json::Num(scale.connections as f64)),
                    ("drivers", Json::Num(scale.drivers as f64)),
                    ("open_ms", Json::Num(scale.open_ms)),
                    ("requests_per_s", Json::Num(scale.requests_per_s)),
                    ("open_connections", Json::Num(scale.open_connections as f64)),
                    ("process_threads", Json::Num(scale.process_threads as f64)),
                    ("thread_bound", Json::Num(scale.thread_bound as f64)),
                ]),
            ));
        }
        eprintln!(
            "serve_bench: {} kept-alive connections held concurrently \
             ({:.0} warm req/s to open) on {} process threads (bound {}) — \
             byte-identity verified on every connection",
            scale.connections, scale.requests_per_s, scale.process_threads, scale.thread_bound,
        );
    }
    let text = doc.serialize();
    std::fs::write(&out, format!("{text}\n")).expect("write serve_bench output");
    println!("{text}");
    eprintln!(
        "serve_bench: {} clients x {} jobs | cold {:.1} jobs/s ({:.2} ms/job) | \
         warm {:.1} jobs/s ({:.2} ms/job) | warm/cold {:.1}x | \
         warm hits {}/{} verified",
        m.clients,
        m.jobs_per_wave,
        m.cold.jobs_per_s,
        m.cold.mean_ms,
        m.warm.jobs_per_s,
        m.warm.mean_ms,
        m.warm_speedup,
        m.warm_hits,
        m.warm_requests,
    );
    eprintln!(
        "serve_bench: keep-alive {:.1} jobs/s ({:.3} ms/req) vs \
         connection-per-request {:.1} jobs/s ({:.3} ms/req) — {:.2}x, \
         {} reused connections verified",
        m.keepalive.jobs_per_s,
        m.keepalive.mean_ms,
        m.per_connection.jobs_per_s,
        m.per_connection.mean_ms,
        m.keepalive_speedup,
        m.connection_reuses,
    );
    eprintln!("wrote {out}");
}
