//! Shared load-measurement harness for the `dominogw` fleet: N `dominod`
//! backends behind one consistent-hash gateway, driven by concurrent
//! clients through three waves:
//!
//! * **cold** — every client submits its own seed-varied copy of the
//!   suite through the gateway: every job recomputes, once, on its
//!   rendezvous home (verified: fleet-wide cache misses == jobs);
//! * **warm** — the same specs again: every request must be answered by
//!   its home backend's cache (verified: hit delta == requests, zero new
//!   misses);
//! * **peer-warm** — a *grown* fleet: a second gateway over the same
//!   backends plus one fresh node that has never computed anything. Keys
//!   that re-home onto the fresh node are answered warm anyway — the
//!   gateway peeks the old home's cache and fills the new one — which
//!   this harness verifies (the fresh node serves hits with zero misses,
//!   and the whole wave recomputes nothing).
//!
//! Two spawn modes measure the same thing: `processes` runs the real
//! `dominod`/`dominogw` binaries over loopback TCP (the honest
//! multi-process deployment, used by `fleet_bench`), `in-process` starts
//! the servers inside this process (hermetic, used by `perf_snapshot`'s
//! regression gate). Wire traffic is identical either way.

use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use domino_engine::json::parse;
use domino_engine::{JobSpec, ResultCache};
use domino_fleet::{hash, Gateway, GatewayConfig, GatewayMetrics};
use domino_serve::{ServeClient, ServeConfig, Server};

use crate::serve_probe::{client_specs, run_wave, serve_suite_names, WaveStats};

/// Fleet-harness knobs.
#[derive(Debug, Clone)]
pub struct FleetLoadConfig {
    /// Restrict to the two cheapest circuits (the CI smoke mode).
    pub fast: bool,
    /// Concurrent client threads.
    pub clients: usize,
    /// Backends in the initial fleet (one more is spawned for the
    /// peer-warm growth wave).
    pub backends: usize,
    /// Warm waves to run; the best (minimum-wall) wave is reported.
    pub warm_passes: usize,
    /// Spawn the real `dominod`/`dominogw` binaries instead of in-process
    /// servers. Requires the binaries next to the current executable
    /// (`cargo build --release` puts them there).
    pub processes: bool,
}

impl Default for FleetLoadConfig {
    fn default() -> Self {
        FleetLoadConfig {
            fast: false,
            clients: 4,
            backends: 2,
            warm_passes: 3,
            processes: false,
        }
    }
}

/// The three-wave fleet measurement, plus the verified peering accounting.
#[derive(Debug, Clone)]
pub struct FleetMeasurement {
    /// `"processes"` or `"in-process"`.
    pub mode: &'static str,
    /// Backends in the initial fleet.
    pub backends: usize,
    /// Client threads used.
    pub clients: usize,
    /// Requests per wave (`clients × suite size`).
    pub jobs_per_wave: u64,
    /// The cold (all-recompute) wave through the gateway.
    pub cold: WaveStats,
    /// The best warm (all-cache-hit) wave through the gateway.
    pub warm: WaveStats,
    /// The growth wave through the second gateway (fleet + 1 node).
    pub peer_warm: WaveStats,
    /// `warm.jobs_per_s / cold.jobs_per_s`.
    pub warm_speedup: f64,
    /// Peer fills the growth gateway performed (== keys re-homed onto
    /// the fresh node).
    pub peer_fills: u64,
    /// Cache entries the fresh node received via peering.
    pub grown_stores: u64,
    /// Requests the fresh node answered from its peered cache.
    pub grown_hits: u64,
}

/// One backend, either resident or a real `dominod` process. (`Option`
/// inside so `stop` can move the handle out despite the `Drop` impl.)
enum Node {
    InProcess(Option<Server>),
    Process(Option<Child>),
}

impl Node {
    fn stop(&mut self, client: &ServeClient) {
        match self {
            Node::InProcess(server) => {
                if let Some(server) = server.take() {
                    server.shutdown();
                }
            }
            Node::Process(child) => {
                if let Some(mut child) = child.take() {
                    // Drain over the wire like any operator would; the
                    // kill is the cleanup of last resort.
                    if client.shutdown().is_err() {
                        let _ = child.kill();
                    }
                    let _ = child.wait();
                }
            }
        }
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        if let Node::Process(Some(child)) = self {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// A gateway, either resident or a real `dominogw` process.
enum Gw {
    InProcess(Option<Gateway>),
    Process(Option<Child>),
}

impl Gw {
    fn stop(&mut self, client: &ServeClient) {
        match self {
            Gw::InProcess(gateway) => {
                if let Some(gateway) = gateway.take() {
                    gateway.shutdown();
                }
            }
            Gw::Process(child) => {
                if let Some(mut child) = child.take() {
                    if client.shutdown().is_err() {
                        let _ = child.kill();
                    }
                    let _ = child.wait();
                }
            }
        }
    }
}

impl Drop for Gw {
    fn drop(&mut self) {
        if let Gw::Process(Some(child)) = self {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Finds a workspace binary next to the current executable (or one
/// directory up, for binaries running from `target/<profile>/deps/`).
pub fn sibling_binary(name: &str) -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    [dir, dir.parent()?]
        .iter()
        .map(|d| d.join(name))
        .find(|p| p.is_file())
}

/// Spawns `binary`, reading its stdout until the `<name> listening on
/// <addr>` line every daemon prints, and returns (child, addr).
fn spawn_daemon(binary: &std::path::Path, name: &str, args: &[String]) -> (Child, String) {
    let mut child = Command::new(binary)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap_or_else(|e| panic!("spawning {}: {e}", binary.display()));
    let stdout = child.stdout.take().expect("piped stdout");
    let prefix = format!("{name} listening on ");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(addr) = line.strip_prefix(&prefix) {
                    break addr.to_string();
                }
            }
            _ => panic!("{name} exited before reporting its address"),
        }
    };
    // Keep draining stdout so the daemon can never block on a full pipe;
    // stop at the first read error rather than looping on Err forever.
    std::thread::spawn(move || while let Some(Ok(_line)) = lines.next() {});
    (child, addr)
}

fn start_backend(queue: usize, processes: bool, index: usize) -> (Node, String) {
    if processes {
        let binary = sibling_binary("dominod").expect("dominod binary (cargo build --release)");
        let dir = std::env::temp_dir().join(format!("fleet_probe_{}_{index}", std::process::id()));
        // A leftover directory (from a crashed prior run under a reused
        // pid) would make the cold wave warm; start from nothing.
        let _ = std::fs::remove_dir_all(&dir);
        let args = vec![
            "--addr".into(),
            "127.0.0.1:0".into(),
            "--queue".into(),
            queue.to_string(),
            "--cache".into(),
            dir.to_string_lossy().into_owned(),
        ];
        let (child, addr) = spawn_daemon(&binary, "dominod", &args);
        (Node::Process(Some(child)), addr)
    } else {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: queue,
            cache: Some(Arc::new(ResultCache::in_memory())),
            ..ServeConfig::default()
        })
        .expect("ephemeral backend bind");
        let addr = server.addr().to_string();
        (Node::InProcess(Some(server)), addr)
    }
}

fn start_gateway(backends: &[String], processes: bool) -> (Gw, String) {
    if processes {
        let binary = sibling_binary("dominogw").expect("dominogw binary (cargo build --release)");
        let mut args = vec!["--addr".to_string(), "127.0.0.1:0".to_string()];
        for addr in backends {
            args.push("--backend".into());
            args.push(addr.clone());
        }
        let (child, addr) = spawn_daemon(&binary, "dominogw", &args);
        (Gw::Process(Some(child)), addr)
    } else {
        let gateway = Gateway::start(GatewayConfig {
            addr: "127.0.0.1:0".into(),
            backends: backends.to_vec(),
            ..GatewayConfig::default()
        })
        .expect("ephemeral gateway bind");
        let addr = gateway.addr().to_string();
        (Gw::InProcess(Some(gateway)), addr)
    }
}

/// Fleet-wide cache counters, summed over the backends' `/metrics`.
fn cache_totals(clients: &[ServeClient]) -> (u64, u64, u64) {
    let mut hits = 0;
    let mut misses = 0;
    let mut stores = 0;
    for client in clients {
        let cache = client
            .metrics()
            .expect("backend metrics")
            .cache
            .expect("backend runs cached");
        hits += cache.hits();
        misses += cache.misses;
        stores += cache.stores;
    }
    (hits, misses, stores)
}

fn gateway_metrics(client: &ServeClient) -> GatewayMetrics {
    let response = client
        .forward("GET", "/metrics", None)
        .expect("gateway metrics");
    let text = response.text().expect("metrics body");
    GatewayMetrics::from_json(&parse(&text).expect("metrics json")).expect("metrics decode")
}

/// The routing key the gateway derives for `spec` — resolving the spec
/// exactly as the gateway does, so the harness can reason about homes.
fn routing_key(spec: &JobSpec) -> String {
    spec.clone()
        .resolve()
        .expect("suite spec resolves")
        .cache_key()
        .to_string()
}

/// Ensures at least one spec re-homes onto `grown` when the fleet grows:
/// bumps the last client's seeds (past every seed the other clients use)
/// until one of its specs' keys ranks `grown` first. Deterministic — the
/// search walks a fixed seed sequence.
fn ensure_grown_coverage(specs_per_client: &mut [Vec<JobSpec>], all_addrs: &[String], grown: &str) {
    let names: Vec<&str> = all_addrs.iter().map(String::as_str).collect();
    let homes = |specs: &[Vec<JobSpec>]| {
        specs
            .iter()
            .flatten()
            .filter(|s| hash::rank(&names, &routing_key(s))[0] == grown)
            .count()
    };
    if homes(specs_per_client) > 0 {
        return;
    }
    let clients = specs_per_client.len() as u64;
    let last = specs_per_client.last_mut().expect("at least one client");
    let spec = last.last_mut().expect("at least one spec");
    for _ in 0..256 {
        // Stride past the per-client seed offsets so the bumped spec can
        // never collide with another client's copy of the same circuit.
        spec.sim.seed += clients + 1;
        if hash::rank(&names, &routing_key(spec))[0] == grown {
            return;
        }
    }
    panic!("no seed homing on the grown node within 256 tries");
}

/// Starts the fleet (N backends + 1 future node + gateway), runs the
/// cold / warm / peer-warm waves, verifies the cache and peering
/// accounting, and drains everything.
///
/// # Panics
///
/// Panics if any served job fails or any wave's verified accounting does
/// not hold (a wave that recomputes what should be cached, or a growth
/// wave whose fresh node misses) — the measurement would be meaningless,
/// so it refuses to report one.
pub fn measure_fleet(config: &FleetLoadConfig) -> FleetMeasurement {
    let names = serve_suite_names(config.fast);
    let clients = config.clients.max(1);
    let fleet_size = config.backends.max(1);
    let jobs_per_wave = (clients * names.len()) as u64;
    let queue = (jobs_per_wave as usize) * 2 + 16;

    // Spawn every node up front — the grown node too, so the spec set can
    // be fixed (and its growth coverage verified) before any wave runs.
    // The grown node idles outside the first fleet; it computes nothing.
    let (mut nodes, mut addrs): (Vec<Node>, Vec<String>) = (Vec::new(), Vec::new());
    for index in 0..fleet_size + 1 {
        let (node, addr) = start_backend(queue, config.processes, index);
        nodes.push(node);
        addrs.push(addr);
    }
    let fleet_addrs = addrs[..fleet_size].to_vec();
    let grown_addr = addrs[fleet_size].clone();
    let backend_clients: Vec<ServeClient> =
        addrs.iter().map(|a| ServeClient::new(a.clone())).collect();

    let mut specs_per_client: Vec<Vec<JobSpec>> =
        (0..clients).map(|c| client_specs(&names, c)).collect();
    ensure_grown_coverage(&mut specs_per_client, &addrs, &grown_addr);

    let (mut gw, gw_addr) = start_gateway(&fleet_addrs, config.processes);
    let gw_client = ServeClient::new(gw_addr.clone());

    // Cold: every job recomputes exactly once, on its home.
    let before = cache_totals(&backend_clients);
    let (cold_wall, cold_lat) = run_wave(&gw_addr, &specs_per_client);
    let cold = WaveStats::from_latencies(cold_wall, &cold_lat);
    let after_cold = cache_totals(&backend_clients);
    assert_eq!(
        after_cold.1 - before.1,
        jobs_per_wave,
        "cold wave must recompute every job exactly once"
    );

    // Warm: the same specs, answered entirely by the home caches.
    let mut warm: Option<WaveStats> = None;
    for _ in 0..config.warm_passes.max(1) {
        let (wall, lat) = run_wave(&gw_addr, &specs_per_client);
        let stats = WaveStats::from_latencies(wall, &lat);
        if warm.is_none_or(|best| stats.wall_ms < best.wall_ms) {
            warm = Some(stats);
        }
    }
    let warm = warm.expect("at least one warm pass");
    let after_warm = cache_totals(&backend_clients);
    let warm_requests = jobs_per_wave * config.warm_passes.max(1) as u64;
    assert_eq!(
        after_warm.0 - after_cold.0,
        warm_requests,
        "warm waves must be answered entirely from the fleet's caches"
    );
    assert_eq!(after_warm.1, after_cold.1, "warm waves must not recompute");

    // Peer-warm: grow the fleet by one node behind a second gateway. The
    // re-homed keys' outcomes already exist on the old homes; the growth
    // gateway peeks them over and the fresh node answers warm.
    let (mut gw2, gw2_addr) = start_gateway(&addrs, config.processes);
    let gw2_client = ServeClient::new(gw2_addr.clone());
    let (peer_wall, peer_lat) = run_wave(&gw2_addr, &specs_per_client);
    let peer_warm = WaveStats::from_latencies(peer_wall, &peer_lat);
    let after_peer = cache_totals(&backend_clients);
    assert_eq!(
        after_peer.1, after_warm.1,
        "the growth wave must not recompute anything — peering replaces recomputation"
    );
    let grown = backend_clients[fleet_size]
        .metrics()
        .expect("grown metrics")
        .cache
        .expect("grown runs cached");
    assert_eq!(grown.misses, 0, "the fresh node must never compute");
    assert!(
        grown.stores >= 1,
        "at least one key must re-home onto the fresh node (coverage was verified)"
    );
    assert!(
        grown.hits() >= grown.stores,
        "every peered entry must answer its request warm"
    );
    let peer_fills = gateway_metrics(&gw2_client).peer_fills;
    assert_eq!(
        peer_fills, grown.stores,
        "every fill the gateway performed must land on the fresh node"
    );

    gw2.stop(&gw2_client);
    gw.stop(&gw_client);
    for (node, client) in nodes.iter_mut().zip(&backend_clients) {
        node.stop(client);
    }

    FleetMeasurement {
        mode: if config.processes {
            "processes"
        } else {
            "in-process"
        },
        backends: fleet_size,
        clients,
        jobs_per_wave,
        cold,
        warm,
        peer_warm,
        warm_speedup: warm.jobs_per_s / cold.jobs_per_s,
        peer_fills,
        grown_stores: grown.stores,
        grown_hits: grown.hits(),
    }
}
