//! The perf-regression comparator behind `perf_snapshot --check`.
//!
//! Compares a freshly measured snapshot document against a committed
//! baseline (see `bench/baselines/`) and produces one report line per
//! compared metric. Every failing comparison is a single greppable line
//! of the form
//!
//! ```text
//! check: REGRESSED <scope>.<metric> now=<value> baseline=<value> ...
//! ```
//!
//! so CI logs answer "which metric, and by how much" with one `grep
//! REGRESSED`.
//!
//! Three metric families are gated:
//!
//! * **wall-clock** ([`TIME_METRICS`] per circuit, plus the serve/fleet
//!   latency+throughput pairs) — ratio-gated with a noise floor and the
//!   configured tolerance;
//! * **deterministic counts** ([`COUNT_METRICS`] per circuit, the
//!   connection-scale capability, and the reorder node counts) — exact:
//!   any growth beyond baseline fails regardless of tolerance;
//! * **the reorder win** — the `reorder` section's `shrink_pct` must stay
//!   at or above [`MIN_REORDER_SHRINK_PCT`]: sifting that stops beating
//!   the static order is a regression even if it got there "honestly";
//! * **the warm-restart contract** — the `warm_restart` section's
//!   deterministic facts (zero kernel builds after restart, byte-identical
//!   outcome, corruption quarantined and rebuilt) gate absolutely.

use domino_engine::json::Json;

/// Wall-clock metrics compared per circuit by the regression gate
/// (everything else in a snapshot row is informational or count-gated).
pub const TIME_METRICS: &[&str] = &[
    "flow_ms",
    "bdd_build_ms",
    "prob_eval_ms",
    "search_ms",
    "sim_ms",
];

/// Deterministic node-count metrics compared per circuit: bit-identical
/// across machines, so any growth at all is a regression (no tolerance).
pub const COUNT_METRICS: &[&str] = &["bdd_nodes", "manager_nodes"];

/// Minimum BDD node shrink (percent) the sifting pass must achieve on the
/// reorder-stress circuit for the `reorder` section to pass the gate.
pub const MIN_REORDER_SHRINK_PCT: f64 = 25.0;

/// Noise floor for the regression gate, ms: both sides of a comparison
/// are clamped up to this before the ratio is taken, so microsecond-scale
/// metrics (whose wall-clock jitter easily exceeds any tolerance) cannot
/// flake the gate, while a genuine blow-up past the floor still trips it.
const CHECK_FLOOR_MS: f64 = 0.05;

/// Noise floor for the serve latency metric: per-request wall time under
/// client concurrency sits around a millisecond and swings with scheduler
/// load, so sub-half-millisecond differences never trip the gate.
const SERVE_FLOOR_MS: f64 = 0.5;

/// Outcome of one snapshot-vs-baseline comparison: the per-metric report
/// lines plus the counts the exit code is derived from.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// One line per compared metric (plus skip notices), in input order.
    pub lines: Vec<String>,
    /// Metrics compared on both sides.
    pub compared: usize,
    /// Metrics that regressed beyond their gate.
    pub regressions: usize,
}

impl CheckReport {
    /// True when at least one metric was compared and none regressed.
    pub fn passed(&self) -> bool {
        self.compared > 0 && self.regressions == 0
    }

    fn note(&mut self, line: String) {
        self.lines.push(line);
    }

    /// Records a regression as the canonical one-line greppable failure.
    fn fail(
        &mut self,
        scope: &str,
        metric: &str,
        now: impl std::fmt::Display,
        base: impl std::fmt::Display,
        detail: &str,
    ) {
        self.regressions += 1;
        self.lines.push(format!(
            "check: REGRESSED {scope}.{metric} now={now} baseline={base} {detail}"
        ));
    }
}

/// Shared verdict logic for ratio-gated wall-clock comparisons (`ratio`
/// is oriented so that > 1 means worse).
fn ratio_verdict(ratio: f64, limit: f64) -> &'static str {
    if ratio > limit {
        "REGRESSED"
    } else if ratio < 1.0 / limit {
        "improved"
    } else {
        "ok"
    }
}

/// Compares `current` against `baseline` and reports every metric ratio;
/// regressions beyond the tolerance fail the report. Only metrics present
/// in both documents are compared, so baselines survive metric additions.
pub fn check_snapshot(current: &Json, baseline: &Json, tolerance_pct: f64) -> CheckReport {
    let mut report = CheckReport::default();
    let limit = 1.0 + tolerance_pct / 100.0;
    let find_row = |doc: &Json, name: &str| -> Option<Json> {
        doc.get("circuits")?
            .as_arr()?
            .iter()
            .find(|row| row.get("name").and_then(Json::as_str) == Some(name))
            .cloned()
    };

    let current_rows = current
        .get("circuits")
        .and_then(Json::as_arr)
        .expect("snapshot has circuits");
    for row in current_rows {
        let name = row.get("name").and_then(Json::as_str).expect("row name");
        let Some(base_row) = find_row(baseline, name) else {
            report.note(format!("check: {name}: not in baseline, skipped"));
            continue;
        };
        for &metric in TIME_METRICS {
            let (Some(now), Some(base)) = (
                row.get(metric).and_then(Json::as_f64),
                base_row.get(metric).and_then(Json::as_f64),
            ) else {
                continue; // metric absent on one side (older baseline)
            };
            if base <= 0.0 {
                continue;
            }
            report.compared += 1;
            let ratio = now.max(CHECK_FLOOR_MS) / base.max(CHECK_FLOOR_MS);
            if ratio > limit {
                report.fail(
                    name,
                    metric,
                    format!("{now:.3}ms"),
                    format!("{base:.3}ms"),
                    &format!("({ratio:.2}x > {limit:.2}x allowed)"),
                );
            } else {
                let verdict = ratio_verdict(ratio, limit);
                report.note(format!(
                    "check: {name:<11} {metric:<13} {now:>9.3} ms vs {base:>9.3} ms  \
                     ({ratio:>5.2}x)  {verdict}"
                ));
            }
        }
        // Node counts are bit-identical across machines and runs, so the
        // gate is exact: any growth is a regression, no tolerance applies.
        for &metric in COUNT_METRICS {
            let (Some(now), Some(base)) = (
                row.get(metric).and_then(Json::as_u64),
                base_row.get(metric).and_then(Json::as_u64),
            ) else {
                continue;
            };
            report.compared += 1;
            if now > base {
                report.fail(name, metric, now, base, "(deterministic count grew)");
            } else {
                let verdict = if now < base { "improved" } else { "ok" };
                report.note(format!(
                    "check: {name:<11} {metric:<13} {now:>9} vs {base:>9}  {verdict}"
                ));
            }
        }
    }

    // Service metrics: a warm latency (lower is better) and a throughput
    // (higher is better) per section — `serve` is the single dominod, and
    // `fleet` the warm wave routed through the dominogw gateway. All are
    // wall-clock under client concurrency, which jitters more than the
    // kernel minima above, so they get twice the tolerance and a larger
    // floor. Sections absent from the baseline are skipped, so baselines
    // predating the fleet still gate what they know.
    let serve_limit = 1.0 + 2.0 * tolerance_pct / 100.0;
    for (section, latency_metric) in [("serve", "serve_ms"), ("fleet", "fleet_ms")] {
        let (Some(now), Some(base)) = (current.get(section), baseline.get(section)) else {
            continue;
        };
        let pair = |metric: &str| Some((now.get(metric)?.as_f64()?, base.get(metric)?.as_f64()?));
        if let Some((now_ms, base_ms)) = pair(latency_metric) {
            report.compared += 1;
            let ratio = now_ms.max(SERVE_FLOOR_MS) / base_ms.max(SERVE_FLOOR_MS);
            if ratio > serve_limit {
                report.fail(
                    section,
                    latency_metric,
                    format!("{now_ms:.3}ms"),
                    format!("{base_ms:.3}ms"),
                    &format!("({ratio:.2}x > {serve_limit:.2}x allowed)"),
                );
            } else {
                let verdict = ratio_verdict(ratio, serve_limit);
                report.note(format!(
                    "check: {section:<11} {latency_metric:<13} {now_ms:>9.3} ms vs \
                     {base_ms:>9.3} ms  ({ratio:>5.2}x)  {verdict}"
                ));
            }
        }
        if let Some((now_tp, base_tp)) = pair("jobs_per_s") {
            if base_tp > 0.0 && now_tp > 0.0 {
                report.compared += 1;
                // Compared through per-job wall time with the same noise
                // floor as the latency metric: throughput is the inverse
                // of the same wall clock, so without the floor a
                // sub-floor latency wiggle the latency clamp absorbs
                // would still trip the gate here as a throughput ratio.
                let ratio =
                    (1e3 / now_tp).max(SERVE_FLOOR_MS) / (1e3 / base_tp).max(SERVE_FLOOR_MS);
                if ratio > serve_limit {
                    report.fail(
                        section,
                        "jobs_per_s",
                        format!("{now_tp:.0}/s"),
                        format!("{base_tp:.0}/s"),
                        &format!("({ratio:.2}x slower > {serve_limit:.2}x allowed)"),
                    );
                } else {
                    let verdict = ratio_verdict(ratio, serve_limit);
                    report.note(format!(
                        "check: {section:<11} jobs_per_s    {now_tp:>9.0} /s vs {base_tp:>9.0} /s  \
                         ({:>5.2}x)  {verdict}",
                        now_tp / base_tp
                    ));
                }
            }
        }
    }

    // The connection-scale section gates a deterministic capability, not
    // a wall clock: the serve layer must still hold at least as many
    // concurrent kept-alive connections as the baseline records (the
    // harness itself already verified byte-identity and the thread
    // bound, panicking otherwise).
    if let (Some(now), Some(base)) = (current.get("serve_scale"), baseline.get("serve_scale")) {
        if let (Some(now_c), Some(base_c)) = (
            now.get("connections").and_then(Json::as_u64),
            base.get("connections").and_then(Json::as_u64),
        ) {
            report.compared += 1;
            if now_c < base_c {
                report.fail(
                    "serve_scale",
                    "connections",
                    now_c,
                    base_c,
                    "(capability shrank)",
                );
            } else {
                report.note(format!(
                    "check: serve_scale connections   {now_c:>9} held vs {base_c:>9} held  ok"
                ));
            }
        }
    }

    // The reorder section gates the sifting win itself, all deterministic:
    // the shrink must stay at or above the floor, and the sifted node
    // count must not grow past the baseline's.
    if let (Some(now), Some(base)) = (current.get("reorder"), baseline.get("reorder")) {
        if let Some(shrink) = now.get("shrink_pct").and_then(Json::as_f64) {
            report.compared += 1;
            if shrink < MIN_REORDER_SHRINK_PCT {
                report.fail(
                    "reorder",
                    "shrink_pct",
                    format!("{shrink:.1}%"),
                    format!("{MIN_REORDER_SHRINK_PCT:.1}% floor"),
                    "(sifting stopped beating the static order)",
                );
            } else {
                report.note(format!(
                    "check: reorder     shrink_pct    {shrink:>8.1} % vs {MIN_REORDER_SHRINK_PCT:>8.1} % floor  ok"
                ));
            }
        }
        if let (Some(now_n), Some(base_n)) = (
            now.get("nodes_sifted").and_then(Json::as_u64),
            base.get("nodes_sifted").and_then(Json::as_u64),
        ) {
            report.compared += 1;
            if now_n > base_n {
                report.fail(
                    "reorder",
                    "nodes_sifted",
                    now_n,
                    base_n,
                    "(deterministic count grew)",
                );
            } else {
                let verdict = if now_n < base_n { "improved" } else { "ok" };
                report.note(format!(
                    "check: reorder     nodes_sifted  {now_n:>9} vs {base_n:>9}  {verdict}"
                ));
            }
        }
    }

    // The warm-restart section gates the persistence contract itself,
    // all deterministic: a restarted process must answer from the
    // snapshot with zero kernel rebuilds, byte-identical to the cold
    // run, and a corrupted snapshot must be quarantined and rebuilt —
    // never served. The baseline only has to carry the section; the
    // contract values are absolute, not relative.
    if let (Some(now), Some(_)) = (current.get("warm_restart"), baseline.get("warm_restart")) {
        if let Some(builds) = now.get("restart_kernel_builds").and_then(Json::as_u64) {
            report.compared += 1;
            if builds > 0 {
                report.fail(
                    "warm_restart",
                    "restart_kernel_builds",
                    builds,
                    0,
                    "(restarted process recomputed its kernels)",
                );
            } else {
                report.note(
                    "check: warm_restart restart_kernel_builds       0 vs       0 floor  ok"
                        .to_string(),
                );
            }
        }
        for (metric, detail) in [
            (
                "restart_identical",
                "(snapshot-served outcome diverged from the cold run)",
            ),
            (
                "corrupt_recovered",
                "(corrupted snapshot was not quarantined and rebuilt)",
            ),
        ] {
            if let Some(ok) = now.get(metric).and_then(Json::as_bool) {
                report.compared += 1;
                if ok {
                    report.note(format!("check: warm_restart {metric:<13} true  ok"));
                } else {
                    report.fail("warm_restart", metric, false, true, detail);
                }
            }
        }
    }

    if report.compared == 0 {
        report.note("check: no comparable metrics between snapshot and baseline".to_string());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_engine::json::parse;

    fn doc(circuit_fields: &str, extra_sections: &str) -> Json {
        let text =
            format!(r#"{{"circuits": [{{"name": "frg1", {circuit_fields}}}]{extra_sections}}}"#);
        parse(&text).expect("test doc parses")
    }

    #[test]
    fn identical_snapshots_pass() {
        let a = doc(r#""flow_ms": 1.0, "bdd_nodes": 50"#, "");
        let report = check_snapshot(&a, &a, 25.0);
        assert!(report.passed(), "{:?}", report.lines);
        assert_eq!(report.compared, 2);
    }

    #[test]
    fn time_regression_is_one_greppable_line_with_both_values() {
        let base = doc(r#""flow_ms": 1.0"#, "");
        let now = doc(r#""flow_ms": 2.0"#, "");
        let report = check_snapshot(&now, &base, 25.0);
        assert_eq!(report.regressions, 1);
        assert!(!report.passed());
        let line = report
            .lines
            .iter()
            .find(|l| l.contains("REGRESSED"))
            .expect("a REGRESSED line");
        // One line carries the metric and both values.
        assert!(line.contains("frg1.flow_ms"), "{line}");
        assert!(line.contains("now=2.000ms"), "{line}");
        assert!(line.contains("baseline=1.000ms"), "{line}");
    }

    #[test]
    fn time_improvement_and_tolerance_band_pass() {
        let base = doc(r#""flow_ms": 1.0"#, "");
        for (now_ms, expect_word) in [(0.5, "improved"), (1.1, "ok")] {
            let now = doc(&format!(r#""flow_ms": {now_ms}"#), "");
            let report = check_snapshot(&now, &base, 25.0);
            assert!(report.passed(), "{:?}", report.lines);
            assert!(
                report.lines.iter().any(|l| l.contains(expect_word)),
                "{:?}",
                report.lines
            );
        }
    }

    #[test]
    fn sub_floor_jitter_never_trips_the_gate() {
        // 0.001 ms vs 0.04 ms is a 40x ratio but both sit under the noise
        // floor, so the clamp holds the ratio at 1.
        let base = doc(r#""bdd_build_ms": 0.001"#, "");
        let now = doc(r#""bdd_build_ms": 0.04"#, "");
        assert!(check_snapshot(&now, &base, 25.0).passed());
    }

    #[test]
    fn node_count_growth_fails_without_tolerance() {
        let base = doc(r#""bdd_nodes": 100"#, "");
        // +10% is inside the 25% time tolerance, but counts gate exactly.
        let now = doc(r#""bdd_nodes": 110"#, "");
        let report = check_snapshot(&now, &base, 25.0);
        assert_eq!(report.regressions, 1);
        let line = &report.lines[0];
        assert!(line.contains("REGRESSED frg1.bdd_nodes"), "{line}");
        assert!(line.contains("now=110"), "{line}");
        assert!(line.contains("baseline=100"), "{line}");
        // Shrinking is an improvement, not a regression.
        let smaller = doc(r#""bdd_nodes": 90"#, "");
        assert!(check_snapshot(&smaller, &base, 25.0).passed());
    }

    #[test]
    fn missing_metrics_are_skipped_not_failed() {
        let base = doc(r#""flow_ms": 1.0"#, "");
        let now = doc(r#""flow_ms": 1.0, "bdd_nodes": 50"#, "");
        let report = check_snapshot(&now, &base, 25.0);
        assert!(report.passed());
        assert_eq!(report.compared, 1, "{:?}", report.lines);
    }

    #[test]
    fn reorder_shrink_below_floor_fails() {
        let section = r#", "reorder": {"shrink_pct": 10.0, "nodes_sifted": 30}"#;
        let good = r#", "reorder": {"shrink_pct": 80.0, "nodes_sifted": 30}"#;
        let base = doc(r#""flow_ms": 1.0"#, good);
        let now = doc(r#""flow_ms": 1.0"#, section);
        let report = check_snapshot(&now, &base, 25.0);
        assert_eq!(report.regressions, 1);
        let line = report
            .lines
            .iter()
            .find(|l| l.contains("REGRESSED"))
            .unwrap();
        assert!(line.contains("reorder.shrink_pct"), "{line}");
        assert!(line.contains("now=10.0%"), "{line}");
        let ok = check_snapshot(&base, &base, 25.0);
        assert!(ok.passed(), "{:?}", ok.lines);
    }

    #[test]
    fn reorder_sifted_node_growth_fails() {
        let base = doc(
            r#""flow_ms": 1.0"#,
            r#", "reorder": {"shrink_pct": 80.0, "nodes_sifted": 30}"#,
        );
        let now = doc(
            r#""flow_ms": 1.0"#,
            r#", "reorder": {"shrink_pct": 80.0, "nodes_sifted": 31}"#,
        );
        let report = check_snapshot(&now, &base, 25.0);
        assert_eq!(report.regressions, 1);
        assert!(report
            .lines
            .iter()
            .any(|l| l.contains("REGRESSED reorder.nodes_sifted")));
    }

    #[test]
    fn warm_restart_contract_gates_exactly() {
        let good = r#", "warm_restart": {"restart_kernel_builds": 0,
            "restart_identical": true, "corrupt_recovered": true}"#;
        let base = doc(r#""flow_ms": 1.0"#, good);
        let ok = check_snapshot(&base, &base, 25.0);
        assert!(ok.passed(), "{:?}", ok.lines);

        for (section, metric) in [
            (
                r#", "warm_restart": {"restart_kernel_builds": 1,
                    "restart_identical": true, "corrupt_recovered": true}"#,
                "restart_kernel_builds",
            ),
            (
                r#", "warm_restart": {"restart_kernel_builds": 0,
                    "restart_identical": false, "corrupt_recovered": true}"#,
                "restart_identical",
            ),
            (
                r#", "warm_restart": {"restart_kernel_builds": 0,
                    "restart_identical": true, "corrupt_recovered": false}"#,
                "corrupt_recovered",
            ),
        ] {
            let now = doc(r#""flow_ms": 1.0"#, section);
            let report = check_snapshot(&now, &base, 25.0);
            assert_eq!(report.regressions, 1, "{:?}", report.lines);
            assert!(
                report
                    .lines
                    .iter()
                    .any(|l| l.contains(&format!("REGRESSED warm_restart.{metric}"))),
                "{:?}",
                report.lines
            );
        }
    }

    #[test]
    fn warm_restart_absent_from_baseline_is_skipped() {
        let base = doc(r#""flow_ms": 1.0"#, "");
        let now = doc(
            r#""flow_ms": 1.0"#,
            r#", "warm_restart": {"restart_kernel_builds": 7,
                "restart_identical": false, "corrupt_recovered": false}"#,
        );
        // Pre-persistence baselines do not gate the new section.
        assert!(check_snapshot(&now, &base, 25.0).passed());
    }

    #[test]
    fn empty_comparison_does_not_pass() {
        let now = doc(r#""flow_ms": 1.0"#, "");
        let base = parse(r#"{"circuits": []}"#).unwrap();
        let report = check_snapshot(&now, &base, 25.0);
        assert!(!report.passed());
        assert_eq!(report.compared, 0);
    }
}
