//! Shared load-measurement harness for the `dominod` service: N
//! concurrent clients driving an in-process server over the public suite,
//! cold cache vs warm cache.
//!
//! Used by two binaries — `serve_bench` (the standalone load generator)
//! and `perf_snapshot` (whose `serve` section feeds the CI regression
//! gate) — so both always measure the same thing:
//!
//! * **cold wave** — every client submits its own seed-varied copy of the
//!   suite (distinct content addresses), so every job recomputes;
//! * **warm waves** — the same specs again: every request must be
//!   answered by the shared [`ResultCache`] without recomputation, which
//!   this harness *verifies* (hit-counter delta == request count) rather
//!   than assumes.
//!
//! Clients use the synchronous `POST /jobs?wait=1` path — a dedicated
//! connection per job, since a blocking request may pin a connection for
//! as long as the job runs — so the warm numbers measure the true service
//! floor (accept + parse + cache hit + respond) and the cold/warm ratio
//! is an honest "what does the resident cache buy" statement.
//!
//! Two extra warm arms isolate what HTTP keep-alive buys on the
//! non-blocking wire: the same warm requests once over kept-alive
//! (pooled) connections and once with a fresh connection per request —
//! same bytes, same cache hits, only the connection discipline differs.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use domino_engine::{JobSpec, ResultCache};
use domino_serve::{ClientError, ServeClient, ServeConfig, Server};

/// Load-harness knobs.
#[derive(Debug, Clone)]
pub struct ServeLoadConfig {
    /// Restrict to the two cheapest circuits (the CI smoke mode).
    pub fast: bool,
    /// Concurrent client threads.
    pub clients: usize,
    /// Warm waves to run; the best (minimum-wall) wave is reported, the
    /// cache accounting is verified across all of them.
    pub warm_passes: usize,
}

impl Default for ServeLoadConfig {
    fn default() -> Self {
        ServeLoadConfig {
            fast: false,
            clients: 4,
            warm_passes: 3,
        }
    }
}

/// One wave's aggregate numbers.
#[derive(Debug, Clone, Copy)]
pub struct WaveStats {
    /// Requests in the wave.
    pub jobs: u64,
    /// Wall-clock for the whole wave, ms.
    pub wall_ms: f64,
    /// Throughput over the wave, jobs per second.
    pub jobs_per_s: f64,
    /// Mean per-request latency (submit → outcome bytes), ms.
    pub mean_ms: f64,
}

impl WaveStats {
    pub(crate) fn from_latencies(wall_ms: f64, latencies_ms: &[f64]) -> WaveStats {
        let jobs = latencies_ms.len() as u64;
        WaveStats {
            jobs,
            wall_ms,
            jobs_per_s: if wall_ms > 0.0 {
                jobs as f64 / (wall_ms / 1e3)
            } else {
                f64::INFINITY
            },
            mean_ms: latencies_ms.iter().sum::<f64>() / jobs.max(1) as f64,
        }
    }
}

/// The cold-vs-warm measurement, plus the verified cache accounting.
#[derive(Debug, Clone)]
pub struct ServeMeasurement {
    /// Client threads used.
    pub clients: usize,
    /// Server worker threads (resolved).
    pub workers: u64,
    /// Requests per wave (`clients × suite size`).
    pub jobs_per_wave: u64,
    /// The cold (all-recompute) wave.
    pub cold: WaveStats,
    /// The best warm (all-cache-hit) wave.
    pub warm: WaveStats,
    /// `warm.jobs_per_s / cold.jobs_per_s`.
    pub warm_speedup: f64,
    /// Cache hits observed across every warm wave (verified to equal
    /// `warm_requests`).
    pub warm_hits: u64,
    /// Warm requests issued across every warm wave.
    pub warm_requests: u64,
    /// Best warm submit wave over kept-alive (pooled) connections.
    pub keepalive: WaveStats,
    /// The same warm submit wave with a fresh connection per request.
    pub per_connection: WaveStats,
    /// `keepalive.jobs_per_s / per_connection.jobs_per_s` — what the
    /// persistent-connection wire buys at the service floor.
    pub keepalive_speedup: f64,
    /// Requests answered over a reused connection in the best kept-alive
    /// wave (verified: every request but each client's first).
    pub connection_reuses: u64,
}

/// Suite rows the harness drives (`--fast` keeps the two cheapest).
pub fn serve_suite_names(fast: bool) -> Vec<&'static str> {
    domino_workloads::public_row_names()
        .into_iter()
        .filter(|name| !fast || ["frg1", "apex7"].contains(name))
        .collect()
}

pub(crate) fn client_specs(names: &[&'static str], client: usize) -> Vec<JobSpec> {
    names
        .iter()
        .map(|name| {
            let mut spec = JobSpec::suite(name);
            // A per-client seed gives each client distinct content
            // addresses, so the cold wave is cold for *every* request
            // (identical specs would warm each other mid-wave).
            spec.sim.seed += client as u64;
            spec
        })
        .collect()
}

/// Runs one wave: every client thread submits its specs synchronously.
/// Returns (wall_ms, per-request latencies).
pub(crate) fn run_wave(addr: &str, specs_per_client: &[Vec<JobSpec>]) -> (f64, Vec<f64>) {
    let wave_start = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = specs_per_client
            .iter()
            .map(|specs| {
                scope.spawn(move || {
                    let client = ServeClient::new(addr.to_string());
                    specs
                        .iter()
                        .map(|spec| {
                            let start = Instant::now();
                            client.run_sync(spec).expect("served job completes");
                            start.elapsed().as_secs_f64() * 1e3
                        })
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().expect("client thread"));
        }
    });
    (wave_start.elapsed().as_secs_f64() * 1e3, latencies)
}

/// One warm *submit* wave (non-blocking `POST /jobs`, answered by the
/// cache's probe fast path): every client issues its specs on one client
/// handle, pooled (`reuse`) or connection-per-request. Returns
/// (wall_ms, latencies, connections reused).
fn run_submit_wave(
    addr: &str,
    specs_per_client: &[Vec<JobSpec>],
    reuse: bool,
) -> (f64, Vec<f64>, u64) {
    let wave_start = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    let mut reuses = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = specs_per_client
            .iter()
            .map(|specs| {
                scope.spawn(move || {
                    let client = if reuse {
                        ServeClient::new(addr.to_string())
                    } else {
                        ServeClient::without_keep_alive(addr.to_string())
                    };
                    let lat: Vec<f64> = specs
                        .iter()
                        .map(|spec| {
                            let start = Instant::now();
                            client.submit(spec).expect("warm submit succeeds");
                            start.elapsed().as_secs_f64() * 1e3
                        })
                        .collect();
                    (lat, client.connection_reuses())
                })
            })
            .collect();
        for handle in handles {
            let (lat, r) = handle.join().expect("client thread");
            latencies.extend(lat);
            reuses += r;
        }
    });
    (wave_start.elapsed().as_secs_f64() * 1e3, latencies, reuses)
}

/// Starts an in-process server, runs the cold wave and `warm_passes` warm
/// waves, verifies the warm-path cache accounting, and shuts down.
///
/// # Panics
///
/// Panics if any served job fails, or if the warm waves are not answered
/// entirely from the cache (hit delta != request count) — the measurement
/// would be meaningless, so it refuses to report one.
pub fn measure_serve(config: &ServeLoadConfig) -> ServeMeasurement {
    let names = serve_suite_names(config.fast);
    let clients = config.clients.max(1);
    let specs_per_client: Vec<Vec<JobSpec>> =
        (0..clients).map(|c| client_specs(&names, c)).collect();
    let jobs_per_wave = (clients * names.len()) as u64;

    let cache = Arc::new(ResultCache::in_memory());
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 0,
        // The harness measures service latency, not admission control:
        // size the queue so backpressure never triggers.
        queue_capacity: (jobs_per_wave as usize) * 2 + 16,
        cache: Some(Arc::clone(&cache)),
        ..ServeConfig::default()
    })
    .expect("ephemeral bind");
    let addr = server.addr().to_string();

    let (cold_wall, cold_lat) = run_wave(&addr, &specs_per_client);
    let cold = WaveStats::from_latencies(cold_wall, &cold_lat);
    let after_cold = cache.stats();

    let mut warm: Option<WaveStats> = None;
    for _ in 0..config.warm_passes.max(1) {
        let (wall, lat) = run_wave(&addr, &specs_per_client);
        let stats = WaveStats::from_latencies(wall, &lat);
        if warm.is_none_or(|best| stats.wall_ms < best.wall_ms) {
            warm = Some(stats);
        }
    }
    let warm = warm.expect("at least one warm pass");
    let after_warm = cache.stats();

    let warm_requests = jobs_per_wave * config.warm_passes.max(1) as u64;
    let warm_hits = after_warm.hits() - after_cold.hits();
    assert_eq!(
        warm_hits, warm_requests,
        "warm waves must be answered entirely from the cache"
    );
    assert_eq!(
        after_warm.misses, after_cold.misses,
        "warm waves must not recompute"
    );

    // The keep-alive arms: identical warm submits, only the connection
    // discipline differs. Run after the warm accounting above so the
    // probe fast path's extra cache hits cannot disturb it.
    let mut per_connection: Option<WaveStats> = None;
    let mut keepalive: Option<(WaveStats, u64)> = None;
    for _ in 0..config.warm_passes.max(1) {
        let (wall, lat, reuses) = run_submit_wave(&addr, &specs_per_client, false);
        assert_eq!(reuses, 0, "connection-per-request arm must never reuse");
        let stats = WaveStats::from_latencies(wall, &lat);
        if per_connection.is_none_or(|best| stats.wall_ms < best.wall_ms) {
            per_connection = Some(stats);
        }
        let (wall, lat, reuses) = run_submit_wave(&addr, &specs_per_client, true);
        assert_eq!(
            reuses,
            jobs_per_wave - clients as u64,
            "kept-alive arm must reuse every request but each client's first"
        );
        let stats = WaveStats::from_latencies(wall, &lat);
        if keepalive
            .as_ref()
            .is_none_or(|(best, _)| stats.wall_ms < best.wall_ms)
        {
            keepalive = Some((stats, reuses));
        }
    }
    let per_connection = per_connection.expect("at least one per-connection wave");
    let (keepalive, connection_reuses) = keepalive.expect("at least one kept-alive wave");

    let metrics = server.metrics();
    assert_eq!(metrics.failed, 0, "no served job may fail");
    let workers = metrics.workers;
    server.shutdown();

    ServeMeasurement {
        clients,
        workers,
        jobs_per_wave,
        cold,
        warm,
        warm_speedup: warm.jobs_per_s / cold.jobs_per_s,
        warm_hits,
        warm_requests,
        keepalive,
        per_connection,
        keepalive_speedup: keepalive.jobs_per_s / per_connection.jobs_per_s,
        connection_reuses,
    }
}

/// Connection-scale knobs: how many kept-alive connections to hold open
/// concurrently, and how many driver threads open them.
#[derive(Debug, Clone)]
pub struct ConnectionScaleConfig {
    /// Concurrent kept-alive connections to hold open.
    pub connections: usize,
    /// Driver threads opening them (each holds `connections / drivers`).
    pub drivers: usize,
}

impl Default for ConnectionScaleConfig {
    fn default() -> Self {
        ConnectionScaleConfig {
            connections: 2048,
            drivers: 8,
        }
    }
}

/// The connection-scale measurement: N concurrent kept-alive
/// connections against one reactor-fronted server, every response
/// byte-verified, the server's thread count verified bounded.
#[derive(Debug, Clone, Copy)]
pub struct ConnectionScaleMeasurement {
    /// Connections actually held open (clamped to the fd limit).
    pub connections: u64,
    /// Driver threads used.
    pub drivers: usize,
    /// Wall-clock to open every connection and serve a warm submit +
    /// result pair on each, ms.
    pub open_ms: f64,
    /// Warm requests per second during the open sweep.
    pub requests_per_s: f64,
    /// The server reactor's `open_connections` counter observed while
    /// every connection was held (at least `connections`).
    pub open_connections: u64,
    /// Process thread count observed while every connection was held.
    pub process_threads: u64,
    /// The bound `process_threads` was verified against — independent of
    /// the connection count.
    pub thread_bound: u64,
}

/// The process's current thread count, from `/proc/self/status`.
fn process_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))?
                .split_whitespace()
                .nth(1)?
                .parse()
                .ok()
        })
        .expect("/proc/self/status has a Threads line")
}

/// Holds `config.connections` kept-alive connections open against one
/// in-process server, serving a warm `POST /jobs` + `GET result` pair on
/// each (the poolable wire path — a `?wait=1` request would get a
/// dedicated, never-pooled connection by design) and byte-comparing
/// every outcome, then — with all connections held — verifies the
/// server's reactor counter sees them all and the process thread count
/// stays bounded (connections cost sockets, not threads).
///
/// The open-file soft limit is raised as far as the hard limit allows;
/// if it still cannot cover the requested count, the count is clamped
/// (and reported via the returned `connections`).
///
/// # Panics
///
/// Panics on a byte-mismatched response, a reactor counter below the
/// held connection count, or a thread count above the bound.
pub fn measure_connection_scale(config: &ConnectionScaleConfig) -> ConnectionScaleMeasurement {
    let drivers = config.drivers.max(1);
    // Client + server side of every connection live in this process, plus
    // headroom for the suite, the cache and the control connection.
    let wanted_fds = (config.connections as u64) * 2 + 256;
    let fd_limit =
        domino_reactor::raise_open_file_limit(wanted_fds).expect("query/raise the open-file limit");
    let connections = if fd_limit < wanted_fds {
        let usable = ((fd_limit.saturating_sub(256)) / 2) as usize;
        eprintln!(
            "serve_probe: open-file limit {fd_limit} clamps the connection count \
             {} -> {usable}",
            config.connections
        );
        usable.max(1)
    } else {
        config.connections.max(1)
    };

    let cache = Arc::new(ResultCache::in_memory());
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 64,
        cache: Some(Arc::clone(&cache)),
        max_connections: connections + 64,
        ..ServeConfig::default()
    })
    .expect("ephemeral bind");
    let addr = server.addr().to_string();

    // One spec, warmed once: every connection's request must then be a
    // cache hit answered inline, and every response byte-identical.
    let spec = JobSpec::suite("frg1");
    let expected = ServeClient::new(addr.clone())
        .run_sync(&spec)
        .expect("warming job completes");

    let held = Barrier::new(drivers + 1);
    let release = Barrier::new(drivers + 1);
    let per_driver: Vec<usize> = (0..drivers)
        .map(|d| connections / drivers + usize::from(d < connections % drivers))
        .collect();

    let sweep_start = Instant::now();
    let mut open_ms = 0.0;
    let mut observed_open = 0u64;
    let mut observed_threads = 0u64;
    // Reactor + handler pool + pump + worker + main are all there is on
    // the server side; the rest is this harness's own drivers. The slack
    // absorbs runtime housekeeping threads without ever being compatible
    // with thread-per-connection at four-digit connection counts.
    let thread_bound = (drivers as u64) + 32;
    std::thread::scope(|scope| {
        for &quota in &per_driver {
            let (addr, spec, expected) = (&addr, &spec, &expected);
            let (held, release) = (&held, &release);
            scope.spawn(move || {
                let mut held_clients = Vec::with_capacity(quota);
                for _ in 0..quota {
                    // submit + result fetch ride the client's pooled
                    // keep-alive connection (`?wait=1` would get a
                    // dedicated, never-pooled connection by design), so
                    // dropping neither request leaves the connection open
                    // and counted by the reactor while the client is held.
                    let client = ServeClient::new(addr.clone());
                    let admit = client.submit(spec).expect("warm submit admits");
                    let outcome = loop {
                        match client.result(admit.id, false) {
                            Ok(text) => break text,
                            // 409: admitted but not yet terminal (the
                            // cache answers warm submissions inline, so
                            // this is a startup race at most).
                            Err(ClientError::Api { status: 409, .. }) => {
                                std::thread::sleep(std::time::Duration::from_millis(1));
                            }
                            Err(e) => panic!("warm result fetch: {e}"),
                        }
                    };
                    assert_eq!(
                        outcome, *expected,
                        "every connection must see byte-identical outcome bytes"
                    );
                    held_clients.push(client);
                }
                held.wait();
                // Connections stay pooled (and open) in `held_clients`
                // until the main thread has observed the peak.
                release.wait();
                drop(held_clients);
            });
        }
        held.wait();
        open_ms = sweep_start.elapsed().as_secs_f64() * 1e3;
        let metrics = server.metrics();
        let reactor = metrics.reactor.expect("reactor counters present");
        observed_open = reactor.open_connections;
        observed_threads = process_threads();
        release.wait();
    });

    assert!(
        observed_open >= connections as u64,
        "reactor must see every held connection ({observed_open} < {connections})"
    );
    assert!(
        observed_threads <= thread_bound,
        "thread count must stay bounded: {observed_threads} threads for \
         {connections} connections (bound {thread_bound})"
    );
    server.shutdown();

    ConnectionScaleMeasurement {
        connections: connections as u64,
        drivers,
        open_ms,
        requests_per_s: if open_ms > 0.0 {
            (connections * 2) as f64 / (open_ms / 1e3)
        } else {
            f64::INFINITY
        },
        open_connections: observed_open,
        process_threads: observed_threads,
        thread_bound,
    }
}
