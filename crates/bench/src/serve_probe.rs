//! Shared load-measurement harness for the `dominod` service: N
//! concurrent clients driving an in-process server over the public suite,
//! cold cache vs warm cache.
//!
//! Used by two binaries — `serve_bench` (the standalone load generator)
//! and `perf_snapshot` (whose `serve` section feeds the CI regression
//! gate) — so both always measure the same thing:
//!
//! * **cold wave** — every client submits its own seed-varied copy of the
//!   suite (distinct content addresses), so every job recomputes;
//! * **warm waves** — the same specs again: every request must be
//!   answered by the shared [`ResultCache`] without recomputation, which
//!   this harness *verifies* (hit-counter delta == request count) rather
//!   than assumes.
//!
//! Clients use the synchronous `POST /jobs?wait=1` path: one connection
//! per job, so the warm numbers measure the true service floor (accept +
//! parse + cache hit + respond) and the cold/warm ratio is an honest
//! "what does the resident cache buy" statement.

use std::sync::Arc;
use std::time::Instant;

use domino_engine::{JobSpec, ResultCache};
use domino_serve::{ServeClient, ServeConfig, Server};

/// Load-harness knobs.
#[derive(Debug, Clone)]
pub struct ServeLoadConfig {
    /// Restrict to the two cheapest circuits (the CI smoke mode).
    pub fast: bool,
    /// Concurrent client threads.
    pub clients: usize,
    /// Warm waves to run; the best (minimum-wall) wave is reported, the
    /// cache accounting is verified across all of them.
    pub warm_passes: usize,
}

impl Default for ServeLoadConfig {
    fn default() -> Self {
        ServeLoadConfig {
            fast: false,
            clients: 4,
            warm_passes: 3,
        }
    }
}

/// One wave's aggregate numbers.
#[derive(Debug, Clone, Copy)]
pub struct WaveStats {
    /// Requests in the wave.
    pub jobs: u64,
    /// Wall-clock for the whole wave, ms.
    pub wall_ms: f64,
    /// Throughput over the wave, jobs per second.
    pub jobs_per_s: f64,
    /// Mean per-request latency (submit → outcome bytes), ms.
    pub mean_ms: f64,
}

impl WaveStats {
    fn from_latencies(wall_ms: f64, latencies_ms: &[f64]) -> WaveStats {
        let jobs = latencies_ms.len() as u64;
        WaveStats {
            jobs,
            wall_ms,
            jobs_per_s: if wall_ms > 0.0 {
                jobs as f64 / (wall_ms / 1e3)
            } else {
                f64::INFINITY
            },
            mean_ms: latencies_ms.iter().sum::<f64>() / jobs.max(1) as f64,
        }
    }
}

/// The cold-vs-warm measurement, plus the verified cache accounting.
#[derive(Debug, Clone)]
pub struct ServeMeasurement {
    /// Client threads used.
    pub clients: usize,
    /// Server worker threads (resolved).
    pub workers: u64,
    /// Requests per wave (`clients × suite size`).
    pub jobs_per_wave: u64,
    /// The cold (all-recompute) wave.
    pub cold: WaveStats,
    /// The best warm (all-cache-hit) wave.
    pub warm: WaveStats,
    /// `warm.jobs_per_s / cold.jobs_per_s`.
    pub warm_speedup: f64,
    /// Cache hits observed across every warm wave (verified to equal
    /// `warm_requests`).
    pub warm_hits: u64,
    /// Warm requests issued across every warm wave.
    pub warm_requests: u64,
}

/// Suite rows the harness drives (`--fast` keeps the two cheapest).
pub fn serve_suite_names(fast: bool) -> Vec<&'static str> {
    domino_workloads::public_row_names()
        .into_iter()
        .filter(|name| !fast || ["frg1", "apex7"].contains(name))
        .collect()
}

fn client_specs(names: &[&'static str], client: usize) -> Vec<JobSpec> {
    names
        .iter()
        .map(|name| {
            let mut spec = JobSpec::suite(name);
            // A per-client seed gives each client distinct content
            // addresses, so the cold wave is cold for *every* request
            // (identical specs would warm each other mid-wave).
            spec.sim.seed += client as u64;
            spec
        })
        .collect()
}

/// Runs one wave: every client thread submits its specs synchronously.
/// Returns (wall_ms, per-request latencies).
fn run_wave(addr: &str, specs_per_client: &[Vec<JobSpec>]) -> (f64, Vec<f64>) {
    let wave_start = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = specs_per_client
            .iter()
            .map(|specs| {
                scope.spawn(move || {
                    let client = ServeClient::new(addr.to_string());
                    specs
                        .iter()
                        .map(|spec| {
                            let start = Instant::now();
                            client.run_sync(spec).expect("served job completes");
                            start.elapsed().as_secs_f64() * 1e3
                        })
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().expect("client thread"));
        }
    });
    (wave_start.elapsed().as_secs_f64() * 1e3, latencies)
}

/// Starts an in-process server, runs the cold wave and `warm_passes` warm
/// waves, verifies the warm-path cache accounting, and shuts down.
///
/// # Panics
///
/// Panics if any served job fails, or if the warm waves are not answered
/// entirely from the cache (hit delta != request count) — the measurement
/// would be meaningless, so it refuses to report one.
pub fn measure_serve(config: &ServeLoadConfig) -> ServeMeasurement {
    let names = serve_suite_names(config.fast);
    let clients = config.clients.max(1);
    let specs_per_client: Vec<Vec<JobSpec>> =
        (0..clients).map(|c| client_specs(&names, c)).collect();
    let jobs_per_wave = (clients * names.len()) as u64;

    let cache = Arc::new(ResultCache::in_memory());
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 0,
        // The harness measures service latency, not admission control:
        // size the queue so backpressure never triggers.
        queue_capacity: (jobs_per_wave as usize) * 2 + 16,
        cache: Some(Arc::clone(&cache)),
    })
    .expect("ephemeral bind");
    let addr = server.addr().to_string();

    let (cold_wall, cold_lat) = run_wave(&addr, &specs_per_client);
    let cold = WaveStats::from_latencies(cold_wall, &cold_lat);
    let after_cold = cache.stats();

    let mut warm: Option<WaveStats> = None;
    for _ in 0..config.warm_passes.max(1) {
        let (wall, lat) = run_wave(&addr, &specs_per_client);
        let stats = WaveStats::from_latencies(wall, &lat);
        if warm.is_none_or(|best| stats.wall_ms < best.wall_ms) {
            warm = Some(stats);
        }
    }
    let warm = warm.expect("at least one warm pass");
    let after_warm = cache.stats();

    let warm_requests = jobs_per_wave * config.warm_passes.max(1) as u64;
    let warm_hits = after_warm.hits() - after_cold.hits();
    assert_eq!(
        warm_hits, warm_requests,
        "warm waves must be answered entirely from the cache"
    );
    assert_eq!(
        after_warm.misses, after_cold.misses,
        "warm waves must not recompute"
    );

    let metrics = server.metrics();
    assert_eq!(metrics.failed, 0, "no served job may fail");
    let workers = metrics.workers;
    server.shutdown();

    ServeMeasurement {
        clients,
        workers,
        jobs_per_wave,
        cold,
        warm,
        warm_speedup: warm.jobs_per_s / cold.jobs_per_s,
        warm_hits,
        warm_requests,
    }
}
