//! Criterion bench for the `domino-engine` batch executor: public-suite
//! throughput at 1/2/4 worker threads, and cold-vs-warm cache behaviour.
//! The numbers feed `BENCH_engine.json`-style reports (suite wall-clock per
//! thread count; warm/cold ratio is the cache's whole value proposition).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use domino_engine::{EngineConfig, FlowEngine, FlowJob, JobSpec, ResultCache};

fn public_suite_jobs() -> Vec<FlowJob> {
    domino_workloads::public_row_names()
        .iter()
        .map(|name| {
            let mut spec = JobSpec::suite(name);
            spec.sim.cycles = 1024;
            spec.resolve().expect("suite row resolves")
        })
        .collect()
}

fn bench_thread_scaling(c: &mut Criterion) {
    let jobs = public_suite_jobs();
    let mut group = c.benchmark_group("engine_batch");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("public_suite_cold", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let engine = FlowEngine::new(EngineConfig {
                        threads,
                        cache: None,
                        snapshots: None,
                    });
                    let results = engine.run_batch(&jobs);
                    assert!(results.iter().all(|r| r.outcome().is_some()));
                    results
                })
            },
        );
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let jobs = public_suite_jobs();
    let mut group = c.benchmark_group("engine_cache");
    group.sample_size(10);

    // Cold: a fresh cache every iteration — every job is computed + stored.
    group.bench_function(BenchmarkId::new("cold", 4), |b| {
        b.iter(|| {
            let engine = FlowEngine::new(EngineConfig {
                threads: 4,
                cache: Some(Arc::new(ResultCache::in_memory())),
                snapshots: None,
            });
            engine.run_batch(&jobs)
        })
    });

    // Warm: one pre-filled cache — every job is a content-address hit.
    let cache = Arc::new(ResultCache::in_memory());
    let engine = FlowEngine::new(EngineConfig {
        threads: 4,
        cache: Some(Arc::clone(&cache)),
        snapshots: None,
    });
    engine.run_batch(&jobs);
    group.bench_function(BenchmarkId::new("warm", 4), |b| {
        b.iter(|| {
            let results = engine.run_batch(&jobs);
            assert!(results.iter().all(|r| r.was_cached()));
            results
        })
    });
    group.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_cache);
criterion_main!(benches);
