//! Criterion bench: the bit-parallel simulation engine against its scalar
//! reference on the same logical vector stream — the packed/scalar ratio
//! is the engine's speedup, machine-independent of the flow around it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use domino_phase::{DominoSynthesizer, PhaseAssignment};
use domino_sim::montecarlo::estimate_node_probabilities;
use domino_sim::{measure_domino_switching, measure_power, reference, SimConfig};
use domino_techmap::{map, Library};
use domino_workloads::public_suite;

fn bench_sim_packed(c: &mut Criterion) {
    let suite = public_suite().expect("suite generates");
    let lib = Library::standard();
    // 1024 cycles keeps the scalar side affordable; the packed/scalar
    // ratio is cycle-count independent.
    let cfg = SimConfig {
        cycles: 1024,
        warmup: 16,
        ..SimConfig::default()
    };

    let mut group = c.benchmark_group("sim_packed");
    group.sample_size(20);
    for bench in suite
        .iter()
        .filter(|b| ["frg1", "apex7", "x3"].contains(&b.name))
    {
        let net = &bench.network;
        let pi = vec![0.5; net.inputs().len()];
        let synth = DominoSynthesizer::new(net).expect("synthesizer");
        let n = synth.view_outputs().len();
        let domino = synth
            .synthesize(&PhaseAssignment::all_positive(n))
            .expect("synthesis");
        let mapped = map(&domino, &lib);

        group.bench_function(BenchmarkId::new("power_packed", bench.name), |b| {
            b.iter(|| measure_power(&mapped, &lib, &pi, &cfg))
        });
        group.bench_function(BenchmarkId::new("power_scalar", bench.name), |b| {
            b.iter(|| reference::measure_power(&mapped, &lib, &pi, &cfg))
        });
        group.bench_function(BenchmarkId::new("switching_packed", bench.name), |b| {
            b.iter(|| measure_domino_switching(&domino, &pi, &cfg))
        });
        group.bench_function(BenchmarkId::new("switching_scalar", bench.name), |b| {
            b.iter(|| reference::measure_domino_switching(&domino, &pi, &cfg))
        });
        group.bench_function(BenchmarkId::new("montecarlo_packed", bench.name), |b| {
            b.iter(|| estimate_node_probabilities(net, &pi, &cfg))
        });
        group.bench_function(BenchmarkId::new("montecarlo_scalar", bench.name), |b| {
            b.iter(|| reference::estimate_node_probabilities(net, &pi, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim_packed);
criterion_main!(benches);
