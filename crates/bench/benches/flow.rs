//! Criterion bench: the complete Table 1 pipeline per circuit (probability
//! computation, search, synthesis, mapping, simulation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use domino_bench::Experiment;
use domino_workloads::table_suite;

fn bench_flow(c: &mut Criterion) {
    let suite = table_suite().expect("suite generates");
    let experiment = Experiment::default();
    let mut group = c.benchmark_group("table1_flow");
    group.sample_size(10);
    for bench in suite
        .iter()
        .filter(|b| ["frg1", "apex7", "x3"].contains(&b.name))
    {
        group.bench_function(BenchmarkId::new("ma_vs_mp", bench.name), |b| {
            b.iter(|| experiment.compare(bench.name, &bench.network).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
