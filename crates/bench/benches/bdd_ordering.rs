//! Criterion bench for Figure 10 / §4.2.2: BDD construction cost under the
//! paper's variable ordering heuristic vs baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use domino_bdd::circuit::CircuitBdds;
use domino_bdd::ordering::{paper_order, random_order, topological_order};
use domino_workloads::table_suite;

fn bench_orders(c: &mut Criterion) {
    let suite = table_suite().expect("suite generates");
    let mut group = c.benchmark_group("bdd_build");
    for bench in suite.iter().filter(|b| ["apex7", "x1"].contains(&b.name)) {
        let net = &bench.network;
        let n = net.inputs().len() + net.latches().len();
        group.bench_with_input(
            BenchmarkId::new("paper_order", bench.name),
            net,
            |b, net| b.iter(|| CircuitBdds::build_with_order(net, paper_order(net)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("topological", bench.name),
            net,
            |b, net| b.iter(|| CircuitBdds::build_with_order(net, topological_order(net)).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("random", bench.name), net, |b, net| {
            b.iter(|| CircuitBdds::build_with_order(net, random_order(n, 1)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orders);
criterion_main!(benches);
