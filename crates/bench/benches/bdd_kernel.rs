//! Criterion bench for the BDD kernel hot paths (the PR 2 overhaul):
//!
//! * `build` — cold construction of all node BDDs for a suite circuit
//!   (unique table + op cache traffic);
//! * `prob_cold` — build plus one probability evaluation, the
//!   cold-manager path `compute_probabilities` takes;
//! * `prob_warm` — repeated probability evaluation on an existing manager,
//!   the path sequential sweeps and searches hit, which after the overhaul
//!   allocates nothing (dense stamp memos).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use domino_bdd::circuit::CircuitBdds;
use domino_workloads::table_suite;

fn bench_kernel(c: &mut Criterion) {
    let suite = table_suite().expect("suite generates");
    let mut group = c.benchmark_group("bdd_kernel");
    group.sample_size(20);
    for bench in suite
        .iter()
        .filter(|b| ["frg1", "apex7", "x3"].contains(&b.name))
    {
        let net = &bench.network;
        let probs = vec![0.5; net.inputs().len() + net.latches().len()];
        group.bench_with_input(BenchmarkId::new("build", bench.name), net, |b, net| {
            b.iter(|| CircuitBdds::build(net).expect("bdds build"))
        });
        group.bench_with_input(BenchmarkId::new("prob_cold", bench.name), net, |b, net| {
            b.iter(|| {
                let bdds = CircuitBdds::build(net).expect("bdds build");
                bdds.node_probabilities(net, &probs).expect("probs")
            })
        });
        let bdds = CircuitBdds::build(net).expect("bdds build");
        group.bench_with_input(BenchmarkId::new("prob_warm", bench.name), net, |b, net| {
            let mut out = Vec::new();
            b.iter(|| {
                bdds.node_probabilities_into(net, &probs, &mut out)
                    .expect("probs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
