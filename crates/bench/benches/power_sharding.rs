//! Criterion bench: the PR 4 sharded deterministic-power paths.
//!
//! * `search/*` — the exhaustive Gray-code walk over the **power**
//!   objective, sequential vs sharded (possible at all because the
//!   fixed-point accountant totals are path-independent integers);
//! * `sim/*` — the sharded packed power kernel at 1 thread vs all CPUs
//!   (bit-identical outputs by contract; the ratio is the machine's
//!   parallel headroom and collapses to ~1 on a single-core host);
//! * `heuristic/*` — the §4.1 pairwise min-power search, the `compare`
//!   profile's `search_ms` driver, exercising the bitset cost model and
//!   the flattened fixed-point accountant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use domino_phase::power::PowerModel;
use domino_phase::prob::compute_probabilities;
use domino_phase::search::{
    min_power_assignment, search_objective_with_shards, MinAreaConfig, MinPowerConfig, Objective,
};
use domino_phase::{DominoSynthesizer, PhaseAssignment};
use domino_sim::{measure_power, SimConfig};
use domino_techmap::{map, Library};
use domino_workloads::{generate, public_suite, GeneratorSpec};

fn bench_power_sharding(c: &mut Criterion) {
    let suite = public_suite().expect("suite generates");
    let lib = Library::standard();

    let mut group = c.benchmark_group("power_sharding");
    group.sample_size(20);

    // Exhaustive power walk over 2^14 assignments on a generated 14-output
    // control block (the suite circuits have either trivial or intractably
    // wide output counts for a full walk).
    {
        let net = generate(&GeneratorSpec::control_block("walk14", 10, 14, 80, 5))
            .expect("generator succeeds");
        let pi = vec![0.5; net.inputs().len()];
        let probs = compute_probabilities(&net, &pi, &Default::default()).expect("probabilities");
        let synth = DominoSynthesizer::new(&net).expect("synthesizer");
        let n = synth.view_outputs().len();
        let config = MinAreaConfig {
            exhaustive_limit: n,
            max_passes: 0,
        };
        for shards in [1usize, 8] {
            group.bench_function(
                BenchmarkId::new(format!("search_shards{shards}"), "walk14"),
                |b| {
                    b.iter(|| {
                        search_objective_with_shards(
                            &synth,
                            Objective::Power {
                                probs: probs.as_slice(),
                                model: PowerModel::unit(),
                            },
                            &config,
                            shards,
                        )
                        .expect("walk runs")
                    })
                },
            );
        }
    }

    for bench in suite.iter().filter(|b| ["frg1", "apex7"].contains(&b.name)) {
        let net = &bench.network;
        let pi = vec![0.5; net.inputs().len()];
        let probs = compute_probabilities(net, &pi, &Default::default()).expect("probabilities");
        let synth = DominoSynthesizer::new(net).expect("synthesizer");
        let n = synth.view_outputs().len();

        let domino = synth
            .synthesize(&PhaseAssignment::all_positive(n))
            .expect("synthesis");
        let mapped = map(&domino, &lib);
        for (tag, threads) in [("sim_threads1", 1usize), ("sim_threads_all", 0)] {
            let cfg = SimConfig {
                threads,
                ..SimConfig::default()
            };
            group.bench_function(BenchmarkId::new(tag, bench.name), |b| {
                b.iter(|| measure_power(&mapped, &lib, &pi, &cfg))
            });
        }

        group.bench_function(BenchmarkId::new("heuristic", bench.name), |b| {
            b.iter(|| {
                min_power_assignment(
                    &synth,
                    &probs,
                    PhaseAssignment::all_positive(n),
                    &MinPowerConfig::default(),
                )
                .expect("search runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_power_sharding);
criterion_main!(benches);
