//! Criterion bench for §4.1: the min-power greedy search and the min-area
//! baseline, per candidate-evaluation machinery (ConeAccountant).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use domino_phase::prob::{compute_probabilities, ProbabilityConfig};
use domino_phase::search::{
    min_area_assignment, min_power_assignment, MinAreaConfig, MinPowerConfig,
};
use domino_phase::{DominoSynthesizer, PhaseAssignment};
use domino_workloads::table_suite;

fn bench_search(c: &mut Criterion) {
    let suite = table_suite().expect("suite generates");
    let mut group = c.benchmark_group("phase_search");
    group.sample_size(10);
    for bench in suite.iter().filter(|b| ["apex7", "frg1"].contains(&b.name)) {
        let net = &bench.network;
        let pi = vec![0.5; net.inputs().len()];
        let probs = compute_probabilities(net, &pi, &ProbabilityConfig::default()).unwrap();
        let synth = DominoSynthesizer::new(net).unwrap();
        let n = synth.view_outputs().len();
        group.bench_function(BenchmarkId::new("min_power", bench.name), |b| {
            b.iter(|| {
                min_power_assignment(
                    &synth,
                    &probs,
                    PhaseAssignment::all_positive(n),
                    &MinPowerConfig::default(),
                )
                .unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("min_area", bench.name), |b| {
            b.iter(|| min_area_assignment(&synth, &MinAreaConfig::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
