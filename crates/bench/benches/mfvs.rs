//! Criterion bench for §4.2.1: MFVS heuristics with and without the
//! symmetry supervertex transformation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use domino_sgraph::{extract_sgraph, mfvs, DiGraph, MfvsConfig};
use domino_workloads::{generate, GeneratorSpec};

fn sgraphs() -> Vec<(String, DiGraph)> {
    [3u64, 5]
        .iter()
        .map(|&seed| {
            let spec = GeneratorSpec {
                n_latches: 40,
                ..GeneratorSpec::control_block(format!("seq{seed}"), 48, 20, 420, seed)
            };
            let net = generate(&spec).expect("generator succeeds");
            (format!("seq{seed}"), extract_sgraph(&net))
        })
        .collect()
}

fn bench_mfvs(c: &mut Criterion) {
    let graphs = sgraphs();
    let mut group = c.benchmark_group("mfvs");
    for (name, g) in &graphs {
        group.bench_with_input(BenchmarkId::new("enhanced", name), g, |b, g| {
            b.iter(|| mfvs(g, &MfvsConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("plain_cba", name), g, |b, g| {
            b.iter(|| {
                mfvs(
                    g,
                    &MfvsConfig {
                        symmetry: false,
                        descending_weight: true,
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mfvs);
criterion_main!(benches);
