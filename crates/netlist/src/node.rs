use crate::network::NodeId;

/// The functional kind of a network node.
///
/// `And`/`Or` gates accept any fanin count ≥ 1 (a single-fanin gate acts as a
/// buffer); `Not` is always unary. A [`NodeKind::Latch`] is a positive
/// edge-triggered D flip-flop: its single fanin is the *data* input and the
/// node's value is the flop's current state `Q`. Latch fanin edges are
/// *sequential* — they do not participate in the combinational DAG, which is
/// what allows sequential networks to contain cycles through latches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Primary input.
    Input,
    /// Constant `false` / `true`.
    Constant(bool),
    /// Logical conjunction of all fanins.
    And,
    /// Logical disjunction of all fanins.
    Or,
    /// Logical negation of the single fanin.
    Not,
    /// D flip-flop with the given reset state; fanin 0 is the data input.
    Latch {
        /// Value of the flop after reset.
        init: bool,
    },
}

impl NodeKind {
    /// Short lowercase tag for diagnostics and DOT/BLIF output.
    pub fn tag(self) -> &'static str {
        match self {
            NodeKind::Input => "input",
            NodeKind::Constant(false) => "const0",
            NodeKind::Constant(true) => "const1",
            NodeKind::And => "and",
            NodeKind::Or => "or",
            NodeKind::Not => "not",
            NodeKind::Latch { .. } => "latch",
        }
    }

    /// `true` for `And`, `Or`, `Not` — the nodes that form the combinational
    /// DAG.
    pub fn is_gate(self) -> bool {
        matches!(self, NodeKind::And | NodeKind::Or | NodeKind::Not)
    }

    /// `true` if this node is a source of the combinational DAG (inputs,
    /// constants and latch outputs).
    pub fn is_comb_source(self) -> bool {
        !self.is_gate()
    }
}

/// A single node of a [`Network`](crate::Network): its kind, fanins and
/// optional name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Functional kind.
    pub kind: NodeKind,
    /// Fanin nodes. Empty for inputs/constants; exactly one for `Not` and
    /// (connected) latches.
    pub fanins: Vec<NodeId>,
    /// Optional signal name (always present for primary inputs).
    pub name: Option<String>,
}

impl Node {
    /// Fanins that participate in the combinational DAG. For latches this is
    /// empty: the latch output is a combinational *source* and its data edge
    /// is sequential.
    pub fn comb_fanins(&self) -> &[NodeId] {
        if matches!(self.kind, NodeKind::Latch { .. }) {
            &[]
        } else {
            &self.fanins
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::And.is_gate());
        assert!(NodeKind::Or.is_gate());
        assert!(NodeKind::Not.is_gate());
        assert!(!NodeKind::Input.is_gate());
        assert!(!NodeKind::Latch { init: false }.is_gate());
        assert!(NodeKind::Latch { init: true }.is_comb_source());
        assert!(NodeKind::Constant(true).is_comb_source());
    }

    #[test]
    fn tags_are_distinct() {
        let tags = [
            NodeKind::Input.tag(),
            NodeKind::Constant(false).tag(),
            NodeKind::Constant(true).tag(),
            NodeKind::And.tag(),
            NodeKind::Or.tag(),
            NodeKind::Not.tag(),
            NodeKind::Latch { init: false }.tag(),
        ];
        let mut dedup = tags.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), tags.len());
    }

    #[test]
    fn latch_comb_fanins_empty() {
        let latch = Node {
            kind: NodeKind::Latch { init: false },
            fanins: vec![NodeId::from_index(3)],
            name: None,
        };
        assert!(latch.comb_fanins().is_empty());
        let gate = Node {
            kind: NodeKind::And,
            fanins: vec![NodeId::from_index(1), NodeId::from_index(2)],
            name: None,
        };
        assert_eq!(gate.comb_fanins().len(), 2);
    }
}
