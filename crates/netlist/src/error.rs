use std::error::Error;
use std::fmt;

use crate::network::NodeId;

/// Errors produced when constructing, validating, or parsing a
/// [`Network`](crate::Network).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate was created with no fanins.
    EmptyFanin {
        /// Gate kind that was being created (for diagnostics).
        kind: &'static str,
    },
    /// A gate has the wrong number of fanins for its kind (e.g. a `Not` with
    /// two fanins).
    InvalidArity {
        /// Gate kind.
        kind: &'static str,
        /// Number of fanins supplied.
        got: usize,
    },
    /// A [`NodeId`] does not refer to a node of this network.
    UnknownNode(NodeId),
    /// An operation required a latch but the node is not a latch.
    NotALatch(NodeId),
    /// A latch's data input was never connected.
    UnconnectedLatch(NodeId),
    /// The combinational part of the network contains a cycle through the
    /// given node. Cycles are only legal through latches.
    CombinationalCycle(NodeId),
    /// Two primary inputs or two primary outputs share a name.
    DuplicateName(String),
    /// The number of values supplied to an evaluation did not match the
    /// number of primary inputs (or latches).
    ArityMismatch {
        /// What was being supplied (e.g. "primary inputs").
        what: &'static str,
        /// Expected count.
        expected: usize,
        /// Supplied count.
        got: usize,
    },
    /// A BLIF file failed to parse.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        msg: String,
    },
    /// Reading a BLIF stream or file failed. Carries the rendered
    /// [`std::io::Error`] (this type stays `Clone + Eq`).
    Io(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::EmptyFanin { kind } => {
                write!(f, "{kind} gate created with no fanins")
            }
            NetlistError::InvalidArity { kind, got } => {
                write!(f, "{kind} gate has invalid fanin count {got}")
            }
            NetlistError::UnknownNode(id) => write!(f, "node {id:?} is not part of this network"),
            NetlistError::NotALatch(id) => write!(f, "node {id:?} is not a latch"),
            NetlistError::UnconnectedLatch(id) => {
                write!(f, "latch {id:?} has no data input connected")
            }
            NetlistError::CombinationalCycle(id) => {
                write!(f, "combinational cycle detected through node {id:?}")
            }
            NetlistError::DuplicateName(name) => write!(f, "duplicate signal name `{name}`"),
            NetlistError::ArityMismatch {
                what,
                expected,
                got,
            } => write!(f, "expected {expected} values for {what}, got {got}"),
            NetlistError::Parse { line, msg } => {
                write!(f, "blif parse error at line {line}: {msg}")
            }
            NetlistError::Io(msg) => write!(f, "blif read error: {msg}"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = NetlistError::EmptyFanin { kind: "and" };
        assert_eq!(e.to_string(), "and gate created with no fanins");
        let e = NetlistError::Parse {
            line: 3,
            msg: "bad cover".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
