//! Stable structural digest of a [`Network`] — the content-address the
//! engine's result cache is keyed by.
//!
//! The digest covers everything that affects a synthesis flow's result:
//! every node's kind and fanin list, the primary-input order and names, the
//! latch list with reset values and data connections, and the output ports
//! (name and driver). It deliberately excludes the model name and internal
//! node names, so re-parsing the same circuit under a different model name
//! or with different net labels hashes identically.
//!
//! The hash is 64-bit FNV-1a over a canonical byte stream, computed without
//! allocation and stable across platforms and compiler versions (unlike
//! `std::hash::Hasher` implementations, which are explicitly not portable).

use crate::network::Network;
use crate::node::NodeKind;

/// Incremental 64-bit FNV-1a hasher over a canonical byte stream.
#[derive(Debug, Clone)]
pub(crate) struct Fnv1a64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a64 {
    pub(crate) fn new() -> Self {
        Fnv1a64 { state: FNV_OFFSET }
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub(crate) fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    pub(crate) fn finish(&self) -> u64 {
        self.state
    }
}

impl Network {
    /// Returns a stable 64-bit structural digest of this network.
    ///
    /// Two networks with identical structure (same node arena shape, input
    /// order and names, latch configuration, and output ports) produce the
    /// same digest on every platform and in every process run; any
    /// structural edit — adding a gate, rewiring a fanin, renaming an output
    /// — changes it with overwhelming probability. The model name and
    /// internal signal names are *not* hashed.
    ///
    /// This is the netlist half of the content-address used by
    /// `domino-engine`'s result cache.
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> Result<(), domino_netlist::NetlistError> {
    /// let mut a = domino_netlist::Network::new("one");
    /// let x = a.add_input("x")?;
    /// let y = a.add_not(x)?;
    /// a.add_output("f", y)?;
    /// let mut b = a.clone();
    /// b.set_name("two"); // model name is not structural
    /// assert_eq!(a.structural_digest(), b.structural_digest());
    /// let z = b.add_input("z")?;
    /// b.add_output("g", z)?;
    /// assert_ne!(a.structural_digest(), b.structural_digest());
    /// # Ok(())
    /// # }
    /// ```
    pub fn structural_digest(&self) -> u64 {
        let mut h = Fnv1a64::new();
        h.write_usize(self.len());
        for id in self.node_ids() {
            let node = self.node(id);
            let (tag, aux) = match node.kind {
                NodeKind::Input => (0u8, 0u8),
                NodeKind::Constant(v) => (1, u8::from(v)),
                NodeKind::And => (2, 0),
                NodeKind::Or => (3, 0),
                NodeKind::Not => (4, 0),
                NodeKind::Latch { init } => (5, u8::from(init)),
            };
            h.write(&[tag, aux]);
            h.write_usize(node.fanins.len());
            for &f in &node.fanins {
                h.write_usize(f.index());
            }
        }
        h.write_usize(self.inputs().len());
        for &pi in self.inputs() {
            h.write_usize(pi.index());
            // Input names are part of the interface contract (BLIF order
            // plus name), so they are structural.
            if let Some(name) = &self.node(pi).name {
                h.write_usize(name.len());
                h.write(name.as_bytes());
            }
        }
        h.write_usize(self.latches().len());
        for &l in self.latches() {
            h.write_usize(l.index());
        }
        h.write_usize(self.outputs().len());
        for out in self.outputs() {
            h.write_usize(out.name.len());
            h.write(out.name.as_bytes());
            h.write_usize(out.driver.index());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::network::Network;

    fn sample() -> Network {
        let mut net = Network::new("sample");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let g = net.add_and([a, b]).unwrap();
        let n = net.add_not(g).unwrap();
        net.add_output("f", n).unwrap();
        net
    }

    #[test]
    fn digest_is_stable_across_clones() {
        let net = sample();
        assert_eq!(net.structural_digest(), net.clone().structural_digest());
    }

    #[test]
    fn model_name_is_not_structural() {
        let net = sample();
        let mut renamed = net.clone();
        renamed.set_name("other");
        assert_eq!(net.structural_digest(), renamed.structural_digest());
    }

    #[test]
    fn structural_edits_change_digest() {
        let net = sample();
        let mut grown = net.clone();
        let c = grown.add_input("c").unwrap();
        grown.add_output("g", c).unwrap();
        assert_ne!(net.structural_digest(), grown.structural_digest());

        let mut rewired = Network::new("sample");
        let a = rewired.add_input("a").unwrap();
        let b = rewired.add_input("b").unwrap();
        let g = rewired.add_or([a, b]).unwrap(); // AND -> OR
        let n = rewired.add_not(g).unwrap();
        rewired.add_output("f", n).unwrap();
        assert_ne!(net.structural_digest(), rewired.structural_digest());
    }

    #[test]
    fn output_rename_changes_digest() {
        let net = sample();
        let mut renamed = Network::new("sample");
        let a = renamed.add_input("a").unwrap();
        let b = renamed.add_input("b").unwrap();
        let g = renamed.add_and([a, b]).unwrap();
        let n = renamed.add_not(g).unwrap();
        renamed.add_output("h", n).unwrap();
        assert_ne!(net.structural_digest(), renamed.structural_digest());
    }

    #[test]
    fn digest_known_value_is_locked() {
        // Locks the byte-stream layout: if this constant changes, every
        // on-disk cache key changes — bump deliberately, not accidentally.
        assert_eq!(sample().structural_digest(), 0x8dca_c3e8_7cf4_fd48);
    }
}
