//! Structural traversals: topological order, logic levels, fanout maps and
//! transitive fanin/fanout cones.
//!
//! All traversals treat latch data edges as *sequential*: a latch output is a
//! source of the combinational DAG, and a latch data pin is a sink (like a
//! primary output).

use std::collections::HashSet;

use crate::network::{Network, NodeId};

/// Logic levels of every node: sources (inputs, constants, latch outputs) are
/// level 0, a gate is one more than its deepest combinational fanin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelMap {
    levels: Vec<u32>,
    depth: u32,
}

impl LevelMap {
    /// Level of a node.
    pub fn level(&self, id: NodeId) -> u32 {
        self.levels[id.index()]
    }

    /// Maximum level over all nodes (circuit depth).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Raw level slice indexed by node arena index.
    pub fn as_slice(&self) -> &[u32] {
        &self.levels
    }
}

impl Network {
    /// Nodes in a combinational topological order (every gate after all of
    /// its combinational fanins). The arena order already satisfies this
    /// invariant, so this is simply all node ids in arena order; it exists as
    /// a named operation so call sites document their requirement.
    pub fn topo_order(&self) -> Vec<NodeId> {
        self.node_ids().collect()
    }

    /// Logic level of every node.
    pub fn levels(&self) -> LevelMap {
        let mut levels = vec![0u32; self.len()];
        let mut depth = 0;
        for id in self.topo_order() {
            let node = self.node(id);
            let l = node
                .comb_fanins()
                .iter()
                .map(|f| levels[f.index()] + 1)
                .max()
                .unwrap_or(0);
            levels[id.index()] = l;
            depth = depth.max(l);
        }
        LevelMap { levels, depth }
    }

    /// Combinational fanout adjacency: for every node, the gates that consume
    /// it through a combinational edge. Latch data edges are *not* included.
    pub fn fanouts(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.len()];
        for id in self.node_ids() {
            for &f in self.node(id).comb_fanins() {
                out[f.index()].push(id);
            }
        }
        out
    }

    /// Like [`Network::fanouts`] but also counting latch data edges and
    /// primary outputs as one fanout each. Used by fanout-cone heuristics.
    pub fn fanout_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.len()];
        for id in self.node_ids() {
            for &f in &self.node(id).fanins {
                deg[f.index()] += 1;
            }
        }
        for o in self.outputs() {
            deg[o.driver.index()] += 1;
        }
        deg
    }

    /// Transitive fanin cone of `root` through combinational edges,
    /// *including* `root` itself and the sources (inputs/constants/latch
    /// outputs) it reaches. This is the set `D_i` of the paper's cost
    /// function when `root` drives primary output `i`.
    pub fn transitive_fanin(&self, root: NodeId) -> HashSet<NodeId> {
        let mut seen = HashSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if seen.insert(id) {
                stack.extend(self.node(id).comb_fanins().iter().copied());
            }
        }
        seen
    }

    /// Transitive fanout cone of `root` through combinational edges,
    /// including `root`.
    pub fn transitive_fanout(&self, root: NodeId) -> HashSet<NodeId> {
        let fanouts = self.fanouts();
        let mut seen = HashSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if seen.insert(id) {
                stack.extend(fanouts[id.index()].iter().copied());
            }
        }
        seen
    }

    /// Size of the transitive fanout cone of every node, computed in one
    /// reverse-topological sweep using cone sets. Exact (set union), so it
    /// costs O(V·V/64) words in the worst case; intended for the BDD ordering
    /// heuristic where networks are block-sized.
    pub fn fanout_cone_sizes(&self) -> Vec<usize> {
        let n = self.len();
        // CSR fanout adjacency (two flat allocations) instead of
        // [`Network::fanouts`]'s Vec-per-node.
        let mut offsets = vec![0usize; n + 1];
        for id in self.node_ids() {
            for f in self.node(id).comb_fanins() {
                offsets[f.index() + 1] += 1;
            }
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut adj = vec![0u32; offsets[n]];
        let mut cursor = offsets.clone();
        for id in self.node_ids() {
            for f in self.node(id).comb_fanins() {
                adj[cursor[f.index()]] = id.index() as u32;
                cursor[f.index()] += 1;
            }
        }
        let words = n.div_ceil(64);
        // One flat bitset matrix (row i = node i's cone) instead of one
        // allocation per node — this sits on the BDD-ordering hot path.
        let mut cones: Vec<u64> = vec![0u64; n * words];
        let mut sizes = vec![0usize; n];
        for id in self.topo_order().into_iter().rev() {
            let i = id.index();
            cones[i * words + i / 64] |= 1u64 << (i % 64);
            // Merge every fanout's cone into ours.
            for f in adj[offsets[i]..offsets[i + 1]].iter().map(|&f| f as usize) {
                // Combinational fanouts always come later in arena order.
                assert!(f > i, "fanout precedes node in arena order");
                let (head, tail) = cones.split_at_mut(f * words);
                let row = &mut head[i * words..(i + 1) * words];
                for (w, src) in row.iter_mut().zip(&tail[..words]) {
                    *w |= *src;
                }
            }
            sizes[i] = cones[i * words..(i + 1) * words]
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum();
        }
        sizes
    }

    /// The primary inputs contained in the transitive fanin of `root`, in
    /// declaration order.
    pub fn cone_inputs(&self, root: NodeId) -> Vec<NodeId> {
        let cone = self.transitive_fanin(root);
        self.inputs()
            .iter()
            .copied()
            .filter(|i| cone.contains(i))
            .collect()
    }

    /// All nodes that are dead (not reachable from any primary output or any
    /// latch data input).
    pub fn dead_nodes(&self) -> HashSet<NodeId> {
        let mut live = HashSet::new();
        let mut stack: Vec<NodeId> = self.outputs().iter().map(|o| o.driver).collect();
        for &l in self.latches() {
            stack.push(l);
            if let Some(d) = self.node(l).fanins.first() {
                stack.push(*d);
            }
        }
        while let Some(id) = stack.pop() {
            if live.insert(id) {
                stack.extend(self.node(id).fanins.iter().copied());
            }
        }
        self.node_ids().filter(|id| !live.contains(id)).collect()
    }

    /// `true` if `id` drives any primary output directly.
    pub fn is_po_driver(&self, id: NodeId) -> bool {
        self.outputs().iter().any(|o| o.driver == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    fn diamond() -> (Network, [NodeId; 6]) {
        // f = (a&b) | (b&c); g = !(b&c)
        let mut net = Network::new("diamond");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let ab = net.add_and([a, b]).unwrap();
        let bc = net.add_and([b, c]).unwrap();
        let f = net.add_or([ab, bc]).unwrap();
        net.add_output("f", f).unwrap();
        let g = net.add_not(bc).unwrap();
        net.add_output("g", g).unwrap();
        (net, [a, b, c, ab, bc, f])
    }

    #[test]
    fn levels_and_depth() {
        let (net, [a, b, _c, ab, _bc, f]) = diamond();
        let lv = net.levels();
        assert_eq!(lv.level(a), 0);
        assert_eq!(lv.level(b), 0);
        assert_eq!(lv.level(ab), 1);
        assert_eq!(lv.level(f), 2);
        assert_eq!(lv.depth(), 2);
        assert_eq!(lv.as_slice().len(), net.len());
    }

    #[test]
    fn tfi_contains_cone() {
        let (net, [a, b, c, ab, bc, f]) = diamond();
        let cone = net.transitive_fanin(f);
        for id in [a, b, c, ab, bc, f] {
            assert!(cone.contains(&id));
        }
        assert_eq!(cone.len(), 6);
        let small = net.transitive_fanin(ab);
        assert_eq!(small.len(), 3);
    }

    #[test]
    fn tfo_and_fanouts() {
        let (net, [_a, b, _c, ab, bc, f]) = diamond();
        let tfo = net.transitive_fanout(b);
        assert!(tfo.contains(&ab));
        assert!(tfo.contains(&bc));
        assert!(tfo.contains(&f));
        let fo = net.fanouts();
        assert_eq!(fo[b.index()].len(), 2);
        assert_eq!(fo[f.index()].len(), 0);
    }

    #[test]
    fn fanout_cone_sizes_match_tfo() {
        let (net, ids) = diamond();
        let sizes = net.fanout_cone_sizes();
        for id in ids {
            assert_eq!(sizes[id.index()], net.transitive_fanout(id).len());
        }
    }

    #[test]
    fn cone_inputs_ordered() {
        let (net, [a, b, c, _ab, bc, f]) = diamond();
        assert_eq!(net.cone_inputs(f), vec![a, b, c]);
        assert_eq!(net.cone_inputs(bc), vec![b, c]);
    }

    #[test]
    fn dead_node_detection() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let live = net.add_and([a, b]).unwrap();
        let dead = net.add_or([a, b]).unwrap();
        net.add_output("f", live).unwrap();
        let dn = net.dead_nodes();
        assert!(dn.contains(&dead));
        assert!(!dn.contains(&live));
        assert!(!dn.contains(&a));
    }

    #[test]
    fn fanout_degrees_count_outputs_and_latches() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let q = net.add_latch(false);
        let g = net.add_or([a, q]).unwrap();
        net.set_latch_data(q, g).unwrap();
        net.add_output("f", g).unwrap();
        let deg = net.fanout_degrees();
        // g feeds the latch data and the primary output.
        assert_eq!(deg[g.index()], 2);
        assert_eq!(deg[a.index()], 1);
    }
}
