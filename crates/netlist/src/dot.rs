//! Graphviz DOT export for debugging and documentation figures.

use std::fmt::Write as _;

use crate::network::Network;
use crate::node::NodeKind;

/// Renders the network as a Graphviz `digraph`.
///
/// Inputs are boxes, gates are ellipses labelled with their kind, latches are
/// double octagons; primary outputs appear as dedicated sink boxes. Latch
/// data edges are drawn dashed to distinguish sequential feedback from the
/// combinational DAG.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), domino_netlist::NetlistError> {
/// let mut net = domino_netlist::Network::new("d");
/// let a = net.add_input("a")?;
/// let n = net.add_not(a)?;
/// net.add_output("f", n)?;
/// let dot = domino_netlist::to_dot(&net);
/// assert!(dot.contains("digraph"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(net: &Network) -> String {
    let mut s = String::new();
    writeln!(s, "digraph \"{}\" {{", net.name()).unwrap();
    writeln!(s, "  rankdir=LR;").unwrap();
    for id in net.node_ids() {
        let node = net.node(id);
        let label = match &node.name {
            Some(n) => format!("{n}\\n{}", node.kind.tag()),
            None => format!("{id}\\n{}", node.kind.tag()),
        };
        let shape = match node.kind {
            NodeKind::Input => "box",
            NodeKind::Constant(_) => "plaintext",
            NodeKind::Latch { .. } => "doubleoctagon",
            NodeKind::Not => "invtriangle",
            _ => "ellipse",
        };
        writeln!(s, "  {id} [label=\"{label}\", shape={shape}];").unwrap();
    }
    for id in net.node_ids() {
        let node = net.node(id);
        let style = if matches!(node.kind, NodeKind::Latch { .. }) {
            " [style=dashed]"
        } else {
            ""
        };
        for &f in &node.fanins {
            writeln!(s, "  {f} -> {id}{style};").unwrap();
        }
    }
    for (i, o) in net.outputs().iter().enumerate() {
        writeln!(s, "  po{i} [label=\"{}\", shape=box, style=bold];", o.name).unwrap();
        writeln!(s, "  {} -> po{i};", o.driver).unwrap();
    }
    writeln!(s, "}}").unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_elements() {
        let mut net = Network::new("d");
        let a = net.add_input("a").unwrap();
        let q = net.add_latch(false);
        let g = net.add_or([a, q]).unwrap();
        net.set_latch_data(q, g).unwrap();
        net.add_output("f", g).unwrap();
        let dot = to_dot(&net);
        assert!(dot.contains("digraph \"d\""));
        assert!(dot.contains("doubleoctagon"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("po0"));
        assert!(dot.ends_with("}\n"));
    }
}
