//! BLIF (Berkeley Logic Interchange Format) reading and writing.
//!
//! The parser supports the subset used by the MCNC benchmark suite that the
//! paper evaluates on: `.model`, `.inputs`, `.outputs`, `.names` with
//! single-output PLA covers (including don't-cares `-` and both output
//! phases), `.latch`, and `.end`. `.names` covers are expanded into
//! AND/OR/NOT trees, which is exactly the technology-independent form the
//! phase-assignment flow consumes.
//!
//! The writer emits one `.names` block per gate, so `parse_blif(&write_blif(n))`
//! round-trips functionally.
//!
//! Parsing is *streaming*: [`parse_blif_reader`] consumes any
//! [`BufRead`](std::io::BufRead) one line at a time through one reused
//! line buffer, so a giant circuit file never has to exist in memory as
//! text — only the parsed blocks (which the network needs anyway) are
//! retained, and reading stops at `.end`. [`parse_blif`] and
//! [`parse_blif_path`] are thin fronts over the same state machine, so
//! the three entry points cannot diverge.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::error::NetlistError;
use crate::network::{Network, NodeId};
use crate::node::NodeKind;

/// Parses a BLIF model into a [`Network`].
///
/// Only the first `.model` in the text is read. Signals referenced before
/// definition are resolved after the whole model is read (BLIF permits
/// forward references).
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] with a line number for malformed input,
/// and construction errors (duplicate names, etc.) otherwise.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), domino_netlist::NetlistError> {
/// let net = domino_netlist::parse_blif(
///     ".model and2\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n",
/// )?;
/// assert_eq!(net.eval_comb(&[true, true])?, vec![true]);
/// # Ok(())
/// # }
/// ```
pub fn parse_blif(text: &str) -> Result<Network, NetlistError> {
    let mut stream = BlifStream::new();
    for (lineno, raw) in text.lines().enumerate() {
        stream.raw_line(lineno + 1, raw)?;
        if stream.seen_end {
            break;
        }
    }
    stream.finish()
}

/// Parses a BLIF model from any buffered reader, streaming: one logical
/// line in memory at a time, through one reused buffer. This is the
/// bounded-memory ingestion path for giant circuit files — the text is
/// never materialized as a whole, and reading stops at `.end`.
///
/// # Errors
///
/// [`NetlistError::Io`] when the reader fails, plus everything
/// [`parse_blif`] reports.
pub fn parse_blif_reader<R: std::io::BufRead>(mut reader: R) -> Result<Network, NetlistError> {
    let mut stream = BlifStream::new();
    let mut buf = String::new();
    let mut lineno = 0usize;
    loop {
        buf.clear();
        let n = reader
            .read_line(&mut buf)
            .map_err(|e| NetlistError::Io(format!("reading line {}: {e}", lineno + 1)))?;
        if n == 0 {
            break;
        }
        lineno += 1;
        let raw = buf.strip_suffix('\n').unwrap_or(&buf);
        let raw = raw.strip_suffix('\r').unwrap_or(raw);
        stream.raw_line(lineno, raw)?;
        if stream.seen_end {
            break;
        }
    }
    stream.finish()
}

/// Opens `path` and parses it with [`parse_blif_reader`] — the streaming
/// file front used by the engine's `BlifPath` job source.
///
/// # Errors
///
/// [`NetlistError::Io`] when the file cannot be opened or read, plus
/// everything [`parse_blif`] reports.
pub fn parse_blif_path(path: impl AsRef<std::path::Path>) -> Result<Network, NetlistError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)
        .map_err(|e| NetlistError::Io(format!("opening {}: {e}", path.display())))?;
    parse_blif_reader(std::io::BufReader::new(file))
}

/// The incremental parser state behind every `parse_blif*` front: feed it
/// raw lines, then [`BlifStream::finish`] builds the network. Memory is
/// bounded by the parsed model, never the input text — the only raw text
/// held between calls is one pending continuation line.
struct BlifStream {
    model_name: String,
    input_names: Vec<String>,
    output_names: Vec<String>,
    names_blocks: Vec<NamesBlock>,
    /// (data signal, q signal, init, line)
    latch_decls: Vec<(String, String, bool, usize)>,
    /// An unfinished `\`-continued logical line: (start line, text so far).
    pending: Option<(usize, String)>,
    current: Option<NamesBlock>,
    seen_end: bool,
}

impl BlifStream {
    fn new() -> BlifStream {
        BlifStream {
            model_name: String::from("blif"),
            input_names: Vec::new(),
            output_names: Vec::new(),
            names_blocks: Vec::new(),
            latch_decls: Vec::new(),
            pending: None,
            current: None,
            seen_end: false,
        }
    }

    /// Consumes one raw input line: strips the comment, joins `\`
    /// continuations, and dispatches completed logical lines.
    fn raw_line(&mut self, lineno: usize, raw: &str) -> Result<(), NetlistError> {
        if self.seen_end {
            return Ok(());
        }
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let line = line.trim_end();
        let (cont, body) = match line.strip_suffix('\\') {
            Some(b) => (true, b),
            None => (false, line),
        };
        match self.pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(body);
                if cont {
                    self.pending = Some((start, acc));
                } else {
                    self.logical_line(start, &acc)?;
                }
            }
            None => {
                if cont {
                    self.pending = Some((lineno, body.to_string()));
                } else if !body.trim().is_empty() {
                    self.logical_line(lineno, body)?;
                }
            }
        }
        Ok(())
    }

    /// Dispatches one complete logical line (continuations already joined).
    fn logical_line(&mut self, lineno: usize, line: &str) -> Result<(), NetlistError> {
        let mut toks = line.split_whitespace();
        let first = match toks.next() {
            Some(t) => t,
            None => return Ok(()),
        };
        if first.starts_with('.') {
            // Close any open .names block.
            if let Some(block) = self.current.take() {
                self.names_blocks.push(block);
            }
            match first {
                ".model" => {
                    if let Some(name) = toks.next() {
                        self.model_name = name.to_string();
                    }
                }
                ".inputs" => self.input_names.extend(toks.map(str::to_string)),
                ".outputs" => self.output_names.extend(toks.map(str::to_string)),
                ".names" => {
                    let mut sig: Vec<String> = toks.map(str::to_string).collect();
                    let output = sig.pop().ok_or(NetlistError::Parse {
                        line: lineno,
                        msg: ".names requires at least an output signal".into(),
                    })?;
                    self.current = Some(NamesBlock {
                        inputs: sig,
                        output,
                        rows: Vec::new(),
                        line: lineno,
                    });
                }
                ".latch" => {
                    let d = toks.next();
                    let q = toks.next();
                    let (d, q) = match (d, q) {
                        (Some(d), Some(q)) => (d.to_string(), q.to_string()),
                        _ => {
                            return Err(NetlistError::Parse {
                                line: lineno,
                                msg: ".latch requires input and output signals".into(),
                            })
                        }
                    };
                    // Remaining tokens: optional [type] [control] [init].
                    let rest: Vec<&str> = toks.collect();
                    let init = match rest.last() {
                        Some(&"1") => true,
                        Some(&"0") | Some(&"2") | Some(&"3") | None => false,
                        Some(other) if ["re", "fe", "ah", "al", "as"].contains(other) => false,
                        Some(_) => false,
                    };
                    self.latch_decls.push((d, q, init, lineno));
                }
                ".end" => self.seen_end = true,
                ".exdc"
                | ".wire_load_slope"
                | ".default_input_arrival"
                | ".default_output_required"
                | ".clock" => {
                    // Ignored extensions.
                }
                other => {
                    return Err(NetlistError::Parse {
                        line: lineno,
                        msg: format!("unsupported blif construct `{other}`"),
                    });
                }
            }
        } else {
            // Cover row of the current .names block.
            let block = self.current.as_mut().ok_or(NetlistError::Parse {
                line: lineno,
                msg: "cover row outside .names block".into(),
            })?;
            if block.inputs.is_empty() {
                // Constant: single token row "1" or "0".
                let v = match first {
                    "1" => '1',
                    "0" => '0',
                    other => {
                        return Err(NetlistError::Parse {
                            line: lineno,
                            msg: format!("bad constant cover `{other}`"),
                        })
                    }
                };
                block.rows.push((String::new(), v));
            } else {
                let out = toks.next().ok_or(NetlistError::Parse {
                    line: lineno,
                    msg: "cover row missing output value".into(),
                })?;
                let outc = match out {
                    "1" => '1',
                    "0" => '0',
                    other => {
                        return Err(NetlistError::Parse {
                            line: lineno,
                            msg: format!("bad cover output `{other}`"),
                        })
                    }
                };
                if first.len() != block.inputs.len() {
                    return Err(NetlistError::Parse {
                        line: lineno,
                        msg: format!(
                            "cover row width {} does not match {} inputs",
                            first.len(),
                            block.inputs.len()
                        ),
                    });
                }
                block.rows.push((first.to_string(), outc));
            }
        }
        Ok(())
    }

    /// Ends the stream and builds the [`Network`].
    fn finish(mut self) -> Result<Network, NetlistError> {
        if let Some((line, _)) = self.pending {
            return Err(NetlistError::Parse {
                line,
                msg: "dangling line continuation".into(),
            });
        }
        if let Some(block) = self.current.take() {
            self.names_blocks.push(block);
        }
        let BlifStream {
            model_name,
            input_names,
            output_names,
            names_blocks,
            latch_decls,
            ..
        } = self;

        // Build the network.
        let mut net = Network::new(model_name);
        let mut signals: HashMap<String, NodeId> = HashMap::new();
        for name in &input_names {
            let id = net.add_input(name.clone())?;
            signals.insert(name.clone(), id);
        }
        for (_, q, init, _) in &latch_decls {
            let id = net.add_latch(*init);
            net.set_node_name(id, q.clone())?;
            if signals.insert(q.clone(), id).is_some() {
                return Err(NetlistError::DuplicateName(q.clone()));
            }
        }

        // Topologically order the .names blocks (BLIF allows any order).
        let mut by_output: HashMap<&str, usize> = HashMap::new();
        for (i, b) in names_blocks.iter().enumerate() {
            if by_output.insert(b.output.as_str(), i).is_some() {
                return Err(NetlistError::Parse {
                    line: b.line,
                    msg: format!("signal `{}` defined by two .names blocks", b.output),
                });
            }
        }
        // Iterative DFS with cycle detection (giant circuits would blow
        // the call stack with the recursive form).
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; names_blocks.len()];
        let mut order: Vec<usize> = Vec::with_capacity(names_blocks.len());
        for root in 0..names_blocks.len() {
            if marks[root] != Mark::White {
                continue;
            }
            // (block index, next fanin position to examine)
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            marks[root] = Mark::Grey;
            while let Some((i, pos)) = stack.last().copied() {
                match names_blocks[i].inputs.get(pos) {
                    None => {
                        marks[i] = Mark::Black;
                        order.push(i);
                        stack.pop();
                    }
                    Some(input) => {
                        stack.last_mut().expect("stack is non-empty").1 += 1;
                        if signals.contains_key(input) {
                            continue;
                        }
                        let Some(&j) = by_output.get(input.as_str()) else {
                            return Err(NetlistError::Parse {
                                line: names_blocks[i].line,
                                msg: format!("undefined signal `{input}`"),
                            });
                        };
                        match marks[j] {
                            Mark::Black => {}
                            Mark::Grey => {
                                return Err(NetlistError::Parse {
                                    line: names_blocks[j].line,
                                    msg: format!(
                                        "combinational cycle through `{}`",
                                        names_blocks[j].output
                                    ),
                                })
                            }
                            Mark::White => {
                                marks[j] = Mark::Grey;
                                stack.push((j, 0));
                            }
                        }
                    }
                }
            }
        }

        for i in order {
            let block = &names_blocks[i];
            let id = build_cover(&mut net, block, &signals)?;
            signals.insert(block.output.clone(), id);
        }

        // Connect latches.
        for (d, q, _, line) in &latch_decls {
            let data = *signals.get(d).ok_or(NetlistError::Parse {
                line: *line,
                msg: format!("latch data signal `{d}` is undefined"),
            })?;
            let latch = signals[q];
            net.set_latch_data(latch, data)?;
        }

        for name in &output_names {
            let driver = *signals.get(name).ok_or(NetlistError::Parse {
                line: 0,
                msg: format!("output signal `{name}` is undefined"),
            })?;
            net.add_output(name.clone(), driver)?;
        }
        net.validate()?;
        Ok(net)
    }
}

struct NamesBlock {
    inputs: Vec<String>,
    output: String,
    rows: Vec<(String, char)>,
    line: usize,
}

/// Expands one PLA cover into AND/OR/NOT nodes.
fn build_cover(
    net: &mut Network,
    block: &NamesBlock,
    signals: &HashMap<String, NodeId>,
) -> Result<NodeId, NetlistError> {
    if block.inputs.is_empty() {
        // Constant block: on-set non-empty ⇒ 1, empty ⇒ 0.
        let value = block.rows.iter().any(|(_, o)| *o == '1');
        let id = net.add_const(value);
        return Ok(id);
    }
    let fanins: Vec<NodeId> = block
        .inputs
        .iter()
        .map(|s| {
            signals.get(s).copied().ok_or(NetlistError::Parse {
                line: block.line,
                msg: format!("undefined signal `{s}`"),
            })
        })
        .collect::<Result<_, _>>()?;

    // BLIF: all rows of a block share the same output phase.
    let phase = block.rows.first().map(|(_, o)| *o).unwrap_or('1');
    if block.rows.iter().any(|(_, o)| *o != phase) {
        return Err(NetlistError::Parse {
            line: block.line,
            msg: "mixed output phases in one .names cover".into(),
        });
    }

    // Negated literal cache so repeated literals share an inverter.
    let mut inv: HashMap<NodeId, NodeId> = HashMap::new();
    let mut cube_nodes: Vec<NodeId> = Vec::with_capacity(block.rows.len());
    for (pattern, _) in &block.rows {
        let mut literals: Vec<NodeId> = Vec::new();
        for (ch, &src) in pattern.chars().zip(&fanins) {
            match ch {
                '1' => literals.push(src),
                '0' => {
                    let n = match inv.entry(src) {
                        std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            let n = net.add_not(src)?;
                            e.insert(n);
                            n
                        }
                    };
                    literals.push(n);
                }
                '-' => {}
                other => {
                    return Err(NetlistError::Parse {
                        line: block.line,
                        msg: format!("bad cover character `{other}`"),
                    })
                }
            }
        }
        let cube = match literals.len() {
            0 => net.add_const(true),
            1 => literals[0],
            _ => net.add_and(literals)?,
        };
        cube_nodes.push(cube);
    }
    let sum = match cube_nodes.len() {
        0 => net.add_const(false),
        1 => cube_nodes[0],
        _ => net.add_or(cube_nodes)?,
    };
    let result = if phase == '1' { sum } else { net.add_not(sum)? };
    net.set_node_name(result, block.output.clone())?;
    Ok(result)
}

/// Serializes a network to BLIF text.
///
/// Every gate becomes one `.names` block (AND → single cube, OR → one-hot
/// cubes, NOT → `0 1`); latches become `.latch` lines. Node names are used
/// when present, otherwise ids are used.
pub fn write_blif(net: &Network) -> String {
    let mut s = String::new();
    let signal = |id: NodeId| -> String {
        match &net.node(id).name {
            Some(n) => n.clone(),
            None => id.to_string(),
        }
    };
    writeln!(s, ".model {}", net.name()).unwrap();
    if !net.inputs().is_empty() {
        write!(s, ".inputs").unwrap();
        for &i in net.inputs() {
            write!(s, " {}", signal(i)).unwrap();
        }
        writeln!(s).unwrap();
    }
    if !net.outputs().is_empty() {
        write!(s, ".outputs").unwrap();
        for o in net.outputs() {
            write!(s, " {}", o.name).unwrap();
        }
        writeln!(s).unwrap();
    }
    for &l in net.latches() {
        let init = match net.node(l).kind {
            NodeKind::Latch { init } => init as u8,
            _ => unreachable!(),
        };
        let d = net.node(l).fanins.first().copied();
        let dsig = d.map(signal).unwrap_or_else(|| "<unconnected>".into());
        writeln!(s, ".latch {dsig} {} {init}", signal(l)).unwrap();
    }
    for id in net.node_ids() {
        let node = net.node(id);
        match node.kind {
            NodeKind::And => {
                write!(s, ".names").unwrap();
                for &f in &node.fanins {
                    write!(s, " {}", signal(f)).unwrap();
                }
                writeln!(s, " {}", signal(id)).unwrap();
                writeln!(s, "{} 1", "1".repeat(node.fanins.len())).unwrap();
            }
            NodeKind::Or => {
                write!(s, ".names").unwrap();
                for &f in &node.fanins {
                    write!(s, " {}", signal(f)).unwrap();
                }
                writeln!(s, " {}", signal(id)).unwrap();
                for i in 0..node.fanins.len() {
                    let mut row = vec!['-'; node.fanins.len()];
                    row[i] = '1';
                    let row: String = row.into_iter().collect();
                    writeln!(s, "{row} 1").unwrap();
                }
            }
            NodeKind::Not => {
                writeln!(s, ".names {} {}", signal(node.fanins[0]), signal(id)).unwrap();
                writeln!(s, "0 1").unwrap();
            }
            NodeKind::Constant(v) => {
                writeln!(s, ".names {}", signal(id)).unwrap();
                if v {
                    writeln!(s, "1").unwrap();
                }
            }
            NodeKind::Input | NodeKind::Latch { .. } => {}
        }
    }
    // Alias outputs whose name differs from their driver's signal name.
    for o in net.outputs() {
        let dsig = signal(o.driver);
        if dsig != o.name {
            writeln!(s, ".names {dsig} {}", o.name).unwrap();
            writeln!(s, "1 1").unwrap();
        }
    }
    writeln!(s, ".end").unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_and() {
        let net =
            parse_blif(".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n").unwrap();
        assert_eq!(net.inputs().len(), 2);
        assert_eq!(net.eval_comb(&[true, true]).unwrap(), vec![true]);
        assert_eq!(net.eval_comb(&[true, false]).unwrap(), vec![false]);
    }

    #[test]
    fn parse_sop_with_dont_cares() {
        // f = a·!b + c
        let net =
            parse_blif(".model m\n.inputs a b c\n.outputs f\n.names a b c f\n10- 1\n--1 1\n.end\n")
                .unwrap();
        for bits in 0..8u32 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            assert_eq!(
                net.eval_comb(&[a, b, c]).unwrap(),
                vec![(a && !b) || c],
                "bits {bits}"
            );
        }
    }

    #[test]
    fn parse_offset_cover() {
        // f defined by its off-set: f = !(a·b)
        let net =
            parse_blif(".model m\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n").unwrap();
        assert_eq!(net.eval_comb(&[true, true]).unwrap(), vec![false]);
        assert_eq!(net.eval_comb(&[false, true]).unwrap(), vec![true]);
    }

    #[test]
    fn parse_constants() {
        let net =
            parse_blif(".model m\n.outputs one zero\n.names one\n1\n.names zero\n.end\n").unwrap();
        assert_eq!(net.eval_comb(&[]).unwrap(), vec![true, false]);
    }

    #[test]
    fn parse_out_of_order_blocks() {
        // g is defined after f uses it.
        let net = parse_blif(
            ".model m\n.inputs a b\n.outputs f\n.names g a f\n11 1\n.names b g\n0 1\n.end\n",
        )
        .unwrap();
        // f = !b & a
        assert_eq!(net.eval_comb(&[true, false]).unwrap(), vec![true]);
        assert_eq!(net.eval_comb(&[true, true]).unwrap(), vec![false]);
    }

    #[test]
    fn parse_latch() {
        let net = parse_blif(
            ".model m\n.inputs a\n.outputs q\n.latch d q 0\n.names a q d\n1- 1\n-1 1\n.end\n",
        )
        .unwrap();
        assert!(net.is_sequential());
        let mut st = crate::SequentialState::new(&net);
        // q starts 0; after a=1 it sticks at 1.
        assert_eq!(st.step(&net, &[false]).unwrap(), vec![false]);
        assert_eq!(st.step(&net, &[true]).unwrap(), vec![false]);
        assert_eq!(st.step(&net, &[false]).unwrap(), vec![true]);
        assert_eq!(st.step(&net, &[false]).unwrap(), vec![true]);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            parse_blif(".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.frobnicate\n.end\n"),
            Err(NetlistError::Parse { .. })
        ));
        assert!(matches!(
            parse_blif(".model m\n.inputs a\n.outputs f\n.names a f\n11 1\n.end\n"),
            Err(NetlistError::Parse { .. })
        ));
        assert!(matches!(
            parse_blif(".model m\n.inputs a\n.outputs f\n.end\n"),
            Err(NetlistError::Parse { .. })
        ));
        // Combinational cycle.
        assert!(matches!(
            parse_blif(".model m\n.outputs f\n.names g f\n1 1\n.names f g\n1 1\n.end\n"),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn comments_and_continuations() {
        let net = parse_blif(
            "# header\n.model m # trailing\n.inputs \\\na b\n.outputs f\n.names a b f\n11 1\n.end\n",
        )
        .unwrap();
        assert_eq!(net.inputs().len(), 2);
    }

    #[test]
    fn roundtrip_combinational() {
        let mut net = Network::new("rt");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let ab = net.add_and([a, b]).unwrap();
        let nc = net.add_not(c).unwrap();
        let f = net.add_or([ab, nc]).unwrap();
        net.add_output("f", f).unwrap();
        let text = write_blif(&net);
        let back = parse_blif(&text).unwrap();
        for bits in 0..8u32 {
            let vals: Vec<bool> = (0..3).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(
                net.eval_comb(&vals).unwrap(),
                back.eval_comb(&vals).unwrap()
            );
        }
    }

    #[test]
    fn streaming_reader_matches_string_parser() {
        let text = ".model m\n.inputs a b\n.outputs f q\n.latch d q 0\n\
                    .names a b g\n11 1\n.names g q d\n1- 1\n-1 1\n\
                    .names g f\n1 1\n.end\n";
        let from_str = parse_blif(text).unwrap();
        let from_reader = parse_blif_reader(std::io::Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(
            from_str.structural_digest(),
            from_reader.structural_digest(),
            "streaming and string fronts build the identical network"
        );
        // CRLF line endings parse the same.
        let crlf = text.replace('\n', "\r\n");
        let from_crlf = parse_blif_reader(std::io::Cursor::new(crlf.as_bytes())).unwrap();
        assert_eq!(from_str.structural_digest(), from_crlf.structural_digest());
    }

    #[test]
    fn path_front_streams_the_file() {
        let path = std::env::temp_dir().join(format!("dominolp-blif-{}.blif", std::process::id()));
        let text = ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n";
        std::fs::write(&path, text).unwrap();
        let net = parse_blif_path(&path).unwrap();
        assert_eq!(
            net.structural_digest(),
            parse_blif(text).unwrap().structural_digest()
        );
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(parse_blif_path(&path), Err(NetlistError::Io(_))));
    }

    #[test]
    fn reading_stops_at_end_marker() {
        // Junk after .end is never parsed — the reader exits early.
        let text = ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n.garbage\n";
        assert!(parse_blif_reader(std::io::Cursor::new(text.as_bytes())).is_ok());
    }

    #[test]
    fn deep_chains_do_not_overflow_the_parser() {
        // A 50k-deep inverter chain written blocks-reversed, so the
        // topological order has to walk the full chain from one root —
        // the iterative DFS must not recurse.
        let depth = 50_000;
        let mut text = String::from(".model deep\n.inputs x0\n");
        writeln!(text, ".outputs x{depth}").unwrap();
        for i in (0..depth).rev() {
            writeln!(text, ".names x{} x{}\n0 1", i, i + 1).unwrap();
        }
        text.push_str(".end\n");
        let net = parse_blif_reader(std::io::Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(net.inputs().len(), 1);
        assert_eq!(net.outputs().len(), 1);
        // Even depth of inverters: identity.
        assert_eq!(net.eval_comb(&[true]).unwrap(), vec![true]);
        assert_eq!(net.eval_comb(&[false]).unwrap(), vec![false]);
    }

    #[test]
    fn roundtrip_sequential() {
        let mut net = Network::new("rt");
        let a = net.add_input("a").unwrap();
        let q = net.add_latch(false);
        net.set_node_name(q, "q").unwrap();
        let g = net.add_or([a, q]).unwrap();
        net.set_latch_data(q, g).unwrap();
        net.add_output("out", g).unwrap();
        let text = write_blif(&net);
        let back = parse_blif(&text).unwrap();
        let mut s1 = crate::SequentialState::new(&net);
        let mut s2 = crate::SequentialState::new(&back);
        for a in [false, true, false, false] {
            assert_eq!(s1.step(&net, &[a]).unwrap(), s2.step(&back, &[a]).unwrap());
        }
    }
}
