use std::collections::HashSet;
use std::fmt;

use crate::error::NetlistError;
use crate::node::{Node, NodeKind};

/// Dense handle to a node inside a [`Network`].
///
/// Ids are indices into the owning network's node arena; they are only
/// meaningful for the network that created them (or for a network derived
/// from it by an operation that documents id stability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates an id from a raw arena index.
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("netlist node index exceeds u32::MAX"))
    }

    /// The raw arena index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A named primary output: a name plus the node that drives it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Output {
    /// Output port name.
    pub name: String,
    /// Driving node.
    pub driver: NodeId,
}

/// A technology-independent Boolean network.
///
/// Nodes live in an append-only arena; [`NodeId`]s index into it. The
/// combinational portion (gates) is kept acyclic by construction — a gate may
/// only reference already-created nodes — while sequential cycles are closed
/// explicitly through [`Network::set_latch_data`].
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    latches: Vec<NodeId>,
    outputs: Vec<Output>,
}

impl Network {
    /// Creates an empty network with the given model name.
    pub fn new(name: impl Into<String>) -> Self {
        Network {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            latches: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the network.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of nodes in the arena (including inputs, constants, latches).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; ids must come from this network.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All node ids in arena order (a valid construction order, hence any
    /// gate appears after its combinational fanins).
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Primary input ids, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Latch ids, in declaration order.
    pub fn latches(&self) -> &[NodeId] {
        &self.latches
    }

    /// Primary outputs, in declaration order.
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// `true` if the network has at least one latch.
    pub fn is_sequential(&self) -> bool {
        !self.latches.is_empty()
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(node);
        id
    }

    fn check_ids<'a>(&self, ids: impl IntoIterator<Item = &'a NodeId>) -> Result<(), NetlistError> {
        for &id in ids {
            if id.index() >= self.nodes.len() {
                return Err(NetlistError::UnknownNode(id));
            }
        }
        Ok(())
    }

    /// Adds a primary input with the given name.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if an input with this name
    /// already exists.
    pub fn add_input(&mut self, name: impl Into<String>) -> Result<NodeId, NetlistError> {
        let name = name.into();
        if self
            .inputs
            .iter()
            .any(|&i| self.nodes[i.index()].name.as_deref() == Some(name.as_str()))
        {
            return Err(NetlistError::DuplicateName(name));
        }
        let id = self.push(Node {
            kind: NodeKind::Input,
            fanins: Vec::new(),
            name: Some(name),
        });
        self.inputs.push(id);
        Ok(id)
    }

    /// Adds a constant node.
    pub fn add_const(&mut self, value: bool) -> NodeId {
        self.push(Node {
            kind: NodeKind::Constant(value),
            fanins: Vec::new(),
            name: None,
        })
    }

    fn add_gate(
        &mut self,
        kind: NodeKind,
        fanins: Vec<NodeId>,
        tag: &'static str,
    ) -> Result<NodeId, NetlistError> {
        if fanins.is_empty() {
            return Err(NetlistError::EmptyFanin { kind: tag });
        }
        self.check_ids(&fanins)?;
        Ok(self.push(Node {
            kind,
            fanins,
            name: None,
        }))
    }

    /// Adds an AND gate over the given fanins (≥ 1; a single fanin acts as a
    /// buffer).
    ///
    /// # Errors
    ///
    /// Returns an error if `fanins` is empty or references unknown nodes.
    pub fn add_and(
        &mut self,
        fanins: impl IntoIterator<Item = NodeId>,
    ) -> Result<NodeId, NetlistError> {
        self.add_gate(NodeKind::And, fanins.into_iter().collect(), "and")
    }

    /// Adds an OR gate over the given fanins (≥ 1; a single fanin acts as a
    /// buffer).
    ///
    /// # Errors
    ///
    /// Returns an error if `fanins` is empty or references unknown nodes.
    pub fn add_or(
        &mut self,
        fanins: impl IntoIterator<Item = NodeId>,
    ) -> Result<NodeId, NetlistError> {
        self.add_gate(NodeKind::Or, fanins.into_iter().collect(), "or")
    }

    /// Adds an inverter over `fanin`.
    ///
    /// # Errors
    ///
    /// Returns an error if `fanin` references an unknown node.
    pub fn add_not(&mut self, fanin: NodeId) -> Result<NodeId, NetlistError> {
        self.check_ids([&fanin])?;
        Ok(self.push(Node {
            kind: NodeKind::Not,
            fanins: vec![fanin],
            name: None,
        }))
    }

    /// Adds a latch (D flip-flop) with reset value `init` and *no data input
    /// yet*. Connect it later with [`Network::set_latch_data`] — this
    /// two-step protocol is what allows sequential feedback cycles to be
    /// built.
    pub fn add_latch(&mut self, init: bool) -> NodeId {
        let id = self.push(Node {
            kind: NodeKind::Latch { init },
            fanins: Vec::new(),
            name: None,
        });
        self.latches.push(id);
        id
    }

    /// Connects (or reconnects) the data input of `latch` to `data`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotALatch`] if `latch` is not a latch, or
    /// [`NetlistError::UnknownNode`] for ids outside this network.
    pub fn set_latch_data(&mut self, latch: NodeId, data: NodeId) -> Result<(), NetlistError> {
        self.check_ids([&latch, &data])?;
        let node = &mut self.nodes[latch.index()];
        if !matches!(node.kind, NodeKind::Latch { .. }) {
            return Err(NetlistError::NotALatch(latch));
        }
        node.fanins = vec![data];
        Ok(())
    }

    /// Data input of a latch, if connected.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotALatch`] if `latch` is not a latch.
    pub fn latch_data(&self, latch: NodeId) -> Result<Option<NodeId>, NetlistError> {
        let node = self
            .nodes
            .get(latch.index())
            .ok_or(NetlistError::UnknownNode(latch))?;
        if !matches!(node.kind, NodeKind::Latch { .. }) {
            return Err(NetlistError::NotALatch(latch));
        }
        Ok(node.fanins.first().copied())
    }

    /// Declares a primary output `name` driven by `driver`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if an output with this name
    /// exists, or [`NetlistError::UnknownNode`] for foreign ids.
    pub fn add_output(
        &mut self,
        name: impl Into<String>,
        driver: NodeId,
    ) -> Result<(), NetlistError> {
        self.check_ids([&driver])?;
        let name = name.into();
        if self.outputs.iter().any(|o| o.name == name) {
            return Err(NetlistError::DuplicateName(name));
        }
        self.outputs.push(Output { name, driver });
        Ok(())
    }

    /// Assigns a debug/BLIF name to a node (overwrites any existing name).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNode`] for foreign ids.
    pub fn set_node_name(
        &mut self,
        id: NodeId,
        name: impl Into<String>,
    ) -> Result<(), NetlistError> {
        self.check_ids([&id])?;
        self.nodes[id.index()].name = Some(name.into());
        Ok(())
    }

    /// Count of nodes of each gate kind `(and, or, not)`.
    pub fn gate_counts(&self) -> (usize, usize, usize) {
        let mut and = 0;
        let mut or = 0;
        let mut not = 0;
        for n in &self.nodes {
            match n.kind {
                NodeKind::And => and += 1,
                NodeKind::Or => or += 1,
                NodeKind::Not => not += 1,
                _ => {}
            }
        }
        (and, or, not)
    }

    /// Checks the structural invariants of the network:
    ///
    /// * every latch has a data input,
    /// * `Not` gates have exactly one fanin, `And`/`Or` at least one,
    /// * the combinational portion is acyclic (arena order is a topological
    ///   order by construction, but reconnection via [`Self::set_latch_data`]
    ///   cannot break this; we still verify defensively),
    /// * input/output names are unique.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let mut seen = HashSet::new();
        for &i in &self.inputs {
            let name = self.nodes[i.index()].name.clone().unwrap_or_default();
            if !seen.insert(name.clone()) {
                return Err(NetlistError::DuplicateName(name));
            }
        }
        let mut seen = HashSet::new();
        for o in &self.outputs {
            if !seen.insert(o.name.clone()) {
                return Err(NetlistError::DuplicateName(o.name.clone()));
            }
        }
        for (idx, node) in self.nodes.iter().enumerate() {
            let id = NodeId::from_index(idx);
            match node.kind {
                NodeKind::Not => {
                    if node.fanins.len() != 1 {
                        return Err(NetlistError::InvalidArity {
                            kind: "not",
                            got: node.fanins.len(),
                        });
                    }
                }
                NodeKind::And | NodeKind::Or => {
                    if node.fanins.is_empty() {
                        return Err(NetlistError::EmptyFanin {
                            kind: node.kind.tag(),
                        });
                    }
                }
                NodeKind::Latch { .. } => {
                    if node.fanins.len() != 1 {
                        return Err(NetlistError::UnconnectedLatch(id));
                    }
                }
                NodeKind::Input | NodeKind::Constant(_) => {
                    if !node.fanins.is_empty() {
                        return Err(NetlistError::InvalidArity {
                            kind: node.kind.tag(),
                            got: node.fanins.len(),
                        });
                    }
                }
            }
            for &f in &node.fanins {
                if f.index() >= self.nodes.len() {
                    return Err(NetlistError::UnknownNode(f));
                }
            }
            // Arena order is a topological order for combinational edges.
            for &f in node.comb_fanins() {
                if f.index() >= idx {
                    return Err(NetlistError::CombinationalCycle(id));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let g = net.add_and([a, b]).unwrap();
        net.add_output("f", g).unwrap();
        assert_eq!(net.len(), 3);
        assert_eq!(net.inputs().len(), 2);
        assert_eq!(net.outputs().len(), 1);
        assert_eq!(net.outputs()[0].driver, g);
        assert!(!net.is_sequential());
        net.validate().unwrap();
    }

    #[test]
    fn duplicate_input_name_rejected() {
        let mut net = Network::new("t");
        net.add_input("a").unwrap();
        assert_eq!(
            net.add_input("a"),
            Err(NetlistError::DuplicateName("a".into()))
        );
    }

    #[test]
    fn duplicate_output_name_rejected() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        net.add_output("f", a).unwrap();
        assert!(net.add_output("f", a).is_err());
    }

    #[test]
    fn empty_fanin_rejected() {
        let mut net = Network::new("t");
        assert_eq!(
            net.add_and(std::iter::empty()),
            Err(NetlistError::EmptyFanin { kind: "and" })
        );
        assert_eq!(
            net.add_or(std::iter::empty()),
            Err(NetlistError::EmptyFanin { kind: "or" })
        );
    }

    #[test]
    fn foreign_id_rejected() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let bogus = NodeId::from_index(17);
        assert_eq!(
            net.add_and([a, bogus]),
            Err(NetlistError::UnknownNode(bogus))
        );
        assert_eq!(net.add_not(bogus), Err(NetlistError::UnknownNode(bogus)));
    }

    #[test]
    fn latch_protocol() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let q = net.add_latch(false);
        // Unconnected latch fails validation.
        assert_eq!(net.validate(), Err(NetlistError::UnconnectedLatch(q)));
        // Feedback through a gate is legal.
        let g = net.add_or([a, q]).unwrap();
        net.set_latch_data(q, g).unwrap();
        net.add_output("f", g).unwrap();
        net.validate().unwrap();
        assert!(net.is_sequential());
        assert_eq!(net.latch_data(q).unwrap(), Some(g));
    }

    #[test]
    fn set_latch_data_on_non_latch_fails() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        assert_eq!(net.set_latch_data(a, b), Err(NetlistError::NotALatch(a)));
        assert_eq!(net.latch_data(a), Err(NetlistError::NotALatch(a)));
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::from_index(5).to_string(), "n5");
    }

    #[test]
    fn gate_counts() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let x = net.add_and([a, b]).unwrap();
        let y = net.add_or([a, b]).unwrap();
        let _ = net.add_not(x).unwrap();
        let _ = net.add_not(y).unwrap();
        assert_eq!(net.gate_counts(), (1, 1, 2));
    }
}
