//! Structural summary statistics used in experiment reports and workload
//! calibration.

use std::fmt;

use crate::network::Network;
use crate::node::NodeKind;

/// Summary statistics of a [`Network`].
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), domino_netlist::NetlistError> {
/// let mut net = domino_netlist::Network::new("s");
/// let a = net.add_input("a")?;
/// let b = net.add_input("b")?;
/// let g = net.add_and([a, b])?;
/// net.add_output("f", g)?;
/// let stats = domino_netlist::NetworkStats::of(&net);
/// assert_eq!(stats.inputs, 2);
/// assert_eq!(stats.ands, 1);
/// assert_eq!(stats.depth, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Latch count.
    pub latches: usize,
    /// AND gate count.
    pub ands: usize,
    /// OR gate count.
    pub ors: usize,
    /// Inverter count.
    pub nots: usize,
    /// Constant node count.
    pub constants: usize,
    /// Logic depth (max level).
    pub depth: u32,
    /// Mean fanin over AND/OR gates.
    pub avg_fanin: f64,
    /// Mean combinational fanout over all non-sink nodes.
    pub avg_fanout: f64,
}

impl NetworkStats {
    /// Computes statistics for `net`.
    pub fn of(net: &Network) -> Self {
        let mut ands = 0;
        let mut ors = 0;
        let mut nots = 0;
        let mut constants = 0;
        let mut fanin_sum = 0usize;
        for id in net.node_ids() {
            let node = net.node(id);
            match node.kind {
                NodeKind::And => {
                    ands += 1;
                    fanin_sum += node.fanins.len();
                }
                NodeKind::Or => {
                    ors += 1;
                    fanin_sum += node.fanins.len();
                }
                NodeKind::Not => nots += 1,
                NodeKind::Constant(_) => constants += 1,
                _ => {}
            }
        }
        let gate_count = ands + ors;
        let fanouts = net.fanouts();
        let (fanout_sum, fanout_nodes) = fanouts
            .iter()
            .filter(|f| !f.is_empty())
            .fold((0usize, 0usize), |(s, c), f| (s + f.len(), c + 1));
        NetworkStats {
            inputs: net.inputs().len(),
            outputs: net.outputs().len(),
            latches: net.latches().len(),
            ands,
            ors,
            nots,
            constants,
            depth: net.levels().depth(),
            avg_fanin: if gate_count == 0 {
                0.0
            } else {
                fanin_sum as f64 / gate_count as f64
            },
            avg_fanout: if fanout_nodes == 0 {
                0.0
            } else {
                fanout_sum as f64 / fanout_nodes as f64
            },
        }
    }

    /// Total gate count (AND + OR + NOT).
    pub fn gates(&self) -> usize {
        self.ands + self.ors + self.nots
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pi={} po={} ff={} and={} or={} not={} depth={} fanin={:.2} fanout={:.2}",
            self.inputs,
            self.outputs,
            self.latches,
            self.ands,
            self.ors,
            self.nots,
            self.depth,
            self.avg_fanin,
            self.avg_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_small_network() {
        let mut net = Network::new("s");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let ab = net.add_and([a, b]).unwrap();
        let abc = net.add_or([ab, c]).unwrap();
        let n = net.add_not(abc).unwrap();
        net.add_output("f", n).unwrap();
        let st = NetworkStats::of(&net);
        assert_eq!(st.inputs, 3);
        assert_eq!(st.outputs, 1);
        assert_eq!(st.gates(), 3);
        assert_eq!(st.depth, 3);
        assert!((st.avg_fanin - 2.0).abs() < 1e-12);
        let line = st.to_string();
        assert!(line.contains("pi=3"));
        assert!(line.contains("depth=3"));
    }

    #[test]
    fn stats_of_empty_network() {
        let net = Network::new("e");
        let st = NetworkStats::of(&net);
        assert_eq!(st.gates(), 0);
        assert_eq!(st.avg_fanin, 0.0);
        assert_eq!(st.avg_fanout, 0.0);
    }
}
