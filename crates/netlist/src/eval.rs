//! Functional evaluation of networks.
//!
//! [`Network::eval_comb`] evaluates a purely combinational network;
//! [`SequentialState`] steps a sequential network cycle by cycle, capturing
//! latch data at each clock edge.

use crate::error::NetlistError;
use crate::network::Network;
use crate::node::NodeKind;

impl Network {
    /// Evaluates every node given primary input values and latch states, in
    /// arena (topological) order. Returns one value per node.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if the slices do not match the
    /// input/latch counts.
    pub fn eval_nodes(
        &self,
        input_values: &[bool],
        latch_states: &[bool],
    ) -> Result<Vec<bool>, NetlistError> {
        if input_values.len() != self.inputs().len() {
            return Err(NetlistError::ArityMismatch {
                what: "primary inputs",
                expected: self.inputs().len(),
                got: input_values.len(),
            });
        }
        if latch_states.len() != self.latches().len() {
            return Err(NetlistError::ArityMismatch {
                what: "latches",
                expected: self.latches().len(),
                got: latch_states.len(),
            });
        }
        let mut values = vec![false; self.len()];
        for (&id, &v) in self.inputs().iter().zip(input_values) {
            values[id.index()] = v;
        }
        for (&id, &v) in self.latches().iter().zip(latch_states) {
            values[id.index()] = v;
        }
        for id in self.node_ids() {
            let node = self.node(id);
            let v = match node.kind {
                NodeKind::Input | NodeKind::Latch { .. } => continue,
                NodeKind::Constant(c) => c,
                NodeKind::And => node.fanins.iter().all(|f| values[f.index()]),
                NodeKind::Or => node.fanins.iter().any(|f| values[f.index()]),
                NodeKind::Not => !values[node.fanins[0].index()],
            };
            values[id.index()] = v;
        }
        Ok(values)
    }

    /// Bit-parallel variant of [`Network::eval_nodes`]: every `u64` word
    /// carries 64 independent simulation lanes, and each gate is evaluated
    /// as one word-wide boolean operation — one pass of the arena simulates
    /// 64 vectors. `values` is resized to the node count and fully
    /// overwritten (pass the same buffer across cycles to stay
    /// allocation-free).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if the slices do not match the
    /// input/latch counts.
    pub fn eval_nodes_packed(
        &self,
        input_words: &[u64],
        latch_words: &[u64],
        values: &mut Vec<u64>,
    ) -> Result<(), NetlistError> {
        if input_words.len() != self.inputs().len() {
            return Err(NetlistError::ArityMismatch {
                what: "primary inputs",
                expected: self.inputs().len(),
                got: input_words.len(),
            });
        }
        if latch_words.len() != self.latches().len() {
            return Err(NetlistError::ArityMismatch {
                what: "latches",
                expected: self.latches().len(),
                got: latch_words.len(),
            });
        }
        values.clear();
        values.resize(self.len(), 0);
        for (&id, &w) in self.inputs().iter().zip(input_words) {
            values[id.index()] = w;
        }
        for (&id, &w) in self.latches().iter().zip(latch_words) {
            values[id.index()] = w;
        }
        for id in self.node_ids() {
            let node = self.node(id);
            let w = match node.kind {
                NodeKind::Input | NodeKind::Latch { .. } => continue,
                NodeKind::Constant(c) => {
                    if c {
                        !0
                    } else {
                        0
                    }
                }
                NodeKind::And => node
                    .fanins
                    .iter()
                    .fold(!0u64, |acc, f| acc & values[f.index()]),
                NodeKind::Or => node
                    .fanins
                    .iter()
                    .fold(0u64, |acc, f| acc | values[f.index()]),
                NodeKind::Not => !values[node.fanins[0].index()],
            };
            values[id.index()] = w;
        }
        Ok(())
    }

    /// Evaluates a combinational network: returns the primary output values
    /// for the given input values.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if `input_values` does not
    /// match the input count, or if the network is sequential (latch states
    /// are required — use [`SequentialState`]).
    pub fn eval_comb(&self, input_values: &[bool]) -> Result<Vec<bool>, NetlistError> {
        let values = self.eval_nodes(input_values, &[])?;
        Ok(self
            .outputs()
            .iter()
            .map(|o| values[o.driver.index()])
            .collect())
    }
}

/// Cycle-by-cycle evaluation state for a sequential [`Network`].
///
/// # Example
///
/// ```
/// use domino_netlist::{Network, SequentialState};
///
/// # fn main() -> Result<(), domino_netlist::NetlistError> {
/// // A 1-bit toggle: q' = !q
/// let mut net = Network::new("toggle");
/// let q = net.add_latch(false);
/// let nq = net.add_not(q)?;
/// net.set_latch_data(q, nq)?;
/// net.add_output("q", q)?;
///
/// let mut st = SequentialState::new(&net);
/// assert_eq!(st.step(&net, &[])?, vec![false]);
/// assert_eq!(st.step(&net, &[])?, vec![true]);
/// assert_eq!(st.step(&net, &[])?, vec![false]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequentialState {
    states: Vec<bool>,
}

impl SequentialState {
    /// Initializes all latches to their declared reset values.
    pub fn new(net: &Network) -> Self {
        let states = net
            .latches()
            .iter()
            .map(|&l| match net.node(l).kind {
                NodeKind::Latch { init } => init,
                _ => unreachable!("latch list contains non-latch"),
            })
            .collect();
        SequentialState { states }
    }

    /// Current latch states in latch declaration order.
    pub fn states(&self) -> &[bool] {
        &self.states
    }

    /// Overrides the latch states (e.g. to explore a specific state).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] on length mismatch.
    pub fn set_states(&mut self, states: &[bool]) -> Result<(), NetlistError> {
        if states.len() != self.states.len() {
            return Err(NetlistError::ArityMismatch {
                what: "latches",
                expected: self.states.len(),
                got: states.len(),
            });
        }
        self.states.copy_from_slice(states);
        Ok(())
    }

    /// Evaluates one clock cycle: computes all node values from the current
    /// state and the given inputs, returns the primary output values, then
    /// advances every latch to its data input value.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if `input_values` is the wrong
    /// length, or [`NetlistError::UnconnectedLatch`] if a latch has no data
    /// input.
    pub fn step(
        &mut self,
        net: &Network,
        input_values: &[bool],
    ) -> Result<Vec<bool>, NetlistError> {
        let (outputs, _) = self.step_with_values(net, input_values)?;
        Ok(outputs)
    }

    /// Like [`SequentialState::step`] but also returns the value of every
    /// node this cycle (used by power measurement).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SequentialState::step`].
    pub fn step_with_values(
        &mut self,
        net: &Network,
        input_values: &[bool],
    ) -> Result<(Vec<bool>, Vec<bool>), NetlistError> {
        let values = net.eval_nodes(input_values, &self.states)?;
        let outputs = net
            .outputs()
            .iter()
            .map(|o| values[o.driver.index()])
            .collect();
        for (slot, &latch) in self.states.iter_mut().zip(net.latches()) {
            let data = net
                .node(latch)
                .fanins
                .first()
                .copied()
                .ok_or(NetlistError::UnconnectedLatch(latch))?;
            *slot = values[data.index()];
        }
        Ok((outputs, values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_comb_gates() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let and = net.add_and([a, b]).unwrap();
        let or = net.add_or([a, b]).unwrap();
        let not = net.add_not(a).unwrap();
        net.add_output("and", and).unwrap();
        net.add_output("or", or).unwrap();
        net.add_output("not", not).unwrap();
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = net.eval_comb(&[va, vb]).unwrap();
            assert_eq!(out, vec![va && vb, va || vb, !va]);
        }
    }

    #[test]
    fn packed_eval_agrees_with_scalar_lane_by_lane() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let ab = net.add_and([a, b]).unwrap();
        let nc = net.add_not(c).unwrap();
        let f = net.add_or([ab, nc]).unwrap();
        let k1 = net.add_const(true);
        let g = net.add_and([f, k1]).unwrap();
        net.add_output("g", g).unwrap();
        // 8 input patterns broadcast across lanes 0..8.
        let mut in_words = [0u64; 3];
        for lane in 0..8usize {
            for (i, w) in in_words.iter_mut().enumerate() {
                if (lane >> i) & 1 == 1 {
                    *w |= 1 << lane;
                }
            }
        }
        let mut packed = Vec::new();
        net.eval_nodes_packed(&in_words, &[], &mut packed).unwrap();
        for lane in 0..8usize {
            let bits: Vec<bool> = (0..3).map(|i| (in_words[i] >> lane) & 1 == 1).collect();
            let scalar = net.eval_nodes(&bits, &[]).unwrap();
            for id in net.node_ids() {
                assert_eq!(
                    (packed[id.index()] >> lane) & 1 == 1,
                    scalar[id.index()],
                    "lane {lane} node {}",
                    id.index()
                );
            }
        }
    }

    #[test]
    fn packed_eval_wrong_arity() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        net.add_output("f", a).unwrap();
        let mut buf = Vec::new();
        assert!(matches!(
            net.eval_nodes_packed(&[], &[], &mut buf),
            Err(NetlistError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn eval_constants() {
        let mut net = Network::new("t");
        let c0 = net.add_const(false);
        let c1 = net.add_const(true);
        net.add_output("zero", c0).unwrap();
        net.add_output("one", c1).unwrap();
        assert_eq!(net.eval_comb(&[]).unwrap(), vec![false, true]);
    }

    #[test]
    fn eval_wrong_arity() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        net.add_output("f", a).unwrap();
        assert!(matches!(
            net.eval_comb(&[]),
            Err(NetlistError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn sequential_counter() {
        // 2-bit counter: q0' = !q0; q1' = q0 XOR q1 (built from and/or/not).
        let mut net = Network::new("ctr");
        let q0 = net.add_latch(false);
        let q1 = net.add_latch(false);
        let nq0 = net.add_not(q0).unwrap();
        let nq1 = net.add_not(q1).unwrap();
        // xor = (q0 & !q1) | (!q0 & q1)
        let t1 = net.add_and([q0, nq1]).unwrap();
        let t2 = net.add_and([nq0, q1]).unwrap();
        let xor = net.add_or([t1, t2]).unwrap();
        net.set_latch_data(q0, nq0).unwrap();
        net.set_latch_data(q1, xor).unwrap();
        net.add_output("q0", q0).unwrap();
        net.add_output("q1", q1).unwrap();
        net.validate().unwrap();

        let mut st = SequentialState::new(&net);
        let mut seen = Vec::new();
        for _ in 0..5 {
            let out = st.step(&net, &[]).unwrap();
            seen.push((out[1], out[0]));
        }
        assert_eq!(
            seen,
            vec![
                (false, false),
                (false, true),
                (true, false),
                (true, true),
                (false, false)
            ]
        );
    }

    #[test]
    fn set_states_roundtrip() {
        let mut net = Network::new("t");
        let q = net.add_latch(true);
        let nq = net.add_not(q).unwrap();
        net.set_latch_data(q, nq).unwrap();
        net.add_output("q", q).unwrap();
        let mut st = SequentialState::new(&net);
        assert_eq!(st.states(), &[true]);
        st.set_states(&[false]).unwrap();
        assert_eq!(st.states(), &[false]);
        assert!(st.set_states(&[false, true]).is_err());
    }
}
