//! Boolean network infrastructure for domino logic synthesis.
//!
//! This crate provides the *technology-independent* gate-level netlist that the
//! rest of the `dominolp` workspace is built on. A [`Network`] is a directed
//! acyclic graph of [`NodeKind::And`] / [`NodeKind::Or`] / [`NodeKind::Not`]
//! gates over primary inputs, constants and clocked latches (D flip-flops).
//! Sequential circuits are modelled by latches whose data input closes a cycle
//! *through* the combinational DAG, never inside it.
//!
//! Provided services:
//!
//! * construction and validation ([`Network`], [`NetlistError`])
//! * traversal: topological order, logic levels, transitive fanin/fanout cones
//!   ([`Network::topo_order`], [`Network::transitive_fanin`], ...)
//! * functional evaluation for combinational and sequential networks
//!   ([`Network::eval_comb`], [`SequentialState`])
//! * light technology-independent optimization: constant folding, double
//!   negation removal, structural hashing ([`optimize`])
//! * BLIF reading/writing ([`parse_blif`], [`write_blif`]) and Graphviz DOT
//!   export ([`to_dot`])
//! * summary statistics ([`NetworkStats`])
//! * a stable structural digest for content-addressed result caching
//!   ([`Network::structural_digest`])
//!
//! # Example
//!
//! ```
//! use domino_netlist::{Network, NodeKind};
//!
//! # fn main() -> Result<(), domino_netlist::NetlistError> {
//! let mut net = Network::new("demo");
//! let a = net.add_input("a")?;
//! let b = net.add_input("b")?;
//! let ab = net.add_and([a, b])?;
//! let nab = net.add_not(ab)?;
//! net.add_output("nand", nab)?;
//! net.validate()?;
//! assert_eq!(net.node(ab).kind, NodeKind::And);
//! assert_eq!(net.eval_comb(&[true, true])?, vec![false]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod blif;
mod digest;
mod dot;
mod error;
mod eval;
mod network;
mod node;
mod optimize;
mod stats;
mod traversal;

pub use blif::{parse_blif, parse_blif_path, parse_blif_reader, write_blif};
pub use dot::to_dot;
pub use error::NetlistError;
pub use eval::SequentialState;
pub use network::{Network, NodeId, Output};
pub use node::{Node, NodeKind};
pub use optimize::{optimize, OptimizeReport};
pub use stats::NetworkStats;
pub use traversal::LevelMap;
