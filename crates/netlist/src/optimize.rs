//! Light technology-independent optimization.
//!
//! This is the stand-in for the paper's flow step 1 ("perform a standard
//! technology independent synthesis"): we assume the incoming network is a
//! reasonable multi-level AND/OR/NOT decomposition and clean it up with
//! constant folding, double-negation elimination, single-fanin collapse,
//! duplicate-fanin removal and structural hashing, then sweep dead logic.

use std::collections::HashMap;

use crate::network::{Network, NodeId};
use crate::node::NodeKind;

/// Summary of what [`optimize`] changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizeReport {
    /// Nodes in the input network.
    pub nodes_before: usize,
    /// Nodes in the optimized network.
    pub nodes_after: usize,
    /// Structurally duplicate gates merged.
    pub merged: usize,
    /// Constants folded through gates.
    pub folded: usize,
}

/// Structural key for hashing: kind + canonicalized fanins.
#[derive(Hash, PartialEq, Eq)]
enum Key {
    And(Vec<NodeId>),
    Or(Vec<NodeId>),
    Not(NodeId),
}

/// Rewrites `net` into an equivalent, lightly optimized network.
///
/// Applied rewrites (to fixpoint, in one topological pass over the DAG):
///
/// * constant folding: `AND(..,0,..) → 0`, `OR(..,1,..) → 1`, constants
///   dropped from fanin lists, `NOT(const) → const`
/// * `NOT(NOT(x)) → x`
/// * single-fanin `AND`/`OR` collapse to their fanin
/// * duplicate fanins removed (`AND(x,x,y) → AND(x,y)`)
/// * structural hashing: two gates with the same kind and (sorted) fanins
///   become one
/// * dead logic (unreachable from outputs/latches) is swept
///
/// Node ids are *not* stable across this call; outputs/latches/inputs are
/// preserved by name and order.
pub fn optimize(net: &Network) -> (Network, OptimizeReport) {
    let mut out = Network::new(net.name().to_string());
    let mut report = OptimizeReport {
        nodes_before: net.len(),
        ..OptimizeReport::default()
    };

    // map[old] = new id
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    let mut strash: HashMap<Key, NodeId> = HashMap::new();
    // Constants are created lazily and uniquified.
    let mut consts: [Option<NodeId>; 2] = [None, None];
    let mut konst = |out: &mut Network, v: bool| -> NodeId {
        let slot = &mut consts[v as usize];
        *slot.get_or_insert_with(|| out.add_const(v))
    };

    // First pass: inputs and latch shells (so feedback can be remapped).
    for &i in net.inputs() {
        let name = net.node(i).name.clone().unwrap_or_else(|| i.to_string());
        let ni = out
            .add_input(name)
            .expect("input names unique in valid net");
        map.insert(i, ni);
    }
    for &l in net.latches() {
        let init = match net.node(l).kind {
            NodeKind::Latch { init } => init,
            _ => unreachable!("latch list contains non-latch"),
        };
        let nl = out.add_latch(init);
        if let Some(name) = net.node(l).name.clone() {
            out.set_node_name(nl, name).expect("fresh id");
        }
        map.insert(l, nl);
    }

    // Second pass: gates in topological order.
    for id in net.topo_order() {
        let node = net.node(id);
        let new_id = match node.kind {
            NodeKind::Input | NodeKind::Latch { .. } => continue,
            NodeKind::Constant(v) => konst(&mut out, v),
            NodeKind::Not => {
                let f = map[&node.fanins[0]];
                match out.node(f).kind {
                    NodeKind::Constant(v) => {
                        report.folded += 1;
                        konst(&mut out, !v)
                    }
                    NodeKind::Not => {
                        report.folded += 1;
                        out.node(f).fanins[0]
                    }
                    _ => match strash.entry(Key::Not(f)) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            report.merged += 1;
                            *e.get()
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            let g = out.add_not(f).expect("valid fanin");
                            e.insert(g);
                            g
                        }
                    },
                }
            }
            NodeKind::And | NodeKind::Or => {
                let is_and = node.kind == NodeKind::And;
                // The value that annihilates (0 for AND, 1 for OR) and the
                // identity that is dropped (1 for AND, 0 for OR).
                let annihilator = !is_and;
                let mut fanins: Vec<NodeId> = Vec::with_capacity(node.fanins.len());
                let mut killed = false;
                for &f in &node.fanins {
                    let nf = map[&f];
                    match out.node(nf).kind {
                        NodeKind::Constant(v) if v == annihilator => {
                            killed = true;
                            break;
                        }
                        NodeKind::Constant(_) => {
                            report.folded += 1;
                        }
                        _ => fanins.push(nf),
                    }
                }
                if killed {
                    report.folded += 1;
                    konst(&mut out, annihilator)
                } else {
                    fanins.sort_unstable();
                    fanins.dedup();
                    match fanins.len() {
                        0 => {
                            // All fanins were identities: AND() = 1, OR() = 0.
                            report.folded += 1;
                            konst(&mut out, is_and)
                        }
                        1 => {
                            report.folded += 1;
                            fanins[0]
                        }
                        _ => {
                            let key = if is_and {
                                Key::And(fanins.clone())
                            } else {
                                Key::Or(fanins.clone())
                            };
                            match strash.entry(key) {
                                std::collections::hash_map::Entry::Occupied(e) => {
                                    report.merged += 1;
                                    *e.get()
                                }
                                std::collections::hash_map::Entry::Vacant(e) => {
                                    let g = if is_and {
                                        out.add_and(fanins).expect("valid fanins")
                                    } else {
                                        out.add_or(fanins).expect("valid fanins")
                                    };
                                    e.insert(g);
                                    g
                                }
                            }
                        }
                    }
                }
            }
        };
        map.insert(id, new_id);
    }

    // Reconnect latches and outputs.
    for &l in net.latches() {
        if let Some(&d) = net.node(l).fanins.first() {
            out.set_latch_data(map[&l], map[&d]).expect("mapped ids");
        }
    }
    for o in net.outputs() {
        out.add_output(o.name.clone(), map[&o.driver])
            .expect("output names unique in valid net");
    }

    let swept = sweep(&out);
    report.nodes_after = swept.len();
    (swept, report)
}

/// Removes nodes unreachable from outputs and latch data inputs, preserving
/// input/latch/output order and names. Primary inputs are always kept so the
/// interface is stable.
fn sweep(net: &Network) -> Network {
    let dead = net.dead_nodes();
    let mut out = Network::new(net.name().to_string());
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    for &i in net.inputs() {
        let name = net.node(i).name.clone().unwrap_or_else(|| i.to_string());
        map.insert(i, out.add_input(name).expect("unique"));
    }
    for &l in net.latches() {
        if dead.contains(&l) {
            continue;
        }
        let init = match net.node(l).kind {
            NodeKind::Latch { init } => init,
            _ => unreachable!(),
        };
        let nl = out.add_latch(init);
        if let Some(name) = net.node(l).name.clone() {
            out.set_node_name(nl, name).expect("fresh id");
        }
        map.insert(l, nl);
    }
    for id in net.topo_order() {
        if dead.contains(&id) || map.contains_key(&id) {
            continue;
        }
        let node = net.node(id);
        let new_id = match node.kind {
            NodeKind::Input | NodeKind::Latch { .. } => continue,
            NodeKind::Constant(v) => out.add_const(v),
            NodeKind::Not => out.add_not(map[&node.fanins[0]]).expect("mapped"),
            NodeKind::And => out
                .add_and(node.fanins.iter().map(|f| map[f]))
                .expect("mapped"),
            NodeKind::Or => out
                .add_or(node.fanins.iter().map(|f| map[f]))
                .expect("mapped"),
        };
        map.insert(id, new_id);
    }
    for &l in net.latches() {
        if dead.contains(&l) {
            continue;
        }
        if let Some(&d) = net.node(l).fanins.first() {
            out.set_latch_data(map[&l], map[&d]).expect("mapped");
        }
    }
    for o in net.outputs() {
        out.add_output(o.name.clone(), map[&o.driver])
            .expect("unique");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively checks functional equivalence of two combinational
    /// networks with the same inputs/outputs.
    fn assert_equiv(a: &Network, b: &Network) {
        let n = a.inputs().len();
        assert_eq!(n, b.inputs().len());
        assert!(n <= 12, "too many inputs for exhaustive check");
        for bits in 0u32..(1 << n) {
            let vals: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(
                a.eval_comb(&vals).unwrap(),
                b.eval_comb(&vals).unwrap(),
                "mismatch at {bits:b}"
            );
        }
    }

    #[test]
    fn folds_constants() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let c1 = net.add_const(true);
        let c0 = net.add_const(false);
        let and = net.add_and([a, c1]).unwrap(); // = a
        let or = net.add_or([and, c0]).unwrap(); // = a
        let dead = net.add_and([a, c0]).unwrap(); // = 0
        net.add_output("f", or).unwrap();
        net.add_output("z", dead).unwrap();
        let (opt, report) = optimize(&net);
        opt.validate().unwrap();
        assert_equiv(&net, &opt);
        assert!(report.folded > 0);
        // f collapses to the input, z to const 0.
        let (and, or, not) = opt.gate_counts();
        assert_eq!((and, or, not), (0, 0, 0));
    }

    #[test]
    fn removes_double_negation() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let n1 = net.add_not(a).unwrap();
        let n2 = net.add_not(n1).unwrap();
        let n3 = net.add_not(n2).unwrap();
        net.add_output("f", n3).unwrap();
        let (opt, _) = optimize(&net);
        assert_equiv(&net, &opt);
        let (_, _, not) = opt.gate_counts();
        assert_eq!(not, 1);
    }

    #[test]
    fn structural_hashing_merges() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let g1 = net.add_and([a, b]).unwrap();
        let g2 = net.add_and([b, a]).unwrap(); // same gate, permuted fanins
        let f = net.add_or([g1, g2]).unwrap(); // collapses to single fanin
        net.add_output("f", f).unwrap();
        let (opt, report) = optimize(&net);
        assert_equiv(&net, &opt);
        assert!(report.merged >= 1);
        let (and, or, _) = opt.gate_counts();
        assert_eq!((and, or), (1, 0));
    }

    #[test]
    fn dedups_fanins() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let g = net.add_and([a, a, b]).unwrap();
        net.add_output("f", g).unwrap();
        let (opt, _) = optimize(&net);
        assert_equiv(&net, &opt);
        let f = opt.outputs()[0].driver;
        assert_eq!(opt.node(f).fanins.len(), 2);
    }

    #[test]
    fn sweeps_dead_logic() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let live = net.add_and([a, b]).unwrap();
        let dead1 = net.add_or([a, b]).unwrap();
        let _dead2 = net.add_not(dead1).unwrap();
        net.add_output("f", live).unwrap();
        let (opt, report) = optimize(&net);
        assert_equiv(&net, &opt);
        assert_eq!(report.nodes_after, 3); // a, b, and
    }

    #[test]
    fn preserves_sequential_structure() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let q = net.add_latch(true);
        let nn = net.add_not(q).unwrap();
        let nnn = net.add_not(nn).unwrap(); // collapses back to q
        let g = net.add_or([a, nnn]).unwrap();
        net.set_latch_data(q, g).unwrap();
        net.add_output("f", g).unwrap();
        let (opt, _) = optimize(&net);
        opt.validate().unwrap();
        assert_eq!(opt.latches().len(), 1);
        // The not/not pair is gone.
        let (_, _, not) = opt.gate_counts();
        assert_eq!(not, 0);
    }

    #[test]
    fn all_identity_fanins_fold_to_constant() {
        let mut net = Network::new("t");
        let c1 = net.add_const(true);
        let c1b = net.add_const(true);
        let g = net.add_and([c1, c1b]).unwrap();
        net.add_output("f", g).unwrap();
        let (opt, _) = optimize(&net);
        assert_eq!(opt.eval_comb(&[]).unwrap(), vec![true]);
    }
}
