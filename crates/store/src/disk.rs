//! The shared on-disk entry discipline: checksummed self-verifying files,
//! atomic temp+rename stores, orphan-temp sweeps, quarantine of corrupt
//! entries, and oldest-first byte-budget eviction.
//!
//! This is the hardening the engine's `ResultCache` grew (atomic writes,
//! checksum-quarantine, budgets), extracted so every persistent store in
//! the workspace — the result cache and the warm-state
//! [`SnapshotStore`](crate::SnapshotStore) — runs the *same* crash-safety protocol
//! instead of a divergent copy. A [`DiskProfile`] parameterizes the parts
//! that legitimately differ per store: the magic header (which doubles as
//! the format version), the entry file extension, whether bare payloads
//! without a header pass through (legacy result-cache entries predate
//! checksumming; snapshots never had a headerless era), and the failpoint
//! site names (so chaos tests can aim at one store at a time).
//!
//! Entry layout: `<magic><fnv64 hex>\n<payload>`. The checksum line lets a
//! reader distinguish "complete entry" from torn or bit-rotted bytes
//! without trusting the payload parser to notice.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes concurrent writers' temp files (multiple workers, or
/// several processes sharing one store directory, may write at once — even
/// the same key, where last-rename-wins is fine because equal keys imply
/// equal bytes).
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// FNV-1a, the workspace's stable no-dependency hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What one store's disk entries look like and which failpoints govern
/// them. Construct as a `const` next to the store that owns it.
#[derive(Debug, Clone, Copy)]
pub struct DiskProfile {
    /// Header prefix of every entry, including a trailing space; the
    /// checksum follows it. Doubles as the format version: bump the
    /// embedded digit on incompatible changes and old entries read as
    /// corrupt (quarantined, rebuilt — never misparsed).
    pub magic: &'static str,
    /// Entry file extension (no dot). Everything else in the directory is
    /// invisible to counting, budgets and lookups.
    pub entry_ext: &'static str,
    /// Failpoint site checked before every disk read.
    pub read_failpoint: &'static str,
    /// Failpoint site checked before every disk write.
    pub write_failpoint: &'static str,
    /// Failpoint site fired between temp write and rename — simulates a
    /// crash in the exact window the atomic protocol defends (process
    /// exits 86).
    pub crash_failpoint: &'static str,
    /// When `true`, files without the magic header are returned as their
    /// own payload (entries written before checksumming existed). When
    /// `false`, a missing header is corruption.
    pub legacy_passthrough: bool,
}

/// Outcome of [`DiskProfile::read_entry`].
#[derive(Debug)]
pub enum DiskRead {
    /// No entry (or the read failed for any reason other than invalid
    /// UTF-8 — treated the same: a miss, not corruption).
    Missing,
    /// The file exists but fails verification (bad header, bad checksum,
    /// or bytes that stopped being UTF-8). The caller should quarantine
    /// it and count the eviction.
    Corrupt,
    /// A complete, checksum-verified payload.
    Payload(String),
}

impl DiskProfile {
    /// Serializes a disk entry: checksum header line, then the payload.
    pub fn encode_entry(&self, payload: &str) -> String {
        format!(
            "{}{:016x}\n{payload}",
            self.magic,
            fnv1a(payload.as_bytes())
        )
    }

    /// Splits and verifies a disk entry. `None` means corrupt (bad header,
    /// bad checksum); with `legacy_passthrough`, headerless text passes
    /// through for the payload parser to judge.
    pub fn decode_entry<'a>(&self, text: &'a str) -> Option<&'a str> {
        match text.strip_prefix(self.magic) {
            Some(rest) => {
                let (sum, payload) = rest.split_once('\n')?;
                let sum = u64::from_str_radix(sum, 16).ok()?;
                (sum == fnv1a(payload.as_bytes())).then_some(payload)
            }
            None => self.legacy_passthrough.then_some(text),
        }
    }

    /// Path of the entry for `key` (keys are lowercase hex — filesystem
    /// safe by construction).
    pub fn entry_path(&self, dir: &Path, key: &str) -> PathBuf {
        dir.join(format!("{key}.{}", self.entry_ext))
    }

    /// Reads and verifies the entry for `key`.
    pub fn read_entry(&self, dir: &Path, key: &str) -> DiskRead {
        let path = self.entry_path(dir, key);
        let read = if domino_failpoint::should_fire(self.read_failpoint) {
            Err(domino_failpoint::injected_io_error(self.read_failpoint))
        } else {
            std::fs::read_to_string(&path)
        };
        match read {
            // Entries are text; bytes that stopped being UTF-8 are bit
            // rot, not a missing file — quarantine them like any other
            // failed verification. Every other error (incl. injected
            // read failures) stays a plain miss.
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => DiskRead::Corrupt,
            Err(_) => DiskRead::Missing,
            Ok(text) => match self.decode_entry(&text) {
                Some(payload) => DiskRead::Payload(payload.to_string()),
                None => DiskRead::Corrupt,
            },
        }
    }

    /// Writes the entry for `key` **atomically**: encoded bytes go to a
    /// unique temp file first, which is then renamed over the entry path.
    /// A process killed mid-store can never leave a truncated entry —
    /// readers observe either no entry or a complete one. Returns the
    /// entry path on success; failures are best-effort-cleaned and
    /// reported as `None` (stores are accelerators, not sources of truth).
    pub fn write_entry(&self, dir: &Path, key: &str, payload: &str) -> Option<PathBuf> {
        let path = self.entry_path(dir, key);
        // The temp name's ".tmp…" suffix keeps it outside the entry
        // extension filter of the counting/clearing scans.
        let temp = dir.join(format!(
            "{key}.tmp{}-{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let text = self.encode_entry(payload);
        let written = !domino_failpoint::should_fire(self.write_failpoint)
            && std::fs::write(&temp, text).is_ok();
        if written && domino_failpoint::should_fire(self.crash_failpoint) {
            // Chaos-only: die between the temp write and the rename — the
            // exact window the atomic protocol defends. Exit code 86 marks
            // an injected crash.
            std::process::exit(86);
        }
        let stored = written && std::fs::rename(&temp, &path).is_ok();
        if !stored {
            // Failed write (disk full: a *partial* temp file) or failed
            // rename: don't leave the orphan around.
            let _ = std::fs::remove_file(&temp);
            return None;
        }
        Some(path)
    }

    /// Deletes oldest-first (by modification time) entries until the
    /// directory fits `budget` bytes. `keep` — the entry just written — is
    /// never a victim, so a store always lands even when the budget is
    /// smaller than one entry. Returns how many entries were evicted.
    /// Best-effort like disk writes: a missed eviction only delays
    /// reclamation until the next store.
    pub fn enforce_byte_budget(&self, dir: &Path, keep: &Path, budget: u64) -> u64 {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return 0;
        };
        let mut files: Vec<(std::time::SystemTime, PathBuf, u64)> = entries
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == self.entry_ext))
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().ok()?;
                Some((mtime, e.path(), meta.len()))
            })
            .collect();
        let mut total: u64 = files.iter().map(|(_, _, len)| len).sum();
        if total <= budget {
            return 0;
        }
        files.sort(); // oldest mtime first; path breaks mtime ties
        let mut evicted = 0;
        for (_, path, len) in files {
            if total <= budget {
                break;
            }
            if path == keep {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                evicted += 1;
            }
        }
        evicted
    }

    /// Number of complete entries in `dir`.
    pub fn entry_count(&self, dir: &Path) -> usize {
        std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == self.entry_ext))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Total bytes of complete entries in `dir` (temps and quarantined
    /// corpses excluded, matching the byte budget's accounting).
    pub fn entry_bytes(&self, dir: &Path) -> u64 {
        std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == self.entry_ext))
                    .filter_map(|e| e.metadata().ok())
                    .map(|m| m.len())
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Deletes every entry, orphaned temp and quarantined corpse in `dir`:
    /// clear means a pristine directory.
    ///
    /// # Errors
    ///
    /// A human-readable message when a removal fails.
    pub fn clear_dir(&self, dir: &Path) -> Result<(), String> {
        let entries = std::fs::read_dir(dir).map_err(|e| format!("reading store dir: {e}"))?;
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            let is_entry = path.extension().is_some_and(|x| x == self.entry_ext);
            let is_orphan_temp = path
                .extension()
                .and_then(|x| x.to_str())
                .is_some_and(|x| x.starts_with("tmp"));
            if is_entry || is_orphan_temp {
                std::fs::remove_file(&path)
                    .map_err(|e| format!("removing {}: {e}", path.display()))?;
            }
        }
        let _ = std::fs::remove_dir_all(dir.join("quarantine"));
        Ok(())
    }
}

/// Removes `<key>.tmp…` files left by a writer that died between its temp
/// write and the rename. Runs at store open so a restarted process starts
/// from a consistent directory: complete entries only. Sweeping a *live*
/// writer's in-flight temp (another process sharing the directory) merely
/// fails that writer's rename, which stores already swallow as a
/// best-effort write.
pub fn sweep_orphan_temps(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        let is_orphan_temp = path
            .extension()
            .and_then(|x| x.to_str())
            .is_some_and(|x| x.starts_with("tmp"));
        if is_orphan_temp {
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Moves a corrupt entry file into `<dir>/quarantine/` (falling back to
/// deletion if the move fails). Quarantined files are kept for post-mortem
/// inspection but are invisible to lookups, entry counts and byte budgets.
/// The caller counts the event.
pub fn quarantine(dir: &Path, path: &Path) {
    let qdir = dir.join("quarantine");
    let moved = match path.file_name() {
        Some(name) => {
            std::fs::create_dir_all(&qdir).is_ok() && std::fs::rename(path, qdir.join(name)).is_ok()
        }
        None => false,
    };
    if !moved {
        let _ = std::fs::remove_file(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: DiskProfile = DiskProfile {
        magic: "testmagic1 ",
        entry_ext: "ent",
        read_failpoint: "test.store.disk_read",
        write_failpoint: "test.store.disk_write",
        crash_failpoint: "test.store.crash_rename",
        legacy_passthrough: false,
    };

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dominolp-disk-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checksum_roundtrip_and_flip_detection() {
        let payload = "line one\nline two";
        let encoded = P.encode_entry(payload);
        assert_eq!(P.decode_entry(&encoded), Some(payload));
        let mut bytes = encoded.clone().into_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        let flipped = String::from_utf8(bytes).unwrap();
        assert_eq!(P.decode_entry(&flipped), None);
        // No legacy passthrough: headerless text is corrupt.
        assert_eq!(P.decode_entry(payload), None);
        // With passthrough it would be the payload itself.
        let legacy = DiskProfile {
            legacy_passthrough: true,
            ..P
        };
        assert_eq!(legacy.decode_entry(payload), Some(payload));
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = temp_dir("rw");
        assert!(matches!(P.read_entry(&dir, "abcd"), DiskRead::Missing));
        P.write_entry(&dir, "abcd", "hello").unwrap();
        match P.read_entry(&dir, "abcd") {
            DiskRead::Payload(p) => assert_eq!(p, "hello"),
            other => panic!("expected payload, got {other:?}"),
        }
        assert_eq!(P.entry_count(&dir), 1);
        assert!(P.entry_bytes(&dir) > 0);
        P.clear_dir(&dir).unwrap();
        assert_eq!(P.entry_count(&dir), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_bytes_read_as_corrupt_and_quarantine_moves_them() {
        let dir = temp_dir("torn");
        P.write_entry(&dir, "feed", "whole payload").unwrap();
        let path = P.entry_path(&dir, "feed");
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(matches!(P.read_entry(&dir, "feed"), DiskRead::Corrupt));
        quarantine(&dir, &path);
        assert!(!path.exists());
        assert!(dir.join("quarantine").join("feed.ent").exists());
        assert_eq!(P.entry_count(&dir), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn byte_budget_evicts_oldest_never_newest() {
        let dir = temp_dir("budget");
        let payload = "x".repeat(64);
        P.write_entry(&dir, "1111", &payload).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let kept = P.write_entry(&dir, "2222", &payload).unwrap();
        let one_entry = P.encode_entry(&payload).len() as u64;
        let evicted = P.enforce_byte_budget(&dir, &kept, one_entry);
        assert_eq!(evicted, 1);
        assert!(!P.entry_path(&dir, "1111").exists());
        assert!(kept.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_temps_swept_but_entries_kept() {
        let dir = temp_dir("sweep");
        P.write_entry(&dir, "aaaa", "keep me").unwrap();
        std::fs::write(dir.join("dead.tmp999-0"), "half a write").unwrap();
        sweep_orphan_temps(&dir);
        assert!(P.entry_path(&dir, "aaaa").exists());
        assert!(!dir.join("dead.tmp999-0").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
