//! Persistent warm-state snapshots for the domino flow.
//!
//! Building the BDD kernel and converging the probability tables is by far
//! the dominant cost of a flow run on large circuits — and both are pure
//! functions of the network structure, the probability configuration and
//! the primary-input probabilities. This crate makes that work *restart
//! durable*: a [`WarmSnapshot`] captures a built
//! [`CircuitBdds`] (node arenas in
//! deterministic postorder, the variable order including any post-sift
//! order, and root handles) together with the converged per-node
//! probabilities and the fixed-point power total, and a [`SnapshotStore`]
//! persists snapshots on disk in a versioned, checksummed format so a
//! restarted server answers its first request without recomputing a single
//! BDD node.
//!
//! Trust model, in layers — a snapshot is only served when every one holds:
//!
//! 1. **Container checksum** ([`DiskProfile`]): the file is a complete,
//!    untorn `dominosnap1` entry.
//! 2. **Structure digest**: the embedded BDD section rebuilds to exactly
//!    the recorded [`BddManager::digest`](domino_bdd::BddManager::digest) —
//!    node-for-node the structure that was saved.
//! 3. **Shape**: the function count matches the caller's network node
//!    count, and the probability table covers exactly those nodes.
//! 4. **Fixed-point total**: the recorded total equals the sum of
//!    [`power_to_fixed`] over the loaded probabilities, pinning the
//!    arithmetic the power model will perform downstream.
//!
//! Anything that fails any layer is quarantined and reported as a miss —
//! corrupt state is rebuilt from scratch, never served. Keys are the
//! caller's business (the engine hashes the structural digest plus the
//! canonical probability configuration); the store treats them as opaque
//! hex strings.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod disk;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use domino_bdd::circuit::CircuitBdds;
use domino_bdd::{BddStats, ReorderOutcome};
use domino_phase::power::{power_to_fixed, FixedPower};

pub use disk::{DiskProfile, DiskRead};

/// First line of every snapshot payload; the digit is the payload format
/// version. Bump it on incompatible changes: old snapshots then fail to
/// parse, get quarantined, and the flow transparently rebuilds.
pub const SNAPSHOT_HEADER: &str = "snapshot 1";

/// Disk discipline for snapshot entries. Same protocol as the engine's
/// result cache, different magic/extension/failpoints — and no legacy
/// passthrough, because snapshots never had a headerless era.
pub const SNAPSHOT_PROFILE: DiskProfile = DiskProfile {
    magic: "dominosnap1 ",
    entry_ext: "snap",
    read_failpoint: "engine.snapshot.disk_read",
    write_failpoint: "engine.snapshot.disk_write",
    crash_failpoint: "engine.snapshot.crash_rename",
    legacy_passthrough: false,
};

/// Why a snapshot payload was rejected. Every variant is handled the same
/// way by [`SnapshotStore::load`] — quarantine and rebuild — but the
/// message names the failing layer for post-mortems.
#[derive(Debug)]
pub struct SnapshotFormatError(String);

impl std::fmt::Display for SnapshotFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot rejected: {}", self.0)
    }
}

impl std::error::Error for SnapshotFormatError {}

fn malformed(msg: impl Into<String>) -> SnapshotFormatError {
    SnapshotFormatError(msg.into())
}

/// Everything the flow needs to skip the kernel stage: the built BDDs, the
/// converged probability table, and the kernel-side statistics that keep a
/// warm run's report byte-identical to the cold run that produced it.
#[derive(Debug)]
pub struct WarmSnapshot {
    /// Per-node BDDs, arena in postorder layout, variable order as built
    /// (including any post-sift order).
    pub bdds: CircuitBdds,
    /// Converged signal probability of every network node, indexed by node
    /// id — exact bits of the cold computation.
    pub probs: Vec<f64>,
    /// Total reachable BDD node count the cold run reported (the manager's
    /// arena may hold more; this is the figure that goes into reports).
    pub bdd_nodes: usize,
    /// Kernel traffic statistics from the cold build. A deserialized
    /// manager has zero traffic counters, so these ride along verbatim.
    pub bdd_stats: Option<BddStats>,
    /// Outcome of dynamic variable reordering during the cold build, when
    /// reordering was enabled.
    pub reorder: Option<ReorderOutcome>,
}

impl WarmSnapshot {
    /// The fixed-point sum of the probability table under the power
    /// model's [`power_to_fixed`] quantization. Recorded in the payload
    /// and re-verified on load.
    pub fn fixed_power_total(&self) -> FixedPower {
        self.probs.iter().map(|&p| power_to_fixed(p)).sum()
    }

    /// Serializes the snapshot payload (the checksummed container header
    /// is the [`DiskProfile`]'s job, not ours).
    pub fn to_payload(&self) -> String {
        let mut out = String::new();
        out.push_str(SNAPSHOT_HEADER);
        out.push('\n');
        out.push_str(&format!("net_nodes {}\n", self.bdds.func_count()));
        self.bdds.serialize_into(&mut out);
        out.push_str(&format!("probs {}", self.probs.len()));
        for &p in &self.probs {
            out.push_str(&format!(" {:016x}", p.to_bits()));
        }
        out.push('\n');
        out.push_str(&format!("fixed_total {}\n", self.fixed_power_total()));
        out.push_str(&format!("bdd_nodes {}\n", self.bdd_nodes));
        if let Some(s) = &self.bdd_stats {
            out.push_str(&format!(
                "stats {} {} {} {} {} {} {}\n",
                s.nodes,
                s.n_vars,
                s.cache_entries,
                s.unique_hits,
                s.unique_misses,
                s.cache_hits,
                s.cache_misses
            ));
        }
        if let Some(r) = &self.reorder {
            out.push_str(&format!(
                "reorder {} {} {} {}",
                r.swaps, r.sift_rounds, r.nodes_before, r.nodes_after
            ));
            for &v in &r.final_order {
                out.push_str(&format!(" {v}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parses and fully verifies a snapshot payload: header, section
    /// shapes, the embedded BDD section's structure digest, probability
    /// count against the recorded node count, and the fixed-point total.
    ///
    /// # Errors
    ///
    /// A [`SnapshotFormatError`] naming the failing layer.
    pub fn from_payload(payload: &str) -> Result<WarmSnapshot, SnapshotFormatError> {
        let mut lines = payload.lines();
        let header = lines.next().ok_or_else(|| malformed("empty payload"))?;
        if header != SNAPSHOT_HEADER {
            return Err(malformed(format!("unsupported header {header:?}")));
        }
        let net_nodes: usize = field(lines.next(), "net_nodes")?
            .parse()
            .map_err(|_| malformed("net_nodes is not a count"))?;

        // The BDD section is self-delimiting: it runs from its own header
        // through its `digest` line.
        let mut bdd_section = String::new();
        loop {
            let line = lines
                .next()
                .ok_or_else(|| malformed("BDD section truncated"))?;
            bdd_section.push_str(line);
            bdd_section.push('\n');
            if line.starts_with("digest ") {
                break;
            }
        }
        let bdds = CircuitBdds::deserialize_from(&bdd_section)
            .map_err(|e| malformed(format!("BDD section: {e}")))?;
        if bdds.func_count() != net_nodes {
            return Err(malformed(format!(
                "function count {} does not match recorded net_nodes {net_nodes}",
                bdds.func_count()
            )));
        }

        let probs_line = field(lines.next(), "probs")?;
        let mut toks = probs_line.split_ascii_whitespace();
        let count: usize = toks
            .next()
            .ok_or_else(|| malformed("probs line missing count"))?
            .parse()
            .map_err(|_| malformed("probs count is not a number"))?;
        if count != net_nodes {
            return Err(malformed(format!(
                "probability count {count} does not match net_nodes {net_nodes}"
            )));
        }
        let mut probs = Vec::with_capacity(count);
        for _ in 0..count {
            let bits = toks
                .next()
                .ok_or_else(|| malformed("probs line short of its count"))?;
            let bits =
                u64::from_str_radix(bits, 16).map_err(|_| malformed("probability bits not hex"))?;
            probs.push(f64::from_bits(bits));
        }
        if toks.next().is_some() {
            return Err(malformed("trailing tokens on probs line"));
        }

        let fixed_total: FixedPower = field(lines.next(), "fixed_total")?
            .parse()
            .map_err(|_| malformed("fixed_total is not an integer"))?;
        let bdd_nodes: usize = field(lines.next(), "bdd_nodes")?
            .parse()
            .map_err(|_| malformed("bdd_nodes is not a count"))?;

        let mut bdd_stats = None;
        let mut reorder = None;
        for line in lines {
            if let Some(rest) = line.strip_prefix("stats ") {
                let nums: Vec<u64> = rest
                    .split_ascii_whitespace()
                    .map(|t| t.parse().map_err(|_| malformed("stats field not a number")))
                    .collect::<Result<_, _>>()?;
                let [nodes, n_vars, cache_entries, unique_hits, unique_misses, cache_hits, cache_misses] =
                    nums[..]
                else {
                    return Err(malformed("stats line needs exactly 7 fields"));
                };
                bdd_stats = Some(BddStats {
                    nodes: nodes as usize,
                    n_vars: n_vars as usize,
                    cache_entries: cache_entries as usize,
                    unique_hits,
                    unique_misses,
                    cache_hits,
                    cache_misses,
                });
            } else if let Some(rest) = line.strip_prefix("reorder ") {
                let nums: Vec<u64> = rest
                    .split_ascii_whitespace()
                    .map(|t| {
                        t.parse()
                            .map_err(|_| malformed("reorder field not a number"))
                    })
                    .collect::<Result<_, _>>()?;
                if nums.len() < 4 {
                    return Err(malformed("reorder line needs at least 4 fields"));
                }
                reorder = Some(ReorderOutcome {
                    swaps: nums[0],
                    sift_rounds: nums[1] as u32,
                    nodes_before: nums[2] as usize,
                    nodes_after: nums[3] as usize,
                    final_order: nums[4..].iter().map(|&v| v as usize).collect(),
                });
            } else if !line.is_empty() {
                return Err(malformed(format!("unexpected trailing line {line:?}")));
            }
        }

        let snapshot = WarmSnapshot {
            bdds,
            probs,
            bdd_nodes,
            bdd_stats,
            reorder,
        };
        let actual = snapshot.fixed_power_total();
        if actual != fixed_total {
            return Err(malformed(format!(
                "fixed-point total {actual} does not match recorded {fixed_total}"
            )));
        }
        Ok(snapshot)
    }
}

fn field<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, SnapshotFormatError> {
    let line = line.ok_or_else(|| malformed(format!("missing {key} line")))?;
    line.strip_prefix(key)
        .map(str::trim_start)
        .ok_or_else(|| malformed(format!("expected {key} line, found {line:?}")))
}

/// Counters a [`SnapshotStore`] accumulates over its lifetime. Exposed
/// verbatim in the server's `/metrics` reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Loads served from a fully verified snapshot.
    pub hits: u64,
    /// Loads that found nothing servable (absent, corrupt, or shape
    /// mismatch).
    pub misses: u64,
    /// Snapshots written to disk.
    pub stores: u64,
    /// Entries quarantined because a verification layer failed.
    pub corrupt_evictions: u64,
    /// Entries evicted by the disk byte budget.
    pub disk_evictions: u64,
    /// Full kernel builds the engine performed because no snapshot was
    /// servable. The warm-restart contract is exactly `kernel_builds == 0`
    /// on a snapshot-warm first request.
    pub kernel_builds: u64,
}

/// A disk-backed store of [`WarmSnapshot`]s keyed by opaque hex strings.
///
/// Deliberately has no in-memory layer: a built `CircuitBdds` already
/// lives in the engine's result-cache value path for repeat requests
/// within a process; the snapshot store exists to survive restarts.
/// Without a directory ([`SnapshotStore::disabled`]) every operation is a
/// cheap no-op, so callers thread one unconditionally.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: Option<PathBuf>,
    disk_budget: Option<u64>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    corrupt_evictions: AtomicU64,
    disk_evictions: AtomicU64,
    kernel_builds: AtomicU64,
}

impl SnapshotStore {
    fn new(dir: Option<PathBuf>) -> SnapshotStore {
        SnapshotStore {
            dir,
            disk_budget: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            corrupt_evictions: AtomicU64::new(0),
            disk_evictions: AtomicU64::new(0),
            kernel_builds: AtomicU64::new(0),
        }
    }

    /// A store that persists nothing and serves nothing; `load` always
    /// misses (without counting it), `store` is a no-op. Lets callers
    /// avoid `Option` plumbing.
    pub fn disabled() -> SnapshotStore {
        SnapshotStore::new(None)
    }

    /// Opens (creating if needed) a snapshot directory. Orphaned temp
    /// files from writers that died mid-store are swept immediately, so
    /// the directory holds complete entries only.
    ///
    /// # Errors
    ///
    /// A human-readable message when the directory cannot be created.
    pub fn on_disk(dir: impl Into<PathBuf>) -> Result<SnapshotStore, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("creating snapshot dir {}: {e}", dir.display()))?;
        disk::sweep_orphan_temps(&dir);
        Ok(SnapshotStore::new(Some(dir)))
    }

    /// Caps the total bytes of snapshot entries on disk; oldest entries
    /// are evicted after each store until the directory fits. The entry
    /// just written is never evicted.
    #[must_use]
    pub fn with_disk_byte_budget(mut self, budget: u64) -> SnapshotStore {
        self.disk_budget = Some(budget);
        self
    }

    /// Whether this store has a backing directory.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Loads and fully verifies the snapshot under `key`. `expected_nodes`
    /// is the caller's network node count — a snapshot whose function or
    /// probability count differs is not the caller's circuit (a key
    /// collision or a stale format) and is quarantined like any other
    /// corruption. Returns `None` on any miss; the caller rebuilds and
    /// [`store`](SnapshotStore::store)s.
    pub fn load(&self, key: &str, expected_nodes: usize) -> Option<WarmSnapshot> {
        let dir = self.dir.as_ref()?;
        match SNAPSHOT_PROFILE.read_entry(dir, key) {
            DiskRead::Missing => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            DiskRead::Corrupt => {
                disk::quarantine(dir, &SNAPSHOT_PROFILE.entry_path(dir, key));
                self.corrupt_evictions.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            DiskRead::Payload(payload) => {
                let verified = WarmSnapshot::from_payload(&payload)
                    .ok()
                    .filter(|s| s.bdds.func_count() == expected_nodes);
                match verified {
                    Some(snapshot) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        Some(snapshot)
                    }
                    None => {
                        // Checksum passed but a deeper layer failed (digest,
                        // shape, fixed-point total): same treatment as torn
                        // bytes — out of the serving path, rebuilt fresh.
                        disk::quarantine(dir, &SNAPSHOT_PROFILE.entry_path(dir, key));
                        self.corrupt_evictions.fetch_add(1, Ordering::Relaxed);
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                }
            }
        }
    }

    /// Persists `snapshot` under `key` (atomic temp+rename), then enforces
    /// the disk byte budget. No-op without a directory.
    pub fn store(&self, key: &str, snapshot: &WarmSnapshot) {
        let Some(dir) = self.dir.as_ref() else {
            return;
        };
        let payload = snapshot.to_payload();
        if let Some(path) = SNAPSHOT_PROFILE.write_entry(dir, key, &payload) {
            self.stores.fetch_add(1, Ordering::Relaxed);
            if let Some(budget) = self.disk_budget {
                let evicted = SNAPSHOT_PROFILE.enforce_byte_budget(dir, &path, budget);
                self.disk_evictions.fetch_add(evicted, Ordering::Relaxed);
            }
        }
    }

    /// Records that the engine performed a full kernel build (BDD
    /// construction + probability convergence) because no snapshot was
    /// servable. Counted even when the store is disabled — the metric
    /// answers "did this process do kernel work", not "did the store".
    pub fn note_kernel_build(&self) {
        self.kernel_builds.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the lifetime counters.
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            corrupt_evictions: self.corrupt_evictions.load(Ordering::Relaxed),
            disk_evictions: self.disk_evictions.load(Ordering::Relaxed),
            kernel_builds: self.kernel_builds.load(Ordering::Relaxed),
        }
    }

    /// Number of complete snapshot entries on disk.
    pub fn disk_len(&self) -> usize {
        self.dir
            .as_ref()
            .map(|d| SNAPSHOT_PROFILE.entry_count(d))
            .unwrap_or(0)
    }

    /// Total bytes of complete snapshot entries on disk.
    pub fn disk_bytes(&self) -> u64 {
        self.dir
            .as_ref()
            .map(|d| SNAPSHOT_PROFILE.entry_bytes(d))
            .unwrap_or(0)
    }

    /// The backing directory, when enabled.
    pub fn dir(&self) -> Option<&std::path::Path> {
        self.dir.as_deref()
    }

    /// Deletes every snapshot entry, orphaned temp and quarantined corpse.
    ///
    /// # Errors
    ///
    /// A human-readable message when a removal fails.
    pub fn clear(&self) -> Result<(), String> {
        match self.dir.as_ref() {
            Some(dir) => SNAPSHOT_PROFILE.clear_dir(dir),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests;
