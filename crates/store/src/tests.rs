//! Store-level tests: payload roundtrips over random generator circuits,
//! the four verification layers, and the quarantine/rebuild contract —
//! a corrupted snapshot is never served, and after quarantine the slot
//! reads as a clean miss so the flow rebuilds from scratch.

use std::path::PathBuf;

use domino_bdd::circuit::{source_nodes, CircuitBdds};
use domino_bdd::{BddStats, ReorderConfig, ReorderMode, ReorderOutcome};
use domino_workloads::GeneratorSpec;
use proptest::prelude::*;

use crate::{SnapshotStore, WarmSnapshot, SNAPSHOT_PROFILE};

fn random_network(pis: usize, pos: usize, gates: usize, seed: u64) -> domino_netlist::Network {
    domino_workloads::generate(&GeneratorSpec::control_block(
        format!("store{seed}"),
        pis,
        pos,
        gates,
        seed,
    ))
    .expect("generator produces valid networks")
}

/// Builds the full warm state for `net` the way the engine does: BDDs
/// (optionally sifted), converged probabilities, kernel statistics.
fn warm_state(net: &domino_netlist::Network, sift: bool) -> WarmSnapshot {
    let mut bdds = CircuitBdds::build(net).unwrap();
    let reorder = sift.then(|| {
        bdds.reorder(&ReorderConfig {
            mode: ReorderMode::Sift,
            ..ReorderConfig::default()
        })
        .unwrap()
    });
    let sources = source_nodes(net);
    let probs = bdds
        .node_probabilities(net, &vec![0.5; sources.len()])
        .unwrap();
    let bdd_nodes = bdds.total_node_count();
    let stats = bdds.manager().stats();
    WarmSnapshot {
        bdds,
        probs,
        bdd_nodes,
        bdd_stats: Some(stats),
        reorder,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dominolp-store-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Serialize → deserialize over random generator circuits preserves
    /// everything observable: structure digest, node count, variable
    /// order (including post-sift), probability bits, fixed-point total,
    /// and the carried kernel statistics.
    #[test]
    fn payload_roundtrip_is_lossless(
        seed in 0u64..1000,
        pis in 4usize..10,
        pos in 1usize..4,
        gates in 8usize..40,
        sift in 0u64..2,
    ) {
        let net = random_network(pis, pos, gates, seed);
        let snapshot = warm_state(&net, sift == 1);
        let payload = snapshot.to_payload();
        let loaded = WarmSnapshot::from_payload(&payload).unwrap();

        prop_assert_eq!(loaded.bdds.bdd_digest(), snapshot.bdds.bdd_digest());
        prop_assert_eq!(loaded.bdds.func_count(), net.len());
        prop_assert_eq!(loaded.bdds.total_node_count(), snapshot.bdds.total_node_count());
        prop_assert_eq!(loaded.bdds.manager().order(), snapshot.bdds.manager().order());
        let loaded_bits: Vec<u64> = loaded.probs.iter().map(|p| p.to_bits()).collect();
        let built_bits: Vec<u64> = snapshot.probs.iter().map(|p| p.to_bits()).collect();
        prop_assert_eq!(loaded_bits, built_bits);
        prop_assert_eq!(loaded.fixed_power_total(), snapshot.fixed_power_total());
        prop_assert_eq!(loaded.bdd_nodes, snapshot.bdd_nodes);
        prop_assert_eq!(loaded.bdd_stats, snapshot.bdd_stats);
        prop_assert_eq!(loaded.reorder.clone(), snapshot.reorder.clone());

        // Reserializing the loaded snapshot is byte-identical: the
        // postorder layout is a fixpoint of deserialization.
        prop_assert_eq!(loaded.to_payload(), payload);
    }
}

#[test]
fn store_roundtrip_hits_after_restart() {
    let dir = temp_dir("roundtrip");
    let net = random_network(6, 2, 20, 7);
    let snapshot = warm_state(&net, true);

    let store = SnapshotStore::on_disk(&dir).unwrap();
    assert!(store.load("aaaa", net.len()).is_none());
    store.store("aaaa", &snapshot);
    assert_eq!(store.disk_len(), 1);
    assert!(store.disk_bytes() > 0);

    // A fresh store over the same directory — a restarted process — serves
    // the snapshot with full fidelity.
    let restarted = SnapshotStore::on_disk(&dir).unwrap();
    let loaded = restarted.load("aaaa", net.len()).unwrap();
    assert_eq!(loaded.bdds.bdd_digest(), snapshot.bdds.bdd_digest());
    assert_eq!(
        loaded.bdds.manager().order(),
        snapshot.bdds.manager().order()
    );
    assert_eq!(loaded.bdd_stats, snapshot.bdd_stats);
    assert_eq!(loaded.reorder, snapshot.reorder);
    let stats = restarted.stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.corrupt_evictions),
        (1, 0, 0)
    );
    let first = store.stats();
    assert_eq!((first.hits, first.misses, first.stores), (0, 1, 1));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_snapshot_is_quarantined_never_served() {
    let dir = temp_dir("truncated");
    let net = random_network(5, 2, 16, 11);
    let snapshot = warm_state(&net, false);
    let store = SnapshotStore::on_disk(&dir).unwrap();
    store.store("bbbb", &snapshot);

    let path = SNAPSHOT_PROFILE.entry_path(&dir, "bbbb");
    let full = std::fs::read(&path).unwrap();
    std::fs::write(&path, &full[..full.len() / 2]).unwrap();

    assert!(store.load("bbbb", net.len()).is_none());
    let stats = store.stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.corrupt_evictions),
        (0, 1, 1)
    );
    assert!(!path.exists(), "corrupt entry must leave the serving path");
    assert!(dir.join("quarantine").join("bbbb.snap").exists());
    // The slot now reads as a clean miss: the flow rebuilds and restores.
    assert!(store.load("bbbb", net.len()).is_none());
    store.store("bbbb", &snapshot);
    assert!(store.load("bbbb", net.len()).is_some());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn flipped_byte_is_quarantined() {
    let dir = temp_dir("flip");
    let net = random_network(5, 1, 14, 3);
    let snapshot = warm_state(&net, false);
    let store = SnapshotStore::on_disk(&dir).unwrap();
    store.store("cccc", &snapshot);

    let path = SNAPSHOT_PROFILE.entry_path(&dir, "cccc");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&path, bytes).unwrap();

    assert!(store.load("cccc", net.len()).is_none());
    assert_eq!(store.stats().corrupt_evictions, 1);
    assert!(!path.exists());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn non_utf8_bit_rot_is_quarantined_not_a_silent_miss() {
    // A high-bit flip makes the entry invalid UTF-8, so the read itself
    // errors before any checksum runs — that is still corruption, and it
    // must land in quarantine accounting, not masquerade as a cold miss.
    let dir = temp_dir("bitrot");
    let net = random_network(5, 1, 14, 3);
    let snapshot = warm_state(&net, false);
    let store = SnapshotStore::on_disk(&dir).unwrap();
    store.store("eeee", &snapshot);

    let path = SNAPSHOT_PROFILE.entry_path(&dir, "eeee");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, bytes).unwrap();

    assert!(store.load("eeee", net.len()).is_none());
    let stats = store.stats();
    assert_eq!(stats.corrupt_evictions, 1);
    assert!(dir.join("quarantine").join("eeee.snap").exists());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wrong_version_header_is_quarantined() {
    let dir = temp_dir("version");
    let net = random_network(4, 1, 10, 5);
    let snapshot = warm_state(&net, false);
    let store = SnapshotStore::on_disk(&dir).unwrap();

    // A future-format payload with a *valid* container checksum: the
    // container layer passes, the payload header layer must reject.
    let future = snapshot
        .to_payload()
        .replacen("snapshot 1", "snapshot 2", 1);
    let path = SNAPSHOT_PROFILE.entry_path(&dir, "dddd");
    std::fs::write(&path, SNAPSHOT_PROFILE.encode_entry(&future)).unwrap();

    assert!(store.load("dddd", net.len()).is_none());
    let stats = store.stats();
    assert_eq!((stats.hits, stats.corrupt_evictions), (0, 1));
    assert!(dir.join("quarantine").join("dddd.snap").exists());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tampered_fixed_total_is_rejected() {
    let net = random_network(5, 2, 12, 9);
    let snapshot = warm_state(&net, false);
    let payload = snapshot.to_payload();
    let recorded = snapshot.fixed_power_total();
    let tampered = payload.replacen(
        &format!("fixed_total {recorded}"),
        &format!("fixed_total {}", recorded + 1),
        1,
    );
    assert_ne!(tampered, payload);
    let err = WarmSnapshot::from_payload(&tampered).unwrap_err();
    assert!(err.to_string().contains("fixed-point total"));
}

#[test]
fn shape_mismatch_reads_as_corruption() {
    let dir = temp_dir("shape");
    let net = random_network(5, 2, 12, 2);
    let snapshot = warm_state(&net, false);
    let store = SnapshotStore::on_disk(&dir).unwrap();
    store.store("eeee", &snapshot);

    // A key collision with a different circuit: the entry verifies
    // internally but is not the caller's shape — quarantined, not served.
    assert!(store.load("eeee", net.len() + 1).is_none());
    assert_eq!(store.stats().corrupt_evictions, 1);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn disk_budget_evicts_oldest_snapshot() {
    let dir = temp_dir("budget");
    let net = random_network(5, 2, 14, 4);
    let snapshot = warm_state(&net, false);
    let one_entry = SNAPSHOT_PROFILE.encode_entry(&snapshot.to_payload()).len() as u64;
    let store = SnapshotStore::on_disk(&dir)
        .unwrap()
        .with_disk_byte_budget(one_entry);

    store.store("1111", &snapshot);
    std::thread::sleep(std::time::Duration::from_millis(20));
    store.store("2222", &snapshot);

    assert_eq!(store.disk_len(), 1);
    assert_eq!(store.stats().disk_evictions, 1);
    assert!(store.load("1111", net.len()).is_none());
    assert!(store.load("2222", net.len()).is_some());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn disabled_store_is_inert() {
    let store = SnapshotStore::disabled();
    let net = random_network(4, 1, 8, 1);
    let snapshot = warm_state(&net, false);
    assert!(!store.is_enabled());
    store.store("ffff", &snapshot);
    assert!(store.load("ffff", net.len()).is_none());
    store.note_kernel_build();
    let stats = store.stats();
    assert_eq!((stats.hits, stats.misses, stats.stores), (0, 0, 0));
    assert_eq!(stats.kernel_builds, 1);
    assert_eq!(store.disk_len(), 0);
    assert_eq!(store.disk_bytes(), 0);
    store.clear().unwrap();
}

#[test]
fn clear_removes_entries_temps_and_quarantine() {
    let dir = temp_dir("clear");
    let net = random_network(4, 1, 10, 6);
    let snapshot = warm_state(&net, false);
    let store = SnapshotStore::on_disk(&dir).unwrap();
    store.store("aa11", &snapshot);
    std::fs::write(dir.join("dead.tmp1-0"), "orphan").unwrap();
    std::fs::create_dir_all(dir.join("quarantine")).unwrap();
    std::fs::write(dir.join("quarantine").join("old.snap"), "corpse").unwrap();

    store.clear().unwrap();
    assert_eq!(store.disk_len(), 0);
    assert!(!dir.join("dead.tmp1-0").exists());
    assert!(!dir.join("quarantine").exists());

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The parsed-but-empty statistics sections stay `None` through the
/// roundtrip, and synthesized values land field-for-field.
#[test]
fn optional_sections_roundtrip_exactly() {
    let net = random_network(4, 1, 9, 8);
    let mut snapshot = warm_state(&net, false);
    snapshot.bdd_stats = None;
    snapshot.reorder = None;
    let bare = WarmSnapshot::from_payload(&snapshot.to_payload()).unwrap();
    assert_eq!(bare.bdd_stats, None);
    assert_eq!(bare.reorder, None);

    snapshot.bdd_stats = Some(BddStats {
        nodes: 12,
        n_vars: 4,
        cache_entries: 3,
        unique_hits: 100,
        unique_misses: 20,
        cache_hits: 55,
        cache_misses: 44,
    });
    snapshot.reorder = Some(ReorderOutcome {
        swaps: 9,
        sift_rounds: 2,
        nodes_before: 30,
        nodes_after: 18,
        final_order: vec![2, 0, 1, 3],
    });
    let full = WarmSnapshot::from_payload(&snapshot.to_payload()).unwrap();
    assert_eq!(full.bdd_stats, snapshot.bdd_stats);
    assert_eq!(full.reorder, snapshot.reorder);
}
