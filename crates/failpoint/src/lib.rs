//! Deterministic fault injection ("failpoints") for the serving stack.
//!
//! A *failpoint* is a named site at an I/O boundary we own — a disk
//! rename in the result cache, a socket read in the wire layer, an
//! admission decision in the job registry. In normal operation every
//! site is compiled in but **off**: the only cost is one relaxed atomic
//! load per evaluation. When a process is started with a schedule, the
//! named sites begin *firing* — injecting the failure their call site
//! implements (an I/O error, a dropped connection, a mid-write crash) —
//! on a deterministic cadence, so a chaos test that fails once fails the
//! same way every time.
//!
//! # Activation
//!
//! Per process, via environment or flag (both feed [`activate`]):
//!
//! ```text
//! DOMINO_FAILPOINTS="engine.cache.disk_write=once,serve.http.read=every(3)"
//! DOMINO_FAILPOINT_SEED=42
//! ```
//!
//! The schedule grammar per site is `off | once | every(n) | after(n)`:
//!
//! * `off` — never fires (still counts hits, so a test can assert a
//!   site was reached without injecting anything).
//! * `once` — fires on the first hit only.
//! * `every(n)` — fires on every n-th hit, at a per-site phase derived
//!   deterministically from the seed (so `every(3)` across two sites
//!   does not fire both in lockstep).
//! * `after(n)` — the first `n` hits pass, every later hit fires.
//!
//! The seed never makes a schedule random: it only rotates the phase of
//! `every(n)` sites. Identical spec + seed ⇒ identical firing sequence,
//! which is what lets a chaos run pin byte-identical recovery outcomes.
//!
//! # Reading back
//!
//! Every configured site reports `(hits, fires)` through [`snapshot`];
//! `dominod` and `dominogw` surface that under `failpoints` in their
//! `/metrics` documents.
//!
//! ```
//! use domino_failpoint::{Registry, Mode};
//!
//! let reg = Registry::parse("cache.write=every(2)", 7).unwrap();
//! let fired: Vec<bool> = (0..6).map(|_| reg.should_fire("cache.write")).collect();
//! assert_eq!(fired.iter().filter(|f| **f).count(), 3); // every 2nd hit
//! assert!(!reg.should_fire("cache.read")); // unconfigured site: never
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// Environment variable holding the failpoint schedule spec.
pub const ENV_SPEC: &str = "DOMINO_FAILPOINTS";
/// Environment variable holding the schedule seed (decimal, default 0).
pub const ENV_SEED: &str = "DOMINO_FAILPOINT_SEED";

/// When a configured site fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Never fire (hits are still counted).
    Off,
    /// Fire on the first hit only.
    Once,
    /// Fire on every n-th hit (n ≥ 1), phase-rotated by the seed.
    Every(u64),
    /// Pass the first n hits, fire on every hit after that.
    After(u64),
}

impl Mode {
    fn parse(text: &str) -> Result<Mode, String> {
        let text = text.trim();
        if text == "off" {
            return Ok(Mode::Off);
        }
        if text == "once" {
            return Ok(Mode::Once);
        }
        for (name, ctor) in [
            ("every", Mode::Every as fn(u64) -> Mode),
            ("after", Mode::After as fn(u64) -> Mode),
        ] {
            if let Some(rest) = text.strip_prefix(name) {
                let inner = rest
                    .strip_prefix('(')
                    .and_then(|r| r.strip_suffix(')'))
                    .ok_or_else(|| format!("expected {name}(n), got `{text}`"))?;
                let n: u64 = inner
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad count in `{text}`"))?;
                if name == "every" && n == 0 {
                    return Err("every(0) is not a schedule".into());
                }
                return Ok(ctor(n));
            }
        }
        Err(format!(
            "unknown mode `{text}` (want off | once | every(n) | after(n))"
        ))
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Off => write!(f, "off"),
            Mode::Once => write!(f, "once"),
            Mode::Every(n) => write!(f, "every({n})"),
            Mode::After(n) => write!(f, "after({n})"),
        }
    }
}

struct Site {
    mode: Mode,
    /// For `every(n)`: which residue of the 1-based hit index fires.
    phase: u64,
    hits: AtomicU64,
    fires: AtomicU64,
}

impl Site {
    /// Records one evaluation and decides whether it injects.
    fn evaluate(&self) -> bool {
        let hit = self.hits.fetch_add(1, Ordering::Relaxed) + 1; // 1-based
        let fire = match self.mode {
            Mode::Off => false,
            Mode::Once => hit == 1,
            Mode::Every(n) => hit % n == self.phase,
            Mode::After(n) => hit > n,
        };
        if fire {
            self.fires.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }
}

/// Point-in-time counters for one configured site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteSnapshot {
    /// The site name as configured (e.g. `engine.cache.disk_write`).
    pub site: String,
    /// The schedule this site runs (`once`, `every(3)`, ...).
    pub mode: String,
    /// How many times the site was evaluated.
    pub hits: u64,
    /// How many of those evaluations injected the fault.
    pub fires: u64,
}

/// A parsed, seeded failpoint schedule. The process-global instance
/// (see [`should_fire`]) wraps one of these; tests can also construct
/// private registries to exercise schedules hermetically.
pub struct Registry {
    sites: BTreeMap<String, Site>,
    spec: String,
    seed: u64,
}

impl Registry {
    /// Parses `site=mode[,site=mode...]`. The seed rotates the phase of
    /// each `every(n)` site deterministically (per site name).
    pub fn parse(spec: &str, seed: u64) -> Result<Registry, String> {
        let mut sites = BTreeMap::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, mode_text) = part
                .split_once('=')
                .ok_or_else(|| format!("expected site=mode, got `{part}`"))?;
            let name = name.trim();
            if name.is_empty() {
                return Err(format!("empty site name in `{part}`"));
            }
            let mode = Mode::parse(mode_text)?;
            let phase = match mode {
                Mode::Every(n) => splitmix64(seed ^ fnv1a(name.as_bytes())) % n,
                _ => 0,
            };
            sites.insert(
                name.to_string(),
                Site {
                    mode,
                    phase,
                    hits: AtomicU64::new(0),
                    fires: AtomicU64::new(0),
                },
            );
        }
        Ok(Registry {
            sites,
            spec: spec.trim().to_string(),
            seed,
        })
    }

    /// Records a hit on `site` and reports whether its schedule fires.
    /// Unconfigured sites never fire and are not tracked.
    pub fn should_fire(&self, site: &str) -> bool {
        match self.sites.get(site) {
            Some(s) => s.evaluate(),
            None => false,
        }
    }

    /// The spec string this registry was parsed from.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// The seed this registry's schedules were phased with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Counters for every configured site, in name order.
    pub fn snapshot(&self) -> Vec<SiteSnapshot> {
        self.sites
            .iter()
            .map(|(name, s)| SiteSnapshot {
                site: name.clone(),
                mode: s.mode.to_string(),
                hits: s.hits.load(Ordering::Relaxed),
                fires: s.fires.load(Ordering::Relaxed),
            })
            .collect()
    }
}

const STATE_UNINIT: u8 = 0;
const STATE_DISABLED: u8 = 1;
const STATE_ENABLED: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static GLOBAL: OnceLock<Option<Registry>> = OnceLock::new();

fn init_from_env() -> Option<Registry> {
    let spec = std::env::var(ENV_SPEC).ok()?;
    if spec.trim().is_empty() {
        return None;
    }
    let seed = std::env::var(ENV_SEED)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0);
    match Registry::parse(&spec, seed) {
        Ok(reg) => Some(reg),
        Err(e) => {
            // A malformed schedule in a chaos run must be loud, not a
            // silent no-op that "passes" by testing nothing.
            eprintln!("failpoint: ignoring malformed {ENV_SPEC}: {e}");
            None
        }
    }
}

fn global() -> Option<&'static Registry> {
    let reg = GLOBAL.get_or_init(init_from_env).as_ref();
    STATE.store(
        if reg.is_some() {
            STATE_ENABLED
        } else {
            STATE_DISABLED
        },
        Ordering::Relaxed,
    );
    reg
}

/// Activates the process-global schedule explicitly (the `--failpoints`
/// flag path). Must run before any site is evaluated; fails if a
/// different schedule (or the environment) already initialized it.
pub fn activate(spec: &str, seed: u64) -> Result<(), String> {
    let parsed = Registry::parse(spec, seed)?;
    let mut installed = false;
    let reg = GLOBAL.get_or_init(|| {
        installed = true;
        Some(parsed)
    });
    if !installed {
        return Err(match reg {
            Some(r) if r.spec() == spec.trim() && r.seed() == seed => return Ok(()),
            Some(r) => format!("failpoints already active: `{}`", r.spec()),
            None => "failpoints already initialized as disabled".into(),
        });
    }
    STATE.store(STATE_ENABLED, Ordering::Relaxed);
    Ok(())
}

/// Records a hit on `site` and reports whether the process-global
/// schedule says this hit injects its fault.
///
/// This is the hot-path entry every injection site calls. When no
/// schedule is active (the overwhelmingly common case) it is one
/// relaxed atomic load and an immediate `false`.
#[inline]
pub fn should_fire(site: &str) -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_DISABLED => false,
        STATE_ENABLED => match GLOBAL.get().and_then(|r| r.as_ref()) {
            Some(reg) => reg.should_fire(site),
            None => false,
        },
        _ => match global() {
            Some(reg) => reg.should_fire(site),
            None => false,
        },
    }
}

/// True when a process-global schedule is active.
pub fn enabled() -> bool {
    if STATE.load(Ordering::Relaxed) == STATE_UNINIT {
        global();
    }
    STATE.load(Ordering::Relaxed) == STATE_ENABLED
}

/// The active spec string, if any (for logging a reproducible header).
pub fn active_spec() -> Option<(String, u64)> {
    global().map(|r| (r.spec().to_string(), r.seed()))
}

/// Counters for the process-global schedule (empty when disabled).
pub fn snapshot() -> Vec<SiteSnapshot> {
    global().map(|r| r.snapshot()).unwrap_or_default()
}

/// Strips `--failpoints <spec>` and `--failpoint-seed <n>` from a CLI
/// argument vector and, when a spec was present, activates it — the
/// "flag" half of env/flag activation, shared by the `dominod` and
/// `dominogw` binaries so their config parsers never see the flags.
///
/// # Errors
///
/// A flag without its value, a malformed seed, a malformed spec, or a
/// schedule that conflicts with one already active.
pub fn take_cli_args(args: &mut Vec<String>) -> Result<(), String> {
    let mut spec: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut kept = Vec::with_capacity(args.len());
    let mut it = args.drain(..);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--failpoints" => {
                spec = Some(it.next().ok_or("--failpoints needs a schedule spec")?);
            }
            "--failpoint-seed" => {
                let value = it.next().ok_or("--failpoint-seed needs a number")?;
                seed = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad --failpoint-seed '{value}'"))?,
                );
            }
            _ => kept.push(arg),
        }
    }
    drop(it);
    *args = kept;
    if let Some(spec) = spec {
        activate(&spec, seed.unwrap_or(0))?;
    } else if seed.is_some() {
        return Err("--failpoint-seed without --failpoints".into());
    }
    Ok(())
}

/// Returns an `io::Error` suitable for a fired I/O-boundary site; the
/// message names the site so logs and test failures are attributable.
pub fn injected_io_error(site: &str) -> std::io::Error {
    std::io::Error::other(format!("failpoint fired: {site}"))
}

/// FNV-1a over `bytes` — the same cheap stable hash the fleet's
/// rendezvous layer uses; good enough to decorrelate site phases.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer — decorrelates the seed/site-hash mix.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_all_modes() {
        let reg = Registry::parse("a=off, b=once, c=every(3), d=after(2)", 0).unwrap();
        let snap = reg.snapshot();
        let modes: Vec<&str> = snap.iter().map(|s| s.mode.as_str()).collect();
        assert_eq!(modes, ["off", "once", "every(3)", "after(2)"]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Registry::parse("a", 0).is_err());
        assert!(Registry::parse("a=soon", 0).is_err());
        assert!(Registry::parse("a=every()", 0).is_err());
        assert!(Registry::parse("a=every(0)", 0).is_err());
        assert!(Registry::parse("=once", 0).is_err());
        assert!(Registry::parse("a=after(x)", 0).is_err());
    }

    #[test]
    fn once_fires_exactly_first_hit() {
        let reg = Registry::parse("s=once", 0).unwrap();
        let fired: Vec<bool> = (0..4).map(|_| reg.should_fire("s")).collect();
        assert_eq!(fired, [true, false, false, false]);
        let snap = &reg.snapshot()[0];
        assert_eq!((snap.hits, snap.fires), (4, 1));
    }

    #[test]
    fn after_passes_then_always_fires() {
        let reg = Registry::parse("s=after(2)", 0).unwrap();
        let fired: Vec<bool> = (0..5).map(|_| reg.should_fire("s")).collect();
        assert_eq!(fired, [false, false, true, true, true]);
    }

    #[test]
    fn every_fires_once_per_period_and_seed_rotates_phase() {
        for seed in 0..32u64 {
            let reg = Registry::parse("s=every(4)", seed).unwrap();
            let fired: Vec<bool> = (0..12).map(|_| reg.should_fire("s")).collect();
            assert_eq!(fired.iter().filter(|f| **f).count(), 3, "seed {seed}");
            // Exactly one fire in each window of 4 consecutive hits.
            for w in fired.chunks(4) {
                assert_eq!(w.iter().filter(|f| **f).count(), 1, "seed {seed}");
            }
        }
        // The phase is not globally constant across seeds.
        let phases: std::collections::BTreeSet<usize> = (0..32u64)
            .map(|seed| {
                let reg = Registry::parse("s=every(4)", seed).unwrap();
                (0..4).position(|_| reg.should_fire("s")).unwrap()
            })
            .collect();
        assert!(phases.len() > 1, "seed never rotated the phase");
    }

    #[test]
    fn same_spec_same_seed_is_deterministic() {
        let a = Registry::parse("x=every(5),y=every(5)", 99).unwrap();
        let b = Registry::parse("x=every(5),y=every(5)", 99).unwrap();
        for _ in 0..25 {
            assert_eq!(a.should_fire("x"), b.should_fire("x"));
            assert_eq!(a.should_fire("y"), b.should_fire("y"));
        }
    }

    #[test]
    fn off_counts_hits_without_firing() {
        let reg = Registry::parse("s=off", 0).unwrap();
        assert!(!reg.should_fire("s"));
        assert!(!reg.should_fire("s"));
        let snap = &reg.snapshot()[0];
        assert_eq!((snap.hits, snap.fires), (2, 0));
    }

    #[test]
    fn unconfigured_site_never_fires_nor_tracks() {
        let reg = Registry::parse("s=once", 0).unwrap();
        assert!(!reg.should_fire("other"));
        assert_eq!(reg.snapshot().len(), 1);
    }

    #[test]
    fn global_disabled_fast_path() {
        // The test process has no DOMINO_FAILPOINTS; the global entry
        // points must all report the disabled state.
        assert!(!should_fire("never.configured"));
        assert!(!enabled());
        assert!(snapshot().is_empty());
        assert!(active_spec().is_none());
    }
}
