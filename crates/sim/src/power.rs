//! Cycle-accurate power measurement of mapped domino netlists, and
//! switching-event counting on unmapped domino blocks — on the bit-parallel
//! simulation engine (64 Monte-Carlo lanes per `u64` word, every gate one
//! word-wide boolean operation).
//!
//! Energy accounting per cycle (all capacitances in fF, from the library):
//!
//! * every **domino** cell pays its clock/precharge capacitance
//!   unconditionally (the clock-loading term that makes domino expensive),
//!   and switches its full output load when it evaluates high
//!   (Property 2.1);
//! * an **input inverter** switches its load when its (stable) input
//!   differs from the previous cycle;
//! * an **output inverter** pulses with its domino driver: it switches when
//!   the driver evaluates high;
//! * a **flip-flop** pays clock capacitance every cycle and switches its
//!   output load when its state changes.
//!
//! Switching events are accumulated per cell as *integer popcounts* of the
//! packed value words and converted to `f64` exactly once at the end, so
//! totals are independent of accumulation order — the property that makes
//! the counters shardable and lets the scalar lane-by-lane
//! [`reference`](crate::reference) implementations reproduce them bit for
//! bit.
//!
//! Average capacitive current: `I_cap = C_avg · V_dd · f` (reported in mA);
//! short-circuit current is modelled as 10% of capacitive (the classic
//! rule of thumb) and leakage as a per-cell constant — giving the same
//! three-component current breakdown the paper reports from PowerMill.

use domino_phase::{DominoNetwork, PackedRailEvaluator};
use domino_techmap::{CellClass, Library, MappedNetlist, MappedRef};

use crate::packed::{broadcast, run_sharded, shard_plan, ShardSlice, SimStats, WordSchedule};
use crate::vectors::PackedVectorSource;

/// First adaptive checkpoint, in measured words per shard (128 vectors).
/// Checkpoints then *double*: a shard checks at words 2, 4, 8, 16, … — so
/// early stop stays reachable for small budgets at any shard count (a
/// fixed 16-word interval would have needed `shards × 1024` vectors before
/// the first comparison), while a long non-converging run pays only
/// `O(log words)` `finalize_power` estimate passes instead of one every
/// fixed interval. Each comparison spans half the shard's data — a
/// stronger convergence signal than equal-width windows.
const ADAPTIVE_FIRST_CHECK_WORDS: usize = 2;

/// Simulation length, seeding, and shard/thread decomposition.
///
/// # Determinism contract
///
/// Measurement results are a pure function of `(cycles, warmup, seed,
/// adaptive_tol_ppm, shards)` — everything except
/// [`threads`](SimConfig::threads), which only chooses how many OS
/// threads execute the (fixed) shard decomposition.
/// Sharded kernels accumulate integer event counters per shard and merge
/// them by addition, so `threads = 1` and `threads = 8` produce
/// bit-identical reports; the engine's cache key canonicalizes `threads`
/// away for the same reason.
///
/// # Example
///
/// ```
/// use domino_sim::SimConfig;
///
/// let cfg = SimConfig { cycles: 1 << 16, threads: 8, ..SimConfig::default() };
/// // threads is execution-only: these two configs measure identical bits.
/// let sequential = SimConfig { threads: 1, ..cfg };
/// assert_eq!(cfg.cycles, sequential.cycles);
/// assert_eq!(cfg.shards, sequential.shards); // the stream decomposition
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Measured vectors, summed over all shards. The packed engine
    /// simulates 64 lanes per word, so each shard evaluates
    /// `its cycles / 64` full words plus one partially-masked word for the
    /// remainder.
    pub cycles: usize,
    /// Warmup word-steps discarded from statistics (sequential state
    /// settling), split across the shards: each shard settles its own 64
    /// independent Monte-Carlo lane-chains for `warmup / shards` steps —
    /// at least one step whenever `warmup > 0`, so no shard measures from
    /// completely cold state. A total budget, not a per-chain depth:
    /// sequential designs whose pipelines need more than `warmup / shards`
    /// cycles to settle should scale `warmup` with the shard count. The
    /// single-stream kernels ([`montecarlo`](crate::montecarlo),
    /// [`simulate_static`](crate::simulate_static)) run all `warmup` steps
    /// on their one stream.
    pub warmup: usize,
    /// RNG seed. Shard 0 draws from `seed` itself; shard `k > 0` draws
    /// from a SplitMix64-mixed sub-seed of `(seed, k)`.
    pub seed: u64,
    /// Adaptive cycle control for [`measure_power`], in parts per million
    /// (`0` = fixed length, the default). When non-zero, each shard
    /// compares its running energy-per-cycle estimate at *doubling*
    /// checkpoints (its measured words 2, 4, 8, …) and stops early — at a
    /// word boundary, never exceeding its cycle share — once the relative
    /// change between consecutive checkpoints drops below `tol · 1e-6`.
    /// Deterministic for a given seed and shard count; the realized length
    /// is reported in [`PowerReport::cycles`] and [`PowerReport::stats`].
    pub adaptive_tol_ppm: u32,
    /// Logical shards the measurement is decomposed into (clamped to at
    /// least 1; shards that would measure zero cycles are dropped). Part
    /// of the stream definition — changing it changes the sampled vectors,
    /// bit for bit, like changing the seed would.
    pub shards: u32,
    /// OS threads executing the shards: `0` = all available CPUs. Purely
    /// an execution knob — results are bit-identical for every value.
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cycles: 4096,
            warmup: 16,
            seed: 0x00D0_1110,
            adaptive_tol_ppm: 0,
            shards: 8,
            threads: 1,
        }
    }
}

/// Measured currents, PowerMill-style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Average capacitive current, mA.
    pub cap_ma: f64,
    /// Short-circuit current, mA.
    pub short_circuit_ma: f64,
    /// Leakage current, mA.
    pub leakage_ma: f64,
    /// Measured cycles (may be less than requested under adaptive mode).
    pub cycles: usize,
    /// Total switching events observed.
    pub switch_events: u64,
    /// Packed-engine work accounting (vectors, words, lane utilization).
    pub stats: SimStats,
}

impl PowerReport {
    /// Total current (capacitive + short-circuit + leakage), mA — the
    /// "Pwr" column of Tables 1 and 2.
    pub fn total_ma(&self) -> f64 {
        self.cap_ma + self.short_circuit_ma + self.leakage_ma
    }
}

/// Load seen by each flop output rail (consumer pins), fF.
pub(crate) fn dff_source_loads(mapped: &MappedNetlist, lib: &Library) -> Vec<f64> {
    let mut source_loads = vec![0.0f64; mapped.source_count()];
    for cell in mapped.cells() {
        for &f in &cell.fanins {
            if let MappedRef::Source(i) = f {
                source_loads[i] += lib.input_cap_ff * cell.size;
            }
        }
    }
    for dff in mapped.dffs() {
        if let MappedRef::Source(i) = dff.data {
            source_loads[i] += lib.input_cap_ff * dff.size;
        }
    }
    source_loads
}

/// Integer switching-event counters of one mapped-netlist run. Totals are
/// order-independent: the packed engine and the scalar reference produce
/// identical counters for the same logical vector stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PowerCounters {
    /// Switch events per combinational cell.
    pub cell_events: Vec<u64>,
    /// State-change events per flip-flop.
    pub dff_events: Vec<u64>,
    /// Measured cycles the counters cover.
    pub measured_cycles: u64,
}

/// Converts integer counters into currents. Shared verbatim by the packed
/// engine and the scalar reference so equal counters give bit-identical
/// reports.
pub(crate) fn finalize_power(
    mapped: &MappedNetlist,
    lib: &Library,
    loads: &[f64],
    source_loads: &[f64],
    counters: &PowerCounters,
    stats: SimStats,
) -> PowerReport {
    let vdd2 = lib.vdd * lib.vdd;
    let cycles = counters.measured_cycles as f64;
    let mut energy_ffv2 = 0.0f64; // Σ C·V² in fF·V²
    let mut events = 0u64;
    for (i, cell) in mapped.cells().iter().enumerate() {
        match cell.class {
            CellClass::DominoAnd | CellClass::DominoOr | CellClass::DominoBuf => {
                energy_ffv2 += cycles * lib.clock_cap_ff * cell.size * vdd2;
                energy_ffv2 += counters.cell_events[i] as f64 * loads[i] * vdd2;
            }
            CellClass::InputInv | CellClass::OutputInv => {
                energy_ffv2 += counters.cell_events[i] as f64 * loads[i] * vdd2;
            }
            CellClass::Dff => unreachable!("flops are not in cells"),
        }
        events += counters.cell_events[i];
    }
    for (j, dff) in mapped.dffs().iter().enumerate() {
        energy_ffv2 += cycles * lib.clock_cap_ff * dff.size * vdd2;
        energy_ffv2 += counters.dff_events[j] as f64 * source_loads[dff.source_index] * vdd2;
        events += counters.dff_events[j];
    }

    // Average switched capacitance per cycle (fF) → current.
    let cavg_ff = energy_ffv2 / vdd2 / cycles;
    // I = C·V·f: fF × V × MHz × 1e-6 = mA.
    let cap_ma = cavg_ff * lib.vdd * lib.clock_mhz * 1e-6;
    let short_circuit_ma = 0.1 * cap_ma;
    let leakage_ma = mapped.cell_count() as f64 * lib.leak_ua * 1e-3;
    PowerReport {
        cap_ma,
        short_circuit_ma,
        leakage_ma,
        cycles: counters.measured_cycles as usize,
        switch_events: events,
        stats,
    }
}

/// Cell indices grouped by event rule, hoisted out of the per-word
/// counting loop: three tight popcount loops instead of a per-cell class
/// match. Shared read-only across shards.
struct CellClasses {
    domino: Vec<u32>,
    input_inv: Vec<u32>,
    output_inv: Vec<u32>,
}

impl CellClasses {
    fn of(mapped: &MappedNetlist) -> Self {
        let mut classes = CellClasses {
            domino: Vec::new(),
            input_inv: Vec::new(),
            output_inv: Vec::new(),
        };
        for (i, cell) in mapped.cells().iter().enumerate() {
            let i = i as u32;
            match cell.class {
                CellClass::DominoAnd | CellClass::DominoOr | CellClass::DominoBuf => {
                    classes.domino.push(i);
                }
                CellClass::InputInv => classes.input_inv.push(i),
                CellClass::OutputInv => classes.output_inv.push(i),
                CellClass::Dff => unreachable!("flops are not in cells"),
            }
        }
        classes
    }
}

/// One word-step of the packed mapped-netlist simulation.
struct PackedPowerSim<'a> {
    mapped: &'a MappedNetlist,
    classes: &'a CellClasses,
    vectors: PackedVectorSource,
    source_words: Vec<u64>,
    prev_cell_words: Vec<u64>,
    cell_words: Vec<u64>,
    pi_words: Vec<u64>,
    dff_next: Vec<u64>,
}

impl PackedPowerSim<'_> {
    /// Advances every lane one cycle; counts events on lanes in `mask`.
    fn step(&mut self, mask: u64, counters: &mut PowerCounters) {
        self.vectors.next_words(&mut self.pi_words);
        let pi_count = self.mapped.pi_count();
        self.source_words[..pi_count].copy_from_slice(&self.pi_words);
        self.mapped
            .eval_cells_packed(&self.source_words, &mut self.cell_words);

        if mask != 0 {
            for &i in &self.classes.domino {
                let i = i as usize;
                let events = self.cell_words[i] & mask;
                counters.cell_events[i] += u64::from(events.count_ones());
            }
            for &i in &self.classes.input_inv {
                let i = i as usize;
                let events = (self.cell_words[i] ^ self.prev_cell_words[i]) & mask;
                counters.cell_events[i] += u64::from(events.count_ones());
            }
            // Pulses with its domino driver (driver high ⇔ inverter output
            // low).
            for &i in &self.classes.output_inv {
                let i = i as usize;
                let events = !self.cell_words[i] & mask;
                counters.cell_events[i] += u64::from(events.count_ones());
            }
        }
        self.prev_cell_words.copy_from_slice(&self.cell_words);

        // Clock the flops simultaneously: every data input samples the
        // rails of *this* cycle before any flop output moves, so a flop
        // chained directly to another flop's rail sees its pre-edge value.
        for (j, dff) in self.mapped.dffs().iter().enumerate() {
            self.dff_next[j] = self
                .mapped
                .ref_word(dff.data, &self.source_words, &self.cell_words);
        }
        for (j, dff) in self.mapped.dffs().iter().enumerate() {
            if mask != 0 {
                let flips = (self.dff_next[j] ^ self.source_words[dff.source_index]) & mask;
                counters.dff_events[j] += u64::from(flips.count_ones());
            }
            self.source_words[dff.source_index] = self.dff_next[j];
        }
    }
}

/// Per-shard output of the packed power kernel, merged by addition.
struct PowerShardOutput {
    counters: PowerCounters,
    words: u64,
    measured_words: u64,
}

/// Simulates `mapped` with Bernoulli-`pi_probs` vectors on the packed
/// engine and reports average currents.
///
/// The measurement is decomposed into [`SimConfig::shards`] sub-seeded
/// shard streams executed on up to [`SimConfig::threads`] OS threads;
/// per-shard integer counters merge by addition, so the report is
/// bit-identical for every thread count (see the [`SimConfig`] determinism
/// contract).
///
/// # Panics
///
/// Panics if `pi_probs.len()` differs from the netlist's primary input
/// count.
pub fn measure_power(
    mapped: &MappedNetlist,
    lib: &Library,
    pi_probs: &[f64],
    config: &SimConfig,
) -> PowerReport {
    assert_eq!(
        pi_probs.len(),
        mapped.pi_count(),
        "one probability per primary input"
    );
    let loads = mapped.load_caps_ff(lib);
    let source_loads = dff_source_loads(mapped, lib);
    let classes = CellClasses::of(mapped);
    let plan = shard_plan(config);
    let tol = f64::from(config.adaptive_tol_ppm) * 1e-6;

    let run_shard = |slice: &ShardSlice| -> PowerShardOutput {
        let mut source_words = vec![0u64; mapped.source_count()];
        for dff in mapped.dffs() {
            source_words[dff.source_index] = broadcast(dff.init);
        }
        let mut sim = PackedPowerSim {
            mapped,
            classes: &classes,
            vectors: PackedVectorSource::new(pi_probs, slice.seed),
            source_words,
            prev_cell_words: vec![0u64; mapped.cells().len()],
            cell_words: Vec::new(),
            pi_words: vec![0u64; mapped.pi_count()],
            dff_next: vec![0u64; mapped.dffs().len()],
        };
        let mut counters = PowerCounters {
            cell_events: vec![0u64; mapped.cells().len()],
            dff_events: vec![0u64; mapped.dffs().len()],
            measured_cycles: 0,
        };

        let schedule = WordSchedule::new(slice.warmup, slice.cycles);
        for _ in 0..schedule.warmup {
            sim.step(0, &mut counters);
        }
        let mut measured_words = 0usize;
        let mut last_estimate: Option<f64> = None;
        let mut next_check = ADAPTIVE_FIRST_CHECK_WORDS;
        for k in 0..schedule.measured_words() {
            sim.step(schedule.mask(k), &mut counters);
            measured_words += 1;
            counters.measured_cycles += u64::from(schedule.mask(k).count_ones());
            // Adaptive early exit: stop this shard at a word boundary once
            // its running energy-per-cycle estimate has converged between
            // (doubling) checkpoints. Per-shard, so the decision depends
            // only on the shard's own stream — never on thread scheduling.
            if tol > 0.0 && measured_words == next_check {
                next_check *= 2;
                let estimate = finalize_power(
                    mapped,
                    lib,
                    &loads,
                    &source_loads,
                    &counters,
                    SimStats::default(),
                )
                .cap_ma;
                if let Some(prev) = last_estimate {
                    if (estimate - prev).abs() <= tol * prev.abs() {
                        break;
                    }
                }
                last_estimate = Some(estimate);
            }
        }
        PowerShardOutput {
            counters,
            words: (schedule.warmup + measured_words) as u64,
            measured_words: measured_words as u64,
        }
    };

    let outputs = run_sharded(&plan, config.threads, run_shard);
    let mut counters = PowerCounters {
        cell_events: vec![0u64; mapped.cells().len()],
        dff_events: vec![0u64; mapped.dffs().len()],
        measured_cycles: 0,
    };
    let mut stats = SimStats {
        shards: plan.len() as u64,
        ..SimStats::default()
    };
    for out in outputs {
        for (total, &events) in counters
            .cell_events
            .iter_mut()
            .zip(&out.counters.cell_events)
        {
            *total += events;
        }
        for (total, &events) in counters.dff_events.iter_mut().zip(&out.counters.dff_events) {
            *total += events;
        }
        counters.measured_cycles += out.counters.measured_cycles;
        stats.words += out.words;
        stats.measured_words += out.measured_words;
    }
    stats.vectors = counters.measured_cycles;
    finalize_power(mapped, lib, &loads, &source_loads, &counters, stats)
}

/// Per-element-class switching event averages for an (unmapped) domino
/// block: directly comparable with
/// [`estimate_power`](domino_phase::power::estimate_power) under the unit
/// power model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SwitchingCounts {
    /// Average domino gate events per cycle.
    pub block: f64,
    /// Average input-inverter toggles per cycle.
    pub input_inverters: f64,
    /// Average output-inverter pulses per cycle.
    pub output_inverters: f64,
}

impl SwitchingCounts {
    /// Total events per cycle.
    pub fn total(&self) -> f64 {
        self.block + self.input_inverters + self.output_inverters
    }
}

/// Integer switching-event counters of one domino-block run (shared by the
/// packed engine and the scalar reference).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SwitchingEventCounters {
    pub block: u64,
    pub input_inverters: u64,
    pub output_inverters: u64,
}

impl SwitchingEventCounters {
    /// Event counts → per-cycle averages, in one place so the packed and
    /// reference paths divide identically.
    pub(crate) fn per_cycle(&self, cycles: usize) -> SwitchingCounts {
        let c = cycles as f64;
        SwitchingCounts {
            block: self.block as f64 / c,
            input_inverters: self.input_inverters as f64 / c,
            output_inverters: self.output_inverters as f64 / c,
        }
    }
}

/// Positions (in source order) of the block's input-boundary inverters.
pub(crate) fn inverter_positions(domino: &DominoNetwork) -> Vec<usize> {
    domino
        .input_inverters()
        .iter()
        .map(|&inv| {
            domino
                .sources()
                .iter()
                .position(|&s| s == inv)
                .expect("inverter on known source")
        })
        .collect()
}

/// Counts model switching events on a [`DominoNetwork`] by packed
/// simulation (sequential state handled through the latch-data outputs,
/// one independent chain per lane).
///
/// Sharded and threaded exactly like [`measure_power`]: per-shard integer
/// counters merged by addition, bit-identical for every
/// [`SimConfig::threads`] value.
///
/// # Panics
///
/// Panics if `pi_probs` does not have one entry per primary input of the
/// original network.
pub fn measure_domino_switching(
    domino: &DominoNetwork,
    pi_probs: &[f64],
    config: &SimConfig,
) -> SwitchingCounts {
    let n_latches = domino.latch_inits().len();
    let n_pis = domino.sources().len() - n_latches;
    assert_eq!(pi_probs.len(), n_pis, "one probability per primary input");

    let eval = domino.packed_evaluator();
    let inverter_positions = inverter_positions(domino);
    let plan = shard_plan(config);

    let run_shard = |slice: &ShardSlice| -> SwitchingEventCounters {
        let mut vectors = PackedVectorSource::new(pi_probs, slice.seed);
        let mut source_words = vec![0u64; domino.sources().len()];
        for (i, &init) in domino.latch_inits().iter().enumerate() {
            source_words[n_pis + i] = broadcast(init);
        }
        let mut prev_source_words = source_words.clone();
        let mut pi_words = vec![0u64; n_pis];
        let mut rails: Vec<u64> = Vec::new();
        let mut out_words = vec![0u64; eval.outputs().len()];
        let mut counters = SwitchingEventCounters::default();

        let schedule = WordSchedule::new(slice.warmup, slice.cycles);
        for step in 0..schedule.total_steps() {
            let mask = schedule.step_mask(step);
            vectors.next_words(&mut pi_words);
            source_words[..n_pis].copy_from_slice(&pi_words);
            eval.eval_rails(&source_words, &mut rails);
            if mask != 0 {
                for &r in &rails {
                    counters.block += u64::from((r & mask).count_ones());
                }
                // Boundary inverters on both PI and latch rails toggle when
                // the (cycle-stable) rail value differs from the previous
                // cycle.
                for &pos in &inverter_positions {
                    let toggles = (source_words[pos] ^ prev_source_words[pos]) & mask;
                    counters.input_inverters += u64::from(toggles.count_ones());
                }
            }
            prev_source_words.copy_from_slice(&source_words);

            // Outputs: count output-inverter pulses, then clock the latches
            // simultaneously — every driver samples this cycle's rails
            // before any latch state moves (a latch fed directly by another
            // latch's rail must see its pre-edge value).
            for (k, out) in eval.outputs().iter().enumerate() {
                out_words[k] = PackedRailEvaluator::ref_word(out.driver, &source_words, &rails);
                if mask != 0 && out.negative {
                    counters.output_inverters += u64::from((out_words[k] & mask).count_ones());
                }
            }
            let mut latch_idx = 0usize;
            for (k, out) in eval.outputs().iter().enumerate() {
                if out.is_latch_data {
                    let logical = if out.negative {
                        !out_words[k]
                    } else {
                        out_words[k]
                    };
                    source_words[n_pis + latch_idx] = logical;
                    latch_idx += 1;
                }
            }
        }
        counters
    };

    let mut counters = SwitchingEventCounters::default();
    for shard in run_sharded(&plan, config.threads, run_shard) {
        counters.block += shard.block;
        counters.input_inverters += shard.input_inverters;
        counters.output_inverters += shard.output_inverters;
    }
    counters.per_cycle(config.cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::LANES;
    use domino_netlist::Network;
    use domino_phase::power::{estimate_power, PowerModel};
    use domino_phase::prob::{compute_probabilities, ProbabilityConfig};
    use domino_phase::{DominoSynthesizer, PhaseAssignment};
    use domino_techmap::map;

    fn fig5() -> Network {
        let mut net = Network::new("fig5");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let d = net.add_input("d").unwrap();
        let aob = net.add_or([a, b]).unwrap();
        let cad = net.add_and([c, d]).unwrap();
        let f = net.add_or([aob, cad]).unwrap();
        let naob = net.add_not(aob).unwrap();
        let ncad = net.add_not(cad).unwrap();
        let g = net.add_or([naob, ncad]).unwrap();
        net.add_output("f", f).unwrap();
        net.add_output("g", g).unwrap();
        net
    }

    /// The headline validation: simulated switching matches the BDD-exact
    /// estimate on the Figure 5 circuit, for both phase assignments.
    #[test]
    fn simulation_validates_bdd_estimate() {
        let net = fig5();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let pi = vec![0.9; 4];
        let probs = compute_probabilities(&net, &pi, &ProbabilityConfig::default()).unwrap();
        let cfg = SimConfig {
            cycles: 40_000,
            warmup: 16,
            seed: 11,
            ..SimConfig::default()
        };
        for bits in [0b01u64, 0b10u64] {
            let pa = PhaseAssignment::from_bits(2, bits);
            let domino = synth.synthesize(&pa).unwrap();
            let est = estimate_power(&domino, probs.as_slice(), &PowerModel::unit());
            let sim = measure_domino_switching(&domino, &pi, &cfg);
            assert!(
                (sim.block - est.block).abs() < 0.05 * est.block.max(0.1),
                "bits {bits:b}: block sim {} vs est {}",
                sim.block,
                est.block
            );
            assert!(
                (sim.total() - est.total()).abs() < 0.05 * est.total(),
                "bits {bits:b}: total sim {} vs est {}",
                sim.total(),
                est.total()
            );
        }
    }

    #[test]
    fn mapped_power_is_positive_and_scales_with_activity() {
        // A monotone positive cone: f = (a+b)+(c·d). Every domino gate's
        // evaluation probability rises with the input probability, so power
        // must too.
        let mut net = Network::new("mono");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let d = net.add_input("d").unwrap();
        let aob = net.add_or([a, b]).unwrap();
        let cad = net.add_and([c, d]).unwrap();
        let f = net.add_or([aob, cad]).unwrap();
        net.add_output("f", f).unwrap();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let domino = synth.synthesize(&PhaseAssignment::all_positive(1)).unwrap();
        let lib = domino_techmap::Library::standard();
        let mapped = map(&domino, &lib);
        let cfg = SimConfig::default();
        let low = measure_power(&mapped, &lib, &[0.1; 4], &cfg);
        let high = measure_power(&mapped, &lib, &[0.9; 4], &cfg);
        assert!(low.total_ma() > 0.0);
        assert!(high.cap_ma > low.cap_ma);
        assert!(high.switch_events > low.switch_events);
        // Components are consistent.
        assert!((high.short_circuit_ma - 0.1 * high.cap_ma).abs() < 1e-12);
        assert!(high.leakage_ma > 0.0);
        // Work accounting: 4096 cycles over 8 shards = 8 full words each,
        // plus 16 warmup words split 2 per shard.
        assert_eq!(high.stats.vectors, 4096);
        assert_eq!(high.stats.shards, 8);
        assert_eq!(high.stats.measured_words, 64);
        assert_eq!(high.stats.words, 80);
        assert!((high.stats.lane_utilization() - 1.0).abs() < 1e-12);
    }

    /// The determinism contract: the thread count must never change a bit
    /// of the report; the shard count is part of the stream definition and
    /// may.
    #[test]
    fn thread_count_never_changes_the_report() {
        let net = fig5();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let domino = synth.synthesize(&PhaseAssignment::all_positive(2)).unwrap();
        let lib = domino_techmap::Library::standard();
        let mapped = map(&domino, &lib);
        let pi = [0.7; 4];
        let base = SimConfig::default();
        let sequential = measure_power(&mapped, &lib, &pi, &SimConfig { threads: 1, ..base });
        for threads in [0, 2, 8, 64] {
            let threaded = measure_power(&mapped, &lib, &pi, &SimConfig { threads, ..base });
            assert_eq!(sequential, threaded, "threads={threads}");
            let sw_seq = measure_domino_switching(&domino, &pi, &SimConfig { threads: 1, ..base });
            let sw_par = measure_domino_switching(&domino, &pi, &SimConfig { threads, ..base });
            assert_eq!(sw_seq, sw_par, "threads={threads}");
        }
        // Different shard counts are different (but valid) measurements.
        let one_shard = measure_power(&mapped, &lib, &pi, &SimConfig { shards: 1, ..base });
        assert_eq!(one_shard.stats.shards, 1);
        assert_eq!(one_shard.cycles, sequential.cycles);
        assert!(
            (one_shard.cap_ma - sequential.cap_ma).abs() < 0.1 * sequential.cap_ma,
            "shardings are statistically consistent"
        );
    }

    #[test]
    fn partial_word_masks_remainder_lanes() {
        let net = fig5();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let domino = synth.synthesize(&PhaseAssignment::all_positive(2)).unwrap();
        let lib = domino_techmap::Library::standard();
        let mapped = map(&domino, &lib);
        let cfg = SimConfig {
            cycles: 100, // 8 shards of 12–13 lanes, each a partial word
            warmup: 2,
            ..SimConfig::default()
        };
        let report = measure_power(&mapped, &lib, &[0.5; 4], &cfg);
        assert_eq!(report.cycles, 100);
        assert_eq!(report.stats.vectors, 100);
        assert_eq!(report.stats.shards, 8);
        assert_eq!(report.stats.measured_words, 8);
        assert!(report.stats.lane_utilization() < 1.0);
    }

    #[test]
    fn adaptive_mode_stops_early_and_stays_deterministic() {
        let net = fig5();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let domino = synth.synthesize(&PhaseAssignment::all_positive(2)).unwrap();
        let lib = domino_techmap::Library::standard();
        let mapped = map(&domino, &lib);
        let fixed = SimConfig {
            cycles: 1 << 20,
            ..SimConfig::default()
        };
        let adaptive = SimConfig {
            adaptive_tol_ppm: 20_000, // 2% between 1024-vector checkpoints
            ..fixed
        };
        let full = measure_power(&mapped, &lib, &[0.5; 4], &fixed);
        let early = measure_power(&mapped, &lib, &[0.5; 4], &adaptive);
        assert!(early.cycles < full.cycles, "adaptive must stop early");
        assert_eq!(early.cycles % LANES, 0, "stops at a word boundary");
        // Converged estimate is close to the full-length measurement.
        assert!((early.cap_ma - full.cap_ma).abs() < 0.05 * full.cap_ma);
        let again = measure_power(&mapped, &lib, &[0.5; 4], &adaptive);
        assert_eq!(early, again);

        // The checkpoint interval scales with the shard count, so adaptive
        // mode must stay reachable for moderate budgets too — not just for
        // runs longer than shards × 1024 vectors.
        let moderate = measure_power(
            &mapped,
            &lib,
            &[0.5; 4],
            &SimConfig {
                cycles: 16 * 1024,
                adaptive_tol_ppm: 50_000, // 5%
                ..SimConfig::default()
            },
        );
        assert!(
            moderate.cycles < 16 * 1024,
            "moderate budget must stop early, got {}",
            moderate.cycles
        );
    }

    #[test]
    fn chained_latches_clock_simultaneously() {
        // q1' = !q1 (toggle), q2' = q1, g = q1·q2. With simultaneous
        // clocking q2 lags q1 by one cycle, so q1 and q2 are never both
        // high and the AND gate never evaluates. A flop that shoot-through
        // sampled its neighbour's *new* value would make q2 ≡ q1 and the
        // gate fire every other cycle.
        let mut net = Network::new("chain");
        let q1 = net.add_latch(false);
        let q2 = net.add_latch(false);
        let nq1 = net.add_not(q1).unwrap();
        net.set_latch_data(q1, nq1).unwrap();
        net.set_latch_data(q2, q1).unwrap();
        let g = net.add_and([q1, q2]).unwrap();
        net.add_output("g", g).unwrap();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let n = synth.view_outputs().len();
        let domino = synth.synthesize(&PhaseAssignment::all_positive(n)).unwrap();
        let cfg = SimConfig {
            cycles: 1024,
            warmup: 8,
            ..SimConfig::default()
        };
        let counts = measure_domino_switching(&domino, &[], &cfg);
        assert_eq!(counts.block, 0.0, "AND(q1, q2) must never evaluate");

        // Same invariant through mapping: the only domino cell is the AND,
        // so its load never switches and no flop pair ever agrees.
        let lib = domino_techmap::Library::standard();
        let mapped = map(&domino, &lib);
        let report = measure_power(&mapped, &lib, &[], &cfg);
        // Both flops and the !q1 input inverter toggle every cycle; the
        // AND never fires. Shoot-through clocking would add AND events on
        // half the cycles.
        assert_eq!(report.switch_events, 3 * 1024);
    }

    #[test]
    fn sequential_power_measurement_runs() {
        let mut net = Network::new("seq");
        let a = net.add_input("a").unwrap();
        let q = net.add_latch(false);
        let nq = net.add_not(q).unwrap();
        let d = net.add_and([a, nq]).unwrap();
        net.set_latch_data(q, d).unwrap();
        net.add_output("o", q).unwrap();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let domino = synth.synthesize(&PhaseAssignment::all_positive(2)).unwrap();
        let lib = domino_techmap::Library::standard();
        let mapped = map(&domino, &lib);
        let report = measure_power(&mapped, &lib, &[0.5], &SimConfig::default());
        assert!(report.total_ma() > 0.0);
        // The toggling flop generates events.
        assert!(report.switch_events > 0);
    }

    #[test]
    fn reproducible_for_fixed_seed() {
        let net = fig5();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let domino = synth.synthesize(&PhaseAssignment::all_positive(2)).unwrap();
        let lib = domino_techmap::Library::standard();
        let mapped = map(&domino, &lib);
        let cfg = SimConfig::default();
        let a = measure_power(&mapped, &lib, &[0.5; 4], &cfg);
        let b = measure_power(&mapped, &lib, &[0.5; 4], &cfg);
        assert_eq!(a, b);
    }
}
