//! Cycle-accurate power measurement of mapped domino netlists, and
//! switching-event counting on unmapped domino blocks.
//!
//! Energy accounting per cycle (all capacitances in fF, from the library):
//!
//! * every **domino** cell pays its clock/precharge capacitance
//!   unconditionally (the clock-loading term that makes domino expensive),
//!   and switches its full output load when it evaluates high
//!   (Property 2.1);
//! * an **input inverter** switches its load when its (stable) input
//!   differs from the previous cycle;
//! * an **output inverter** pulses with its domino driver: it switches when
//!   the driver evaluates high;
//! * a **flip-flop** pays clock capacitance every cycle and switches its
//!   output load when its state changes.
//!
//! Average capacitive current: `I_cap = C_avg · V_dd · f` (reported in mA);
//! short-circuit current is modelled as 10% of capacitive (the classic
//! rule of thumb) and leakage as a per-cell constant — giving the same
//! three-component current breakdown the paper reports from PowerMill.

use domino_phase::{DominoNetwork, DominoRef};
use domino_techmap::{CellClass, Library, MappedNetlist, MappedRef};

use crate::vectors::VectorSource;

/// Simulation length and seeding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Measured cycles (after warmup).
    pub cycles: usize,
    /// Warmup cycles discarded from statistics (sequential state settling).
    pub warmup: usize,
    /// RNG seed for the vector stream.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cycles: 4096,
            warmup: 64,
            seed: 0x00D0_1110,
        }
    }
}

/// Measured currents, PowerMill-style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Average capacitive current, mA.
    pub cap_ma: f64,
    /// Short-circuit current, mA.
    pub short_circuit_ma: f64,
    /// Leakage current, mA.
    pub leakage_ma: f64,
    /// Measured cycles.
    pub cycles: usize,
    /// Total switching events observed.
    pub switch_events: u64,
}

impl PowerReport {
    /// Total current (capacitive + short-circuit + leakage), mA — the
    /// "Pwr" column of Tables 1 and 2.
    pub fn total_ma(&self) -> f64 {
        self.cap_ma + self.short_circuit_ma + self.leakage_ma
    }
}

/// Simulates `mapped` with Bernoulli-`pi_probs` vectors and reports average
/// currents.
///
/// # Panics
///
/// Panics if `pi_probs.len()` differs from the netlist's primary input
/// count.
pub fn measure_power(
    mapped: &MappedNetlist,
    lib: &Library,
    pi_probs: &[f64],
    config: &SimConfig,
) -> PowerReport {
    assert_eq!(
        pi_probs.len(),
        mapped.pi_count(),
        "one probability per primary input"
    );
    let loads = mapped.load_caps_ff(lib);
    // Load seen by each flop output rail (consumer pins).
    let mut source_loads = vec![0.0f64; mapped.source_count()];
    for cell in mapped.cells() {
        for &f in &cell.fanins {
            if let MappedRef::Source(i) = f {
                source_loads[i] += lib.input_cap_ff * cell.size;
            }
        }
    }
    for dff in mapped.dffs() {
        if let MappedRef::Source(i) = dff.data {
            source_loads[i] += lib.input_cap_ff * dff.size;
        }
    }

    let mut vectors = VectorSource::new(pi_probs.to_vec(), config.seed);
    let mut sources = vec![false; mapped.source_count()];
    for dff in mapped.dffs() {
        sources[dff.source_index] = dff.init;
    }
    let mut prev_cells: Vec<bool> = vec![false; mapped.cells().len()];
    let mut energy_ffv2 = 0.0f64; // Σ C·V² in fF·V²
    let mut events = 0u64;

    let total = config.warmup + config.cycles;
    for cycle in 0..total {
        let measuring = cycle >= config.warmup;
        // Sample primary inputs; flop rails persist from last state update.
        let mut pis = vec![false; mapped.pi_count()];
        vectors.fill_next(&mut pis);
        sources[..mapped.pi_count()].copy_from_slice(&pis);
        let values = mapped.eval_cells(&sources);

        if measuring {
            for (i, cell) in mapped.cells().iter().enumerate() {
                match cell.class {
                    CellClass::DominoAnd | CellClass::DominoOr | CellClass::DominoBuf => {
                        energy_ffv2 += lib.clock_cap_ff * cell.size * lib.vdd * lib.vdd;
                        if values[i] {
                            energy_ffv2 += loads[i] * lib.vdd * lib.vdd;
                            events += 1;
                        }
                    }
                    CellClass::InputInv => {
                        if values[i] != prev_cells[i] {
                            energy_ffv2 += loads[i] * lib.vdd * lib.vdd;
                            events += 1;
                        }
                    }
                    CellClass::OutputInv => {
                        // Pulses with its domino driver.
                        let driver_high = !values[i];
                        if driver_high {
                            energy_ffv2 += loads[i] * lib.vdd * lib.vdd;
                            events += 1;
                        }
                    }
                    CellClass::Dff => unreachable!("flops are not in cells"),
                }
            }
        }
        prev_cells = values.clone();

        // Clock the flops.
        for dff in mapped.dffs() {
            let next = mapped.ref_value(dff.data, &sources, &values);
            if measuring {
                energy_ffv2 += lib.clock_cap_ff * dff.size * lib.vdd * lib.vdd;
                if next != sources[dff.source_index] {
                    energy_ffv2 += source_loads[dff.source_index] * lib.vdd * lib.vdd;
                    events += 1;
                }
            }
            sources[dff.source_index] = next;
        }
    }

    // Average switched capacitance per cycle (fF) → current.
    let cavg_ff = energy_ffv2 / (lib.vdd * lib.vdd) / config.cycles as f64;
    // I = C·V·f: fF × V × MHz × 1e-6 = mA.
    let cap_ma = cavg_ff * lib.vdd * lib.clock_mhz * 1e-6;
    let short_circuit_ma = 0.1 * cap_ma;
    let leakage_ma = mapped.cell_count() as f64 * lib.leak_ua * 1e-3;
    PowerReport {
        cap_ma,
        short_circuit_ma,
        leakage_ma,
        cycles: config.cycles,
        switch_events: events,
    }
}

/// Per-element-class switching event averages for an (unmapped) domino
/// block: directly comparable with
/// [`estimate_power`](domino_phase::power::estimate_power) under the unit
/// power model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SwitchingCounts {
    /// Average domino gate events per cycle.
    pub block: f64,
    /// Average input-inverter toggles per cycle.
    pub input_inverters: f64,
    /// Average output-inverter pulses per cycle.
    pub output_inverters: f64,
}

impl SwitchingCounts {
    /// Total events per cycle.
    pub fn total(&self) -> f64 {
        self.block + self.input_inverters + self.output_inverters
    }
}

/// Counts model switching events on a [`DominoNetwork`] by simulation
/// (sequential state handled through the latch-data outputs).
///
/// # Panics
///
/// Panics if `pi_probs` does not have one entry per primary input of the
/// original network.
pub fn measure_domino_switching(
    domino: &DominoNetwork,
    pi_probs: &[f64],
    config: &SimConfig,
) -> SwitchingCounts {
    let n_latches = domino.latch_inits().len();
    let n_pis = domino.sources().len() - n_latches;
    assert_eq!(pi_probs.len(), n_pis, "one probability per primary input");

    let mut vectors = VectorSource::new(pi_probs.to_vec(), config.seed);
    let mut sources = vec![false; domino.sources().len()];
    for (i, &init) in domino.latch_inits().iter().enumerate() {
        sources[n_pis + i] = init;
    }
    let mut prev_sources = sources.clone();
    let mut counts = SwitchingCounts::default();
    let inverter_positions: Vec<usize> = domino
        .input_inverters()
        .iter()
        .map(|&inv| {
            domino
                .sources()
                .iter()
                .position(|&s| s == inv)
                .expect("inverter on known source")
        })
        .collect();

    let total = config.warmup + config.cycles;
    for cycle in 0..total {
        let measuring = cycle >= config.warmup;
        let mut pis = vec![false; n_pis];
        vectors.fill_next(&mut pis);
        sources[..n_pis].copy_from_slice(&pis);
        let rails = domino
            .eval_rails(&sources)
            .expect("source width matches by construction");
        if measuring {
            for &v in &rails {
                if v {
                    counts.block += 1.0;
                }
            }
            // Boundary inverters on both PI and latch rails toggle when the
            // (cycle-stable) rail value differs from the previous cycle.
            for &pos in &inverter_positions {
                if sources[pos] != prev_sources[pos] {
                    counts.input_inverters += 1.0;
                }
            }
        }
        prev_sources.copy_from_slice(&sources);

        // Outputs: count output-inverter pulses and update latch state.
        let mut latch_idx = 0usize;
        for out in domino.outputs() {
            let block_value = match out.driver {
                DominoRef::Gate(i) => rails[i],
                DominoRef::Source { node, complemented } => {
                    let pos = domino
                        .sources()
                        .iter()
                        .position(|&s| s == node)
                        .expect("known source");
                    sources[pos] ^ complemented
                }
                DominoRef::Constant(v) => v,
            };
            if measuring && out.phase.is_negative() && block_value {
                counts.output_inverters += 1.0;
            }
            let logical = if out.phase.is_negative() {
                !block_value
            } else {
                block_value
            };
            if out.is_latch_data {
                sources[n_pis + latch_idx] = logical;
                latch_idx += 1;
            }
        }
    }

    let c = config.cycles as f64;
    counts.block /= c;
    counts.input_inverters /= c;
    counts.output_inverters /= c;
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_netlist::Network;
    use domino_phase::power::{estimate_power, PowerModel};
    use domino_phase::prob::{compute_probabilities, ProbabilityConfig};
    use domino_phase::{DominoSynthesizer, PhaseAssignment};
    use domino_techmap::map;

    fn fig5() -> Network {
        let mut net = Network::new("fig5");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let d = net.add_input("d").unwrap();
        let aob = net.add_or([a, b]).unwrap();
        let cad = net.add_and([c, d]).unwrap();
        let f = net.add_or([aob, cad]).unwrap();
        let naob = net.add_not(aob).unwrap();
        let ncad = net.add_not(cad).unwrap();
        let g = net.add_or([naob, ncad]).unwrap();
        net.add_output("f", f).unwrap();
        net.add_output("g", g).unwrap();
        net
    }

    /// The headline validation: simulated switching matches the BDD-exact
    /// estimate on the Figure 5 circuit, for both phase assignments.
    #[test]
    fn simulation_validates_bdd_estimate() {
        let net = fig5();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let pi = vec![0.9; 4];
        let probs = compute_probabilities(&net, &pi, &ProbabilityConfig::default()).unwrap();
        let cfg = SimConfig {
            cycles: 40_000,
            warmup: 16,
            seed: 11,
        };
        for bits in [0b01u64, 0b10u64] {
            let pa = PhaseAssignment::from_bits(2, bits);
            let domino = synth.synthesize(&pa).unwrap();
            let est = estimate_power(&domino, probs.as_slice(), &PowerModel::unit());
            let sim = measure_domino_switching(&domino, &pi, &cfg);
            assert!(
                (sim.block - est.block).abs() < 0.05 * est.block.max(0.1),
                "bits {bits:b}: block sim {} vs est {}",
                sim.block,
                est.block
            );
            assert!(
                (sim.total() - est.total()).abs() < 0.05 * est.total(),
                "bits {bits:b}: total sim {} vs est {}",
                sim.total(),
                est.total()
            );
        }
    }

    #[test]
    fn mapped_power_is_positive_and_scales_with_activity() {
        // A monotone positive cone: f = (a+b)+(c·d). Every domino gate's
        // evaluation probability rises with the input probability, so power
        // must too.
        let mut net = Network::new("mono");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let d = net.add_input("d").unwrap();
        let aob = net.add_or([a, b]).unwrap();
        let cad = net.add_and([c, d]).unwrap();
        let f = net.add_or([aob, cad]).unwrap();
        net.add_output("f", f).unwrap();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let domino = synth.synthesize(&PhaseAssignment::all_positive(1)).unwrap();
        let lib = domino_techmap::Library::standard();
        let mapped = map(&domino, &lib);
        let cfg = SimConfig::default();
        let low = measure_power(&mapped, &lib, &[0.1; 4], &cfg);
        let high = measure_power(&mapped, &lib, &[0.9; 4], &cfg);
        assert!(low.total_ma() > 0.0);
        assert!(high.cap_ma > low.cap_ma);
        assert!(high.switch_events > low.switch_events);
        // Components are consistent.
        assert!((high.short_circuit_ma - 0.1 * high.cap_ma).abs() < 1e-12);
        assert!(high.leakage_ma > 0.0);
    }

    #[test]
    fn sequential_power_measurement_runs() {
        let mut net = Network::new("seq");
        let a = net.add_input("a").unwrap();
        let q = net.add_latch(false);
        let nq = net.add_not(q).unwrap();
        let d = net.add_and([a, nq]).unwrap();
        net.set_latch_data(q, d).unwrap();
        net.add_output("o", q).unwrap();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let domino = synth.synthesize(&PhaseAssignment::all_positive(2)).unwrap();
        let lib = domino_techmap::Library::standard();
        let mapped = map(&domino, &lib);
        let report = measure_power(&mapped, &lib, &[0.5], &SimConfig::default());
        assert!(report.total_ma() > 0.0);
        // The toggling flop generates events.
        assert!(report.switch_events > 0);
    }

    #[test]
    fn reproducible_for_fixed_seed() {
        let net = fig5();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let domino = synth.synthesize(&PhaseAssignment::all_positive(2)).unwrap();
        let lib = domino_techmap::Library::standard();
        let mapped = map(&domino, &lib);
        let cfg = SimConfig::default();
        let a = measure_power(&mapped, &lib, &[0.5; 4], &cfg);
        let b = measure_power(&mapped, &lib, &[0.5; 4], &cfg);
        assert_eq!(a, b);
    }
}
