//! Statistical vector simulation and power measurement — the stand-in for
//! the paper's EPIC PowerMill runs.
//!
//! The paper measures final power by simulating the mapped netlist with
//! "statistically generated input vectors with the appropriate signal
//! probabilities". This crate reproduces that methodology:
//!
//! * [`VectorSource`] — seeded Bernoulli vector streams with per-input
//!   probabilities;
//! * [`measure_power`] — cycle-accurate simulation of a mapped netlist with
//!   capacitive, short-circuit and leakage currents reported in mA
//!   (Property 2.2 makes zero-delay simulation *exact* for domino
//!   switching);
//! * [`measure_domino_switching`] — event counts on the unmapped
//!   [`DominoNetwork`](domino_phase::DominoNetwork), used to validate the
//!   BDD-based estimate `Σ S·C·P` against simulation;
//! * [`montecarlo`] — sampled node probabilities, the cross-check for the
//!   exact BDD probabilities;
//! * [`simulate_static`] — a unit-delay event-driven simulation of the
//!   *static CMOS* realization, which glitches; the contrast quantifies
//!   Property 2.2 and the Figure 2 switching models.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod montecarlo;
mod power;
mod static_sim;
mod vectors;

pub use power::{measure_domino_switching, measure_power, PowerReport, SimConfig, SwitchingCounts};
pub use static_sim::{simulate_static, StaticSimReport};
pub use vectors::{CorrelatedVectorSource, VectorSource};
