//! Statistical vector simulation and power measurement — the stand-in for
//! the paper's EPIC PowerMill runs.
//!
//! The paper measures final power by simulating the mapped netlist with
//! "statistically generated input vectors with the appropriate signal
//! probabilities". This crate reproduces that methodology on a
//! **bit-parallel engine**: 64 independent Monte-Carlo lanes are packed
//! into every `u64` word ([`PackedVectorSource`]), each gate evaluates as
//! one word-wide boolean operation, and switching events are accumulated
//! with `count_ones` into integer counters that convert to `f64` exactly
//! once — so one pass of the netlist simulates 64 vectors and totals are
//! independent of accumulation order.
//!
//! * [`VectorSource`] / [`PackedVectorSource`] — seeded Bernoulli vector
//!   streams with per-input probabilities (scalar and 64-lane packed);
//! * [`measure_power`] — cycle-accurate simulation of a mapped netlist with
//!   capacitive, short-circuit and leakage currents reported in mA
//!   (Property 2.2 makes zero-delay simulation *exact* for domino
//!   switching); supports adaptive cycle control via
//!   [`SimConfig::adaptive_tol_ppm`];
//! * [`measure_domino_switching`] — event counts on the unmapped
//!   [`DominoNetwork`](domino_phase::DominoNetwork), used to validate the
//!   BDD-based estimate `Σ S·C·P` against simulation;
//! * [`montecarlo`] — sampled node probabilities, the cross-check for the
//!   exact BDD probabilities;
//! * [`simulate_static`] — a unit-delay event-driven simulation of the
//!   *static CMOS* realization, which glitches; the contrast quantifies
//!   Property 2.2 and the Figure 2 switching models;
//! * [`reference`](mod@reference) — one-bool-at-a-time scalar implementations consuming
//!   the identical packed stream, pinned bit-identical to the packed
//!   kernels by the golden equivalence tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod montecarlo;
mod packed;
mod power;
pub mod reference;
mod static_sim;
mod vectors;

pub use packed::SimStats;
pub use power::{measure_domino_switching, measure_power, PowerReport, SimConfig, SwitchingCounts};
pub use static_sim::{simulate_static, StaticSimReport};
pub use vectors::{CorrelatedVectorSource, PackedVectorSource, VectorSource, LANES};
