//! Seeded statistical vector generation.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A reproducible stream of input vectors where bit `i` is an independent
/// Bernoulli variable with probability `probs[i]` — the "statistically
/// generated input vectors with the appropriate signal probabilities" of
/// the paper's measurement flow.
///
/// # Example
///
/// ```
/// use domino_sim::VectorSource;
///
/// let mut src = VectorSource::new(vec![0.9, 0.1], 42);
/// let v = src.next_vector();
/// assert_eq!(v.len(), 2);
/// // Streams are reproducible for a given seed.
/// let mut again = VectorSource::new(vec![0.9, 0.1], 42);
/// assert_eq!(again.next_vector(), v);
/// ```
#[derive(Debug, Clone)]
pub struct VectorSource {
    probs: Vec<f64>,
    rng: StdRng,
}

impl VectorSource {
    /// Creates a stream over the given per-bit probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(probs: Vec<f64>, seed: u64) -> Self {
        assert!(
            probs.iter().all(|p| (0.0..=1.0).contains(p)),
            "probabilities must lie in [0, 1]"
        );
        VectorSource {
            probs,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform probability ½ for `n` bits.
    pub fn uniform(n: usize, seed: u64) -> Self {
        VectorSource::new(vec![0.5; n], seed)
    }

    /// Number of bits per vector.
    pub fn width(&self) -> usize {
        self.probs.len()
    }

    /// Draws the next vector.
    pub fn next_vector(&mut self) -> Vec<bool> {
        self.probs
            .iter()
            .map(|&p| self.rng.gen_bool(p.clamp(0.0, 1.0)))
            .collect()
    }

    /// Fills `out` with the next vector without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.width()`.
    pub fn fill_next(&mut self, out: &mut [bool]) {
        assert_eq!(out.len(), self.probs.len(), "vector width");
        for (slot, &p) in out.iter_mut().zip(&self.probs) {
            *slot = self.rng.gen_bool(p);
        }
    }
}

/// A vector stream with *temporal correlation*: each bit holds its previous
/// value with probability `hold`, otherwise it is redrawn Bernoulli.
///
/// The paper's boundary-inverter model assumes temporally independent
/// vectors (toggle probability `2p(1−p)`); real control signals are sticky.
/// This stream lets the ablation quantify how far the independence
/// assumption is off: the marginal probability stays `p`, while the toggle
/// rate drops to `2p(1−p)·(1−hold)`.
///
/// # Example
///
/// ```
/// use domino_sim::CorrelatedVectorSource;
///
/// let mut src = CorrelatedVectorSource::new(vec![0.5; 4], 0.9, 1);
/// let first = src.next_vector();
/// assert_eq!(first.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct CorrelatedVectorSource {
    probs: Vec<f64>,
    hold: f64,
    state: Vec<bool>,
    rng: StdRng,
}

impl CorrelatedVectorSource {
    /// Creates a stream with per-bit probabilities and hold factor in
    /// `[0, 1)` (`hold = 0` recovers an independent stream).
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or `hold` outside
    /// `[0, 1)`.
    pub fn new(probs: Vec<f64>, hold: f64, seed: u64) -> Self {
        assert!(
            probs.iter().all(|p| (0.0..=1.0).contains(p)),
            "probabilities must lie in [0, 1]"
        );
        assert!((0.0..1.0).contains(&hold), "hold factor must lie in [0, 1)");
        let mut rng = StdRng::seed_from_u64(seed);
        let state = probs.iter().map(|&p| rng.gen_bool(p)).collect();
        CorrelatedVectorSource {
            probs,
            hold,
            state,
            rng,
        }
    }

    /// Number of bits per vector.
    pub fn width(&self) -> usize {
        self.probs.len()
    }

    /// Draws the next vector.
    pub fn next_vector(&mut self) -> Vec<bool> {
        let mut out = vec![false; self.probs.len()];
        self.fill_next(&mut out);
        out
    }

    /// Fills `out` with the next vector without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.width()`.
    pub fn fill_next(&mut self, out: &mut [bool]) {
        assert_eq!(out.len(), self.probs.len(), "vector width");
        for ((slot, prev), &p) in out.iter_mut().zip(&mut self.state).zip(&self.probs) {
            if !self.rng.gen_bool(self.hold) {
                *prev = self.rng.gen_bool(p);
            }
            *slot = *prev;
        }
    }
}

/// Number of independent simulation lanes packed into one `u64` word.
pub const LANES: usize = 64;

/// Bit-planes drawn (at most) per packed Bernoulli word: thresholds are
/// resolved on a 2^-32 grid, so packed marginals match the requested
/// probability to within 2^-33 after rounding.
const PROB_BITS: u32 = 32;

/// Converts a probability to its fixed-point threshold on the 2^32 grid.
fn fixed_threshold(p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "probabilities must lie in [0, 1]");
    // Round to the nearest grid point; p = 1 maps to 2^32 (always true).
    ((p * (1u64 << PROB_BITS) as f64).round() as u64).min(1u64 << PROB_BITS)
}

/// Draws one `u64` whose 64 bits are iid Bernoulli(`t` / 2^32).
///
/// Bit-plane rejection: uniform 32-bit lane values are compared against the
/// threshold one bit-plane at a time, most significant first; a lane is
/// decided as soon as its uniform bit differs from the threshold bit, and
/// generation stops when every lane is decided (about 7 draws on average,
/// never more than [`PROB_BITS`]). Deterministic for a given RNG state —
/// the draw count depends only on previously generated bits.
///
/// Planes below the threshold's lowest set bit are skipped entirely: once
/// every remaining threshold bit is zero, a still-undecided lane (equal to
/// the threshold so far) can only compare `>= t`, i.e. it has already
/// failed. Round thresholds therefore cost very few draws — `p = ½`
/// (`t = 2³¹`) resolves all 64 lanes with a *single* RNG word, which is
/// the common case for the paper's uniform-probability runs.
fn bernoulli_word(rng: &mut StdRng, t: u64) -> u64 {
    if t == 0 {
        return 0;
    }
    if t >= 1u64 << PROB_BITS {
        return !0;
    }
    let mut result = 0u64;
    let mut undecided = !0u64;
    for plane in (t.trailing_zeros()..PROB_BITS).rev() {
        let r = rng.next_u64();
        if (t >> plane) & 1 == 1 {
            // Uniform bit 0 < threshold bit 1: decided below threshold.
            result |= undecided & !r;
            undecided &= r;
        } else {
            // Uniform bit 1 > threshold bit 0: decided above threshold.
            undecided &= !r;
        }
        if undecided == 0 {
            break;
        }
    }
    result
}

/// A bit-parallel vector stream: 64 *independent* Monte-Carlo lanes per
/// input, one lane per bit of a `u64` word. One
/// [`next_words`](PackedVectorSource::next_words) call advances
/// every lane by one cycle, so consumers that evaluate gates word-wide
/// simulate 64 vectors per netlist pass.
///
/// # Stream semantics
///
/// Lane `l` (bit `l` of every word) is an independent Bernoulli stream with
/// the configured per-input probability — temporal adjacency is between
/// *successive words* of the same input, within the same lane. Streams are
/// reproducible for a given seed, but do **not** reproduce the scalar
/// [`VectorSource`] stream for the same seed: the packed generator consumes
/// raw RNG output in bit-plane order (several lanes per draw) instead of
/// one draw per bit. Marginal frequencies agree with [`VectorSource`] to
/// within 2^-33 (probabilities are resolved on a 2^-32 fixed-point grid).
///
/// Correlated (`hold`) streams redraw each lane independently: a lane holds
/// its previous value with probability `hold`, otherwise it is redrawn
/// Bernoulli — per-word this is `(hold_mask & prev) | (!hold_mask & fresh)`,
/// which preserves the scalar [`CorrelatedVectorSource`] marginal `p` and
/// toggle rate `2p(1−p)·(1−hold)` lane for lane.
///
/// # Seed semantics
///
/// The stream is a pure function of `(probs, seed)`: equal seeds replay
/// equal words, different seeds give statistically independent streams.
/// The sharded kernels in [`crate::measure_power`] build one source per
/// logical shard — shard 0 from the configured seed itself, shard `k > 0`
/// from a SplitMix64 mix of `(seed, k)` — so a sharded measurement is as
/// reproducible as a single stream, and a 1-shard run consumes exactly
/// the classic single-stream sequence.
///
/// # Example
///
/// ```
/// use domino_sim::PackedVectorSource;
///
/// let mut src = PackedVectorSource::uniform(3, 42);
/// let mut words = [0u64; 3];
/// src.next_words(&mut words);
/// let mut again = PackedVectorSource::uniform(3, 42);
/// let mut rerun = [0u64; 3];
/// again.next_words(&mut rerun);
/// assert_eq!(words, rerun); // reproducible for a given seed
/// ```
#[derive(Debug, Clone)]
pub struct PackedVectorSource {
    thresholds: Vec<u64>,
    hold_threshold: u64,
    state: Vec<u64>,
    rng: StdRng,
}

impl PackedVectorSource {
    /// Creates an independent (temporally uncorrelated) packed stream over
    /// the given per-input probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(probs: &[f64], seed: u64) -> Self {
        PackedVectorSource {
            thresholds: probs.iter().map(|&p| fixed_threshold(p)).collect(),
            hold_threshold: 0,
            state: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform probability ½ for `n` inputs.
    pub fn uniform(n: usize, seed: u64) -> Self {
        PackedVectorSource::new(&vec![0.5; n], seed)
    }

    /// Creates a temporally correlated packed stream: each lane holds its
    /// previous value with probability `hold`, otherwise redraws Bernoulli.
    /// Initial lane states are drawn from the marginal distribution, as in
    /// [`CorrelatedVectorSource`].
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or `hold` outside
    /// `[0, 1)`.
    pub fn correlated(probs: &[f64], hold: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&hold), "hold factor must lie in [0, 1)");
        let thresholds: Vec<u64> = probs.iter().map(|&p| fixed_threshold(p)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let state = thresholds
            .iter()
            .map(|&t| bernoulli_word(&mut rng, t))
            .collect();
        PackedVectorSource {
            thresholds,
            hold_threshold: fixed_threshold(hold),
            state,
            rng,
        }
    }

    /// Number of inputs (words per step).
    pub fn width(&self) -> usize {
        self.thresholds.len()
    }

    /// Advances every lane by one cycle: writes one word per input.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.width()`.
    pub fn next_words(&mut self, out: &mut [u64]) {
        assert_eq!(out.len(), self.thresholds.len(), "word count");
        if self.hold_threshold == 0 {
            for (slot, &t) in out.iter_mut().zip(&self.thresholds) {
                *slot = bernoulli_word(&mut self.rng, t);
            }
        } else {
            for ((slot, prev), &t) in out.iter_mut().zip(&mut self.state).zip(&self.thresholds) {
                let hold = bernoulli_word(&mut self.rng, self.hold_threshold);
                let fresh = bernoulli_word(&mut self.rng, t);
                *prev = (hold & *prev) | (!hold & fresh);
                *slot = *prev;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_frequency_matches_probability() {
        let mut src = VectorSource::new(vec![0.9, 0.5, 0.1], 7);
        let n = 20_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            let v = src.next_vector();
            for (c, &bit) in counts.iter_mut().zip(&v) {
                *c += bit as usize;
            }
        }
        let freqs: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((freqs[0] - 0.9).abs() < 0.01, "{freqs:?}");
        assert!((freqs[1] - 0.5).abs() < 0.01, "{freqs:?}");
        assert!((freqs[2] - 0.1).abs() < 0.01, "{freqs:?}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = VectorSource::uniform(32, 1);
        let mut b = VectorSource::uniform(32, 2);
        assert_ne!(a.next_vector(), b.next_vector());
    }

    #[test]
    fn fill_next_matches_width() {
        let mut src = VectorSource::uniform(4, 3);
        let mut buf = vec![false; 4];
        src.fill_next(&mut buf);
        assert_eq!(src.width(), 4);
    }

    #[test]
    #[should_panic(expected = "probabilities must lie in [0, 1]")]
    fn invalid_probability_panics() {
        let _ = VectorSource::new(vec![1.5], 0);
    }

    #[test]
    fn correlated_stream_keeps_marginal_and_cuts_toggles() {
        let n = 40_000;
        let p = 0.5;
        let hold = 0.8;
        let mut src = CorrelatedVectorSource::new(vec![p], hold, 9);
        let mut ones = 0usize;
        let mut toggles = 0usize;
        let mut prev = src.next_vector()[0];
        for _ in 0..n {
            let v = src.next_vector()[0];
            ones += v as usize;
            toggles += (v != prev) as usize;
            prev = v;
        }
        let marginal = ones as f64 / n as f64;
        let toggle_rate = toggles as f64 / n as f64;
        assert!((marginal - p).abs() < 0.02, "marginal {marginal}");
        // Independent toggle rate would be 2p(1-p) = 0.5; held streams
        // toggle at (1-hold) of that.
        let expect = 2.0 * p * (1.0 - p) * (1.0 - hold);
        assert!(
            (toggle_rate - expect).abs() < 0.02,
            "toggle {toggle_rate} vs {expect}"
        );
    }

    #[test]
    #[should_panic(expected = "hold factor")]
    fn invalid_hold_panics() {
        let _ = CorrelatedVectorSource::new(vec![0.5], 1.0, 0);
    }

    #[test]
    fn packed_marginals_match_scalar_source() {
        // Satellite contract: packed marginal frequencies agree with the
        // scalar VectorSource for the same probability vector.
        let probs = [0.9, 0.5, 0.1, 0.73];
        let steps = 400; // 400 × 64 = 25_600 samples per input
        let mut packed = PackedVectorSource::new(&probs, 7);
        let mut words = [0u64; 4];
        let mut packed_ones = [0u64; 4];
        for _ in 0..steps {
            packed.next_words(&mut words);
            for (c, &w) in packed_ones.iter_mut().zip(&words) {
                *c += u64::from(w.count_ones());
            }
        }
        let mut scalar = VectorSource::new(probs.to_vec(), 7);
        let n = steps * LANES;
        let mut scalar_ones = [0u64; 4];
        for _ in 0..n {
            let v = scalar.next_vector();
            for (c, &bit) in scalar_ones.iter_mut().zip(&v) {
                *c += bit as u64;
            }
        }
        for i in 0..probs.len() {
            let pf = packed_ones[i] as f64 / n as f64;
            let sf = scalar_ones[i] as f64 / n as f64;
            assert!((pf - probs[i]).abs() < 0.01, "input {i}: packed {pf}");
            assert!(
                (pf - sf).abs() < 0.02,
                "input {i}: packed {pf} vs scalar {sf}"
            );
        }
    }

    #[test]
    fn packed_lanes_are_independent() {
        // Adjacent lanes must not be correlated: count agreements between
        // lane 0 and lane 1 across steps; expect ~50% for p = 0.5.
        let mut src = PackedVectorSource::uniform(1, 3);
        let mut w = [0u64; 1];
        let steps = 8_000;
        let mut agree = 0usize;
        for _ in 0..steps {
            src.next_words(&mut w);
            if (w[0] & 1) == ((w[0] >> 1) & 1) {
                agree += 1;
            }
        }
        let frac = agree as f64 / steps as f64;
        assert!((frac - 0.5).abs() < 0.03, "lane agreement {frac}");
    }

    #[test]
    fn packed_correlated_keeps_marginal_and_cuts_toggles() {
        let (p, hold) = (0.5, 0.8);
        let mut src = PackedVectorSource::correlated(&[p], hold, 9);
        let mut w = [0u64; 1];
        let steps = 2_000;
        let mut ones = 0u64;
        let mut toggles = 0u64;
        src.next_words(&mut w);
        let mut prev = w[0];
        for _ in 0..steps {
            src.next_words(&mut w);
            ones += u64::from(w[0].count_ones());
            toggles += u64::from((w[0] ^ prev).count_ones());
            prev = w[0];
        }
        let n = (steps * LANES) as f64;
        let marginal = ones as f64 / n;
        let toggle_rate = toggles as f64 / n;
        let expect = 2.0 * p * (1.0 - p) * (1.0 - hold);
        assert!((marginal - p).abs() < 0.01, "marginal {marginal}");
        assert!(
            (toggle_rate - expect).abs() < 0.01,
            "toggle {toggle_rate} vs {expect}"
        );
    }

    #[test]
    fn packed_extreme_probabilities_are_constant() {
        let mut src = PackedVectorSource::new(&[0.0, 1.0], 1);
        let mut w = [0u64; 2];
        for _ in 0..16 {
            src.next_words(&mut w);
            assert_eq!(w[0], 0);
            assert_eq!(w[1], !0);
        }
    }

    #[test]
    #[should_panic(expected = "probabilities must lie in [0, 1]")]
    fn packed_invalid_probability_panics() {
        let _ = PackedVectorSource::new(&[-0.1], 0);
    }
}
