//! Seeded statistical vector generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reproducible stream of input vectors where bit `i` is an independent
/// Bernoulli variable with probability `probs[i]` — the "statistically
/// generated input vectors with the appropriate signal probabilities" of
/// the paper's measurement flow.
///
/// # Example
///
/// ```
/// use domino_sim::VectorSource;
///
/// let mut src = VectorSource::new(vec![0.9, 0.1], 42);
/// let v = src.next_vector();
/// assert_eq!(v.len(), 2);
/// // Streams are reproducible for a given seed.
/// let mut again = VectorSource::new(vec![0.9, 0.1], 42);
/// assert_eq!(again.next_vector(), v);
/// ```
#[derive(Debug, Clone)]
pub struct VectorSource {
    probs: Vec<f64>,
    rng: StdRng,
}

impl VectorSource {
    /// Creates a stream over the given per-bit probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(probs: Vec<f64>, seed: u64) -> Self {
        assert!(
            probs.iter().all(|p| (0.0..=1.0).contains(p)),
            "probabilities must lie in [0, 1]"
        );
        VectorSource {
            probs,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform probability ½ for `n` bits.
    pub fn uniform(n: usize, seed: u64) -> Self {
        VectorSource::new(vec![0.5; n], seed)
    }

    /// Number of bits per vector.
    pub fn width(&self) -> usize {
        self.probs.len()
    }

    /// Draws the next vector.
    pub fn next_vector(&mut self) -> Vec<bool> {
        self.probs
            .iter()
            .map(|&p| self.rng.gen_bool(p.clamp(0.0, 1.0)))
            .collect()
    }

    /// Fills `out` with the next vector without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.width()`.
    pub fn fill_next(&mut self, out: &mut [bool]) {
        assert_eq!(out.len(), self.probs.len(), "vector width");
        for (slot, &p) in out.iter_mut().zip(&self.probs) {
            *slot = self.rng.gen_bool(p);
        }
    }
}

/// A vector stream with *temporal correlation*: each bit holds its previous
/// value with probability `hold`, otherwise it is redrawn Bernoulli.
///
/// The paper's boundary-inverter model assumes temporally independent
/// vectors (toggle probability `2p(1−p)`); real control signals are sticky.
/// This stream lets the ablation quantify how far the independence
/// assumption is off: the marginal probability stays `p`, while the toggle
/// rate drops to `2p(1−p)·(1−hold)`.
///
/// # Example
///
/// ```
/// use domino_sim::CorrelatedVectorSource;
///
/// let mut src = CorrelatedVectorSource::new(vec![0.5; 4], 0.9, 1);
/// let first = src.next_vector();
/// assert_eq!(first.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct CorrelatedVectorSource {
    probs: Vec<f64>,
    hold: f64,
    state: Vec<bool>,
    rng: StdRng,
}

impl CorrelatedVectorSource {
    /// Creates a stream with per-bit probabilities and hold factor in
    /// `[0, 1)` (`hold = 0` recovers an independent stream).
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or `hold` outside
    /// `[0, 1)`.
    pub fn new(probs: Vec<f64>, hold: f64, seed: u64) -> Self {
        assert!(
            probs.iter().all(|p| (0.0..=1.0).contains(p)),
            "probabilities must lie in [0, 1]"
        );
        assert!((0.0..1.0).contains(&hold), "hold factor must lie in [0, 1)");
        let mut rng = StdRng::seed_from_u64(seed);
        let state = probs.iter().map(|&p| rng.gen_bool(p)).collect();
        CorrelatedVectorSource {
            probs,
            hold,
            state,
            rng,
        }
    }

    /// Number of bits per vector.
    pub fn width(&self) -> usize {
        self.probs.len()
    }

    /// Draws the next vector.
    pub fn next_vector(&mut self) -> Vec<bool> {
        let mut out = vec![false; self.probs.len()];
        self.fill_next(&mut out);
        out
    }

    /// Fills `out` with the next vector without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.width()`.
    pub fn fill_next(&mut self, out: &mut [bool]) {
        assert_eq!(out.len(), self.probs.len(), "vector width");
        for ((slot, prev), &p) in out.iter_mut().zip(&mut self.state).zip(&self.probs) {
            if !self.rng.gen_bool(self.hold) {
                *prev = self.rng.gen_bool(p);
            }
            *slot = *prev;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_frequency_matches_probability() {
        let mut src = VectorSource::new(vec![0.9, 0.5, 0.1], 7);
        let n = 20_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            let v = src.next_vector();
            for (c, &bit) in counts.iter_mut().zip(&v) {
                *c += bit as usize;
            }
        }
        let freqs: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((freqs[0] - 0.9).abs() < 0.01, "{freqs:?}");
        assert!((freqs[1] - 0.5).abs() < 0.01, "{freqs:?}");
        assert!((freqs[2] - 0.1).abs() < 0.01, "{freqs:?}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = VectorSource::uniform(32, 1);
        let mut b = VectorSource::uniform(32, 2);
        assert_ne!(a.next_vector(), b.next_vector());
    }

    #[test]
    fn fill_next_matches_width() {
        let mut src = VectorSource::uniform(4, 3);
        let mut buf = vec![false; 4];
        src.fill_next(&mut buf);
        assert_eq!(src.width(), 4);
    }

    #[test]
    #[should_panic(expected = "probabilities must lie in [0, 1]")]
    fn invalid_probability_panics() {
        let _ = VectorSource::new(vec![1.5], 0);
    }

    #[test]
    fn correlated_stream_keeps_marginal_and_cuts_toggles() {
        let n = 40_000;
        let p = 0.5;
        let hold = 0.8;
        let mut src = CorrelatedVectorSource::new(vec![p], hold, 9);
        let mut ones = 0usize;
        let mut toggles = 0usize;
        let mut prev = src.next_vector()[0];
        for _ in 0..n {
            let v = src.next_vector()[0];
            ones += v as usize;
            toggles += (v != prev) as usize;
            prev = v;
        }
        let marginal = ones as f64 / n as f64;
        let toggle_rate = toggles as f64 / n as f64;
        assert!((marginal - p).abs() < 0.02, "marginal {marginal}");
        // Independent toggle rate would be 2p(1-p) = 0.5; held streams
        // toggle at (1-hold) of that.
        let expect = 2.0 * p * (1.0 - p) * (1.0 - hold);
        assert!(
            (toggle_rate - expect).abs() < 0.02,
            "toggle {toggle_rate} vs {expect}"
        );
    }

    #[test]
    #[should_panic(expected = "hold factor")]
    fn invalid_hold_panics() {
        let _ = CorrelatedVectorSource::new(vec![0.5], 1.0, 0);
    }
}
