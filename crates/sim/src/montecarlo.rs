//! Monte-Carlo signal probability estimation — the sampling cross-check for
//! the exact BDD probabilities (and the fallback when BDDs blow up).

use domino_netlist::{Network, SequentialState};

use crate::power::SimConfig;
use crate::vectors::VectorSource;

/// Estimates the signal probability of every node by simulating `cycles`
/// random vectors (sequential networks are stepped with their real latch
/// state).
///
/// Returns one probability per node arena index.
///
/// # Panics
///
/// Panics if `pi_probs` does not have one entry per primary input.
pub fn estimate_node_probabilities(
    net: &Network,
    pi_probs: &[f64],
    config: &SimConfig,
) -> Vec<f64> {
    assert_eq!(
        pi_probs.len(),
        net.inputs().len(),
        "one probability per primary input"
    );
    let mut vectors = VectorSource::new(pi_probs.to_vec(), config.seed);
    let mut state = SequentialState::new(net);
    let mut tallies = vec![0u64; net.len()];
    let mut inputs = vec![false; net.inputs().len()];
    let total = config.warmup + config.cycles;
    for cycle in 0..total {
        vectors.fill_next(&mut inputs);
        let (_, values) = state
            .step_with_values(net, &inputs)
            .expect("validated network evaluates");
        if cycle >= config.warmup {
            for (t, &v) in tallies.iter_mut().zip(&values) {
                *t += v as u64;
            }
        }
    }
    tallies
        .into_iter()
        .map(|t| t as f64 / config.cycles as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_bdd::circuit::CircuitBdds;

    #[test]
    fn matches_exact_bdd_probabilities_combinational() {
        // f = (a·b) + !c at p = (0.9, 0.5, 0.2)
        let mut net = Network::new("mc");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let ab = net.add_and([a, b]).unwrap();
        let nc = net.add_not(c).unwrap();
        let f = net.add_or([ab, nc]).unwrap();
        net.add_output("f", f).unwrap();
        let pi = [0.9, 0.5, 0.2];
        let exact = CircuitBdds::build(&net)
            .unwrap()
            .node_probabilities(&net, &pi)
            .unwrap();
        let est = estimate_node_probabilities(
            &net,
            &pi,
            &SimConfig {
                cycles: 60_000,
                warmup: 0,
                seed: 5,
            },
        );
        for id in net.node_ids() {
            let i = id.index();
            assert!(
                (exact[i] - est[i]).abs() < 0.01,
                "node {i}: exact {} vs mc {}",
                exact[i],
                est[i]
            );
        }
    }

    #[test]
    fn sequential_steady_state() {
        // Toggle flop: q alternates, so P[q] → 0.5 regardless of inputs.
        let mut net = Network::new("tog");
        let q = net.add_latch(false);
        let nq = net.add_not(q).unwrap();
        net.set_latch_data(q, nq).unwrap();
        net.add_output("o", q).unwrap();
        let est = estimate_node_probabilities(
            &net,
            &[],
            &SimConfig {
                cycles: 10_000,
                warmup: 10,
                seed: 1,
            },
        );
        assert!((est[q.index()] - 0.5).abs() < 0.01);
    }
}
