//! Monte-Carlo signal probability estimation — the sampling cross-check for
//! the exact BDD probabilities (and the fallback when BDDs blow up).
//!
//! Runs on the bit-parallel engine: 64 independent sequential chains per
//! `u64` word, tallied with `count_ones` into integer counters and divided
//! once at the end.

use domino_netlist::{Network, SequentialState};

use crate::packed::{broadcast, WordSchedule};
use crate::power::SimConfig;
use crate::vectors::PackedVectorSource;

/// Estimates the signal probability of every node by simulating `cycles`
/// random vectors across 64 packed lanes (sequential networks are stepped
/// with one independent latch-state chain per lane).
///
/// Returns one probability per node arena index.
///
/// # Panics
///
/// Panics if `pi_probs` does not have one entry per primary input.
pub fn estimate_node_probabilities(
    net: &Network,
    pi_probs: &[f64],
    config: &SimConfig,
) -> Vec<f64> {
    assert_eq!(
        pi_probs.len(),
        net.inputs().len(),
        "one probability per primary input"
    );
    let mut vectors = PackedVectorSource::new(pi_probs, config.seed);
    // Every lane starts from the declared reset state.
    let mut latch_words: Vec<u64> = SequentialState::new(net)
        .states()
        .iter()
        .map(|&v| broadcast(v))
        .collect();
    let latch_data: Vec<usize> = net
        .latches()
        .iter()
        .map(|&l| {
            net.node(l)
                .fanins
                .first()
                .expect("validated network has connected latches")
                .index()
        })
        .collect();
    let mut tallies = vec![0u64; net.len()];
    let mut input_words = vec![0u64; net.inputs().len()];
    let mut values: Vec<u64> = Vec::new();

    let schedule = WordSchedule::new(config.warmup, config.cycles);
    for step in 0..schedule.total_steps() {
        let mask = schedule.step_mask(step);
        vectors.next_words(&mut input_words);
        net.eval_nodes_packed(&input_words, &latch_words, &mut values)
            .expect("validated network evaluates");
        if mask != 0 {
            for (t, &w) in tallies.iter_mut().zip(&values) {
                *t += u64::from((w & mask).count_ones());
            }
        }
        for (slot, &data) in latch_words.iter_mut().zip(&latch_data) {
            *slot = values[data];
        }
    }
    tallies
        .into_iter()
        .map(|t| t as f64 / config.cycles as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_bdd::circuit::CircuitBdds;

    #[test]
    fn matches_exact_bdd_probabilities_combinational() {
        // f = (a·b) + !c at p = (0.9, 0.5, 0.2)
        let mut net = Network::new("mc");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let ab = net.add_and([a, b]).unwrap();
        let nc = net.add_not(c).unwrap();
        let f = net.add_or([ab, nc]).unwrap();
        net.add_output("f", f).unwrap();
        let pi = [0.9, 0.5, 0.2];
        let exact = CircuitBdds::build(&net)
            .unwrap()
            .node_probabilities(&net, &pi)
            .unwrap();
        let est = estimate_node_probabilities(
            &net,
            &pi,
            &SimConfig {
                cycles: 60_000,
                warmup: 0,
                seed: 5,
                ..SimConfig::default()
            },
        );
        for id in net.node_ids() {
            let i = id.index();
            assert!(
                (exact[i] - est[i]).abs() < 0.01,
                "node {i}: exact {} vs mc {}",
                exact[i],
                est[i]
            );
        }
    }

    #[test]
    fn sequential_steady_state() {
        // Toggle flop: q alternates, so P[q] → 0.5 regardless of inputs.
        let mut net = Network::new("tog");
        let q = net.add_latch(false);
        let nq = net.add_not(q).unwrap();
        net.set_latch_data(q, nq).unwrap();
        net.add_output("o", q).unwrap();
        let est = estimate_node_probabilities(
            &net,
            &[],
            &SimConfig {
                cycles: 10_000,
                warmup: 10,
                seed: 1,
                ..SimConfig::default()
            },
        );
        assert!((est[q.index()] - 0.5).abs() < 0.01);
    }
}
