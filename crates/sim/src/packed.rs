//! Shared plumbing for the bit-parallel simulation engine: lane/word
//! scheduling and work accounting.
//!
//! The engine packs 64 *independent* Monte-Carlo lanes into every `u64`
//! word. One word-step advances every lane by one cycle, so a run of `c`
//! measured cycles needs `⌈c / 64⌉` measured word-steps — the last one
//! masked down to the remainder lanes — plus one warmup word-step per
//! requested warmup cycle (each lane warms up independently).

pub use crate::vectors::LANES;

/// Broadcasts a boolean to all 64 lanes.
pub(crate) fn broadcast(v: bool) -> u64 {
    if v {
        !0
    } else {
        0
    }
}

/// Word schedule of one packed run: warmup word-steps, full measured
/// words, and the remainder mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WordSchedule {
    /// Unmeasured word-steps (one per warmup cycle, every lane settling).
    pub warmup: usize,
    /// Fully-measured word-steps.
    pub full: usize,
    /// Lanes measured in the final partial word (0 = none).
    pub rem: u32,
}

impl WordSchedule {
    pub(crate) fn new(warmup: usize, cycles: usize) -> Self {
        WordSchedule {
            warmup,
            full: cycles / LANES,
            rem: (cycles % LANES) as u32,
        }
    }

    /// Measured word-steps, the partial word included.
    pub(crate) fn measured_words(&self) -> usize {
        self.full + usize::from(self.rem > 0)
    }

    /// Lane mask of measured word-step `k`.
    pub(crate) fn mask(&self, k: usize) -> u64 {
        if k < self.full {
            !0
        } else {
            (1u64 << self.rem) - 1
        }
    }

    /// Total word-steps of the run, warmup included.
    pub(crate) fn total_steps(&self) -> usize {
        self.warmup + self.measured_words()
    }

    /// Lane mask of absolute word-step `step`: zero during warmup, the
    /// measured mask afterwards. The one place the warmup/measured split
    /// lives — every kernel and every scalar reference steps through this,
    /// so the packed/reference bit-equivalence contract cannot drift.
    pub(crate) fn step_mask(&self, step: usize) -> u64 {
        if step < self.warmup {
            0
        } else {
            self.mask(step - self.warmup)
        }
    }
}

/// Work accounting of one packed simulation run — surfaced through
/// [`PowerReport::stats`](crate::PowerReport) and `dominoc --stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Measured vectors (cycles) that contributed to the statistics.
    pub vectors: u64,
    /// Total word-steps evaluated, warmup included.
    pub words: u64,
    /// Measured word-steps (each evaluates all 64 lanes).
    pub measured_words: u64,
}

impl SimStats {
    /// Fraction of measured lanes that contributed vectors: 1.0 when the
    /// cycle count is a multiple of 64, lower when the final word was
    /// partially masked.
    pub fn lane_utilization(&self) -> f64 {
        if self.measured_words == 0 {
            0.0
        } else {
            self.vectors as f64 / (self.measured_words * LANES as u64) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_covers_cycles_exactly() {
        let s = WordSchedule::new(3, 130);
        assert_eq!(s.measured_words(), 3);
        let covered: u32 = (0..s.measured_words())
            .map(|k| s.mask(k).count_ones())
            .sum();
        assert_eq!(covered, 130);
        assert_eq!(s.mask(0), !0);
        assert_eq!(s.mask(2).count_ones(), 2);

        let exact = WordSchedule::new(0, 128);
        assert_eq!(exact.measured_words(), 2);
        assert_eq!(exact.mask(1), !0);
    }

    #[test]
    fn stats_utilization() {
        let full = SimStats {
            vectors: 4096,
            words: 128,
            measured_words: 64,
        };
        assert!((full.lane_utilization() - 1.0).abs() < 1e-12);
        let partial = SimStats {
            vectors: 100,
            words: 4,
            measured_words: 2,
        };
        assert!((partial.lane_utilization() - 100.0 / 128.0).abs() < 1e-12);
        assert_eq!(SimStats::default().lane_utilization(), 0.0);
    }
}
