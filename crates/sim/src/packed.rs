//! Shared plumbing for the bit-parallel simulation engine: lane/word
//! scheduling, shard decomposition and work accounting.
//!
//! The engine packs 64 *independent* Monte-Carlo lanes into every `u64`
//! word. One word-step advances every lane by one cycle, so a run of `c`
//! measured cycles needs `⌈c / 64⌉` measured word-steps — the last one
//! masked down to the remainder lanes — plus the run's warmup word-steps.
//!
//! # Shard decomposition
//!
//! A measurement of `cycles` vectors is decomposed into
//! [`SimConfig::shards`](crate::SimConfig) **logical shards**: shard `k`
//! simulates its own contiguous block of the requested cycles from its own
//! sub-seeded [`PackedVectorSource`](crate::PackedVectorSource) stream
//! (every lane is an independent Monte-Carlo chain, so shards are simply
//! more chains). All event counters are order-independent integers, so the
//! per-shard counters merge by plain addition — the merged totals are a
//! pure function of `(probs, seed, cycles, warmup, shards)` and in
//! particular **independent of how many OS threads execute the shards**.
//! That is the whole determinism story: `threads` is an execution knob,
//! `shards` is part of the stream definition.

pub use crate::vectors::LANES;

use crate::power::SimConfig;

/// Broadcasts a boolean to all 64 lanes.
pub(crate) fn broadcast(v: bool) -> u64 {
    if v {
        !0
    } else {
        0
    }
}

/// Word schedule of one packed run: warmup word-steps, full measured
/// words, and the remainder mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WordSchedule {
    /// Unmeasured word-steps (one per warmup cycle, every lane settling).
    pub warmup: usize,
    /// Fully-measured word-steps.
    pub full: usize,
    /// Lanes measured in the final partial word (0 = none).
    pub rem: u32,
}

impl WordSchedule {
    pub(crate) fn new(warmup: usize, cycles: usize) -> Self {
        WordSchedule {
            warmup,
            full: cycles / LANES,
            rem: (cycles % LANES) as u32,
        }
    }

    /// Measured word-steps, the partial word included.
    pub(crate) fn measured_words(&self) -> usize {
        self.full + usize::from(self.rem > 0)
    }

    /// Lane mask of measured word-step `k`.
    pub(crate) fn mask(&self, k: usize) -> u64 {
        if k < self.full {
            !0
        } else {
            (1u64 << self.rem) - 1
        }
    }

    /// Total word-steps of the run, warmup included.
    pub(crate) fn total_steps(&self) -> usize {
        self.warmup + self.measured_words()
    }

    /// Lane mask of absolute word-step `step`: zero during warmup, the
    /// measured mask afterwards. The one place the warmup/measured split
    /// lives — every kernel and every scalar reference steps through this,
    /// so the packed/reference bit-equivalence contract cannot drift.
    pub(crate) fn step_mask(&self, step: usize) -> u64 {
        if step < self.warmup {
            0
        } else {
            self.mask(step - self.warmup)
        }
    }
}

/// One logical shard of a packed measurement: its private stream seed and
/// its slice of the run's warmup/measured budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ShardSlice {
    /// Sub-seed of this shard's [`PackedVectorSource`](crate::PackedVectorSource) stream.
    pub seed: u64,
    /// Warmup word-steps this shard runs before measuring.
    pub warmup: usize,
    /// Measured cycles (vectors) this shard contributes.
    pub cycles: usize,
}

/// Derives the stream seed of shard `k`. Shard 0 uses the configured seed
/// itself — so a single-shard run reproduces the classic single-stream
/// semantics — and every other shard gets a SplitMix64-mixed sub-seed,
/// decorrelating the shard streams while staying a pure function of
/// `(seed, k)`.
pub(crate) fn shard_seed(seed: u64, k: u64) -> u64 {
    if k == 0 {
        return seed;
    }
    let mut z = seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Decomposes a [`SimConfig`] into its logical shards: measured cycles and
/// warmup word-steps are split as evenly as possible (earlier shards take
/// the remainders), and shards left with no measured cycles are dropped —
/// so tiny runs degrade gracefully and `threads > shards > words` stays
/// well-defined. When any warmup is requested at all, every shard settles
/// for **at least one** word-step: a shard measuring from completely cold
/// state would count spurious first-cycle inverter toggles the warmup knob
/// exists to discard. The plan is a pure function of the config, never of
/// the thread count.
pub(crate) fn shard_plan(config: &SimConfig) -> Vec<ShardSlice> {
    let shards = (config.shards.max(1) as usize).min(config.cycles.max(1));
    let base = config.cycles / shards;
    let rem = config.cycles % shards;
    let wbase = config.warmup / shards;
    let wrem = config.warmup % shards;
    (0..shards)
        .map(|k| {
            let mut warmup = wbase + usize::from(k < wrem);
            if warmup == 0 && config.warmup > 0 {
                warmup = 1;
            }
            ShardSlice {
                seed: shard_seed(config.seed, k as u64),
                warmup,
                cycles: base + usize::from(k < rem),
            }
        })
        .filter(|slice| slice.cycles > 0)
        .collect()
}

/// Resolves the execution thread count: `0` means "all available CPUs",
/// and there is never a point in more workers than shards.
fn effective_threads(threads: usize, shards: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    };
    t.clamp(1, shards.max(1))
}

/// Runs `f` over every shard of `plan`, on up to `threads` OS threads,
/// returning the results **in shard order**. The single-thread path runs
/// inline (no spawn overhead); the multi-thread path splits the plan into
/// contiguous chunks. Because callers merge shard results with integer
/// addition, the outputs are identical either way — pinned by the
/// thread-count-invariance tests.
pub(crate) fn run_sharded<T: Send>(
    plan: &[ShardSlice],
    threads: usize,
    f: impl Fn(&ShardSlice) -> T + Sync,
) -> Vec<T> {
    let threads = effective_threads(threads, plan.len());
    if threads <= 1 || plan.len() <= 1 {
        return plan.iter().map(f).collect();
    }
    let chunk_len = plan.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = plan
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<T>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("simulation shard panicked"))
            .collect()
    })
}

/// Work accounting of one packed simulation run — surfaced through
/// [`PowerReport::stats`](crate::PowerReport) and `dominoc --stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Measured vectors (cycles) that contributed to the statistics.
    pub vectors: u64,
    /// Total word-steps evaluated, warmup included, summed over shards.
    pub words: u64,
    /// Measured word-steps (each evaluates all 64 lanes), summed over
    /// shards.
    pub measured_words: u64,
    /// Logical shards the measurement was decomposed into (1 for the
    /// single-stream kernels). Results depend on the shard count, never on
    /// the thread count that executed them.
    pub shards: u64,
}

impl SimStats {
    /// Fraction of measured lanes that contributed vectors: 1.0 when the
    /// cycle count is a multiple of 64, lower when the final word was
    /// partially masked.
    pub fn lane_utilization(&self) -> f64 {
        if self.measured_words == 0 {
            0.0
        } else {
            self.vectors as f64 / (self.measured_words * LANES as u64) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_covers_cycles_exactly() {
        let s = WordSchedule::new(3, 130);
        assert_eq!(s.measured_words(), 3);
        let covered: u32 = (0..s.measured_words())
            .map(|k| s.mask(k).count_ones())
            .sum();
        assert_eq!(covered, 130);
        assert_eq!(s.mask(0), !0);
        assert_eq!(s.mask(2).count_ones(), 2);

        let exact = WordSchedule::new(0, 128);
        assert_eq!(exact.measured_words(), 2);
        assert_eq!(exact.mask(1), !0);
    }

    #[test]
    fn stats_utilization() {
        let full = SimStats {
            vectors: 4096,
            words: 128,
            measured_words: 64,
            shards: 8,
        };
        assert!((full.lane_utilization() - 1.0).abs() < 1e-12);
        let partial = SimStats {
            vectors: 100,
            words: 4,
            measured_words: 2,
            shards: 1,
        };
        assert!((partial.lane_utilization() - 100.0 / 128.0).abs() < 1e-12);
        assert_eq!(SimStats::default().lane_utilization(), 0.0);
    }

    #[test]
    fn shard_plan_covers_cycles_exactly() {
        let cfg = SimConfig {
            cycles: 4096,
            warmup: 64,
            seed: 7,
            shards: 8,
            ..SimConfig::default()
        };
        let plan = shard_plan(&cfg);
        assert_eq!(plan.len(), 8);
        assert_eq!(plan.iter().map(|s| s.cycles).sum::<usize>(), 4096);
        assert_eq!(plan.iter().map(|s| s.warmup).sum::<usize>(), 64);
        // Shard 0 keeps the configured seed; the others get distinct mixes.
        assert_eq!(plan[0].seed, 7);
        let mut seeds: Vec<u64> = plan.iter().map(|s| s.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), 8);

        // Uneven split: earlier shards take the remainders.
        let uneven = shard_plan(&SimConfig {
            cycles: 203,
            warmup: 3,
            shards: 8,
            ..cfg
        });
        assert_eq!(uneven.iter().map(|s| s.cycles).sum::<usize>(), 203);
        assert!(uneven.iter().all(|s| s.cycles > 0));
        assert!(uneven[0].cycles >= uneven[7].cycles);

        // More shards than cycles: empty shards are dropped.
        let tiny = shard_plan(&SimConfig {
            cycles: 3,
            warmup: 0,
            shards: 8,
            ..cfg
        });
        assert_eq!(tiny.len(), 3);
        assert_eq!(tiny.iter().map(|s| s.cycles).sum::<usize>(), 3);
    }

    #[test]
    fn run_sharded_is_thread_count_invariant() {
        let cfg = SimConfig {
            cycles: 1000,
            warmup: 8,
            shards: 8,
            ..SimConfig::default()
        };
        let plan = shard_plan(&cfg);
        let work = |s: &ShardSlice| s.seed.wrapping_mul(s.cycles as u64 + 1);
        let seq: Vec<u64> = run_sharded(&plan, 1, work);
        for threads in [2, 3, 8, 16] {
            assert_eq!(run_sharded(&plan, threads, work), seq, "threads={threads}");
        }
    }
}
