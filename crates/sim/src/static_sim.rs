//! Unit-delay simulation of the *static CMOS* realization, with glitch
//! accounting.
//!
//! Domino gates cannot glitch (Property 2.2): once a gate discharges it
//! stays down until the next precharge, so zero-delay analysis is exact.
//! Static gates *do* glitch — unequal path delays make a gate's inputs
//! arrive at different times and its output can bounce before settling.
//! This simulator quantifies that: it propagates each new input vector
//! through the network one unit delay per gate, counting every transition;
//! the transitions in excess of the settled change are glitches. The
//! contrast against the glitch-free domino counts is the dynamic-power
//! story behind Figure 2.

use std::collections::BTreeSet;

use domino_netlist::{Network, NodeKind, SequentialState};

use crate::power::SimConfig;
use crate::vectors::VectorSource;

/// Result of [`simulate_static`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticSimReport {
    /// Total gate output transitions observed (including glitches).
    pub transitions: u64,
    /// Transitions in excess of the settled value change — pure glitch
    /// power.
    pub glitch_transitions: u64,
    /// Cycles simulated.
    pub cycles: usize,
}

impl StaticSimReport {
    /// Average transitions per cycle.
    pub fn transitions_per_cycle(&self) -> f64 {
        self.transitions as f64 / self.cycles as f64
    }

    /// Fraction of transitions that are glitches.
    pub fn glitch_fraction(&self) -> f64 {
        if self.transitions == 0 {
            0.0
        } else {
            self.glitch_transitions as f64 / self.transitions as f64
        }
    }
}

/// Simulates `net` as static CMOS with unit gate delays under random
/// vectors, counting all transitions and glitches.
///
/// # Panics
///
/// Panics if `pi_probs` does not have one entry per primary input.
pub fn simulate_static(net: &Network, pi_probs: &[f64], config: &SimConfig) -> StaticSimReport {
    assert_eq!(
        pi_probs.len(),
        net.inputs().len(),
        "one probability per primary input"
    );
    let fanouts = net.fanouts();
    let mut vectors = VectorSource::new(pi_probs.to_vec(), config.seed);
    let mut seq = SequentialState::new(net);
    let mut inputs = vec![false; net.inputs().len()];

    // Settled values from an initial all-false vector.
    let mut values = net
        .eval_nodes(&vec![false; net.inputs().len()], seq.states())
        .expect("validated network evaluates");

    let mut transitions = 0u64;
    let mut glitches = 0u64;
    let total = config.warmup + config.cycles;
    for cycle in 0..total {
        let measuring = cycle >= config.warmup;
        vectors.fill_next(&mut inputs);
        let before = values.clone();

        // Apply the new inputs and latch states, then propagate with unit
        // delays.
        let mut dirty: BTreeSet<usize> = BTreeSet::new();
        for (&id, &v) in net.inputs().iter().zip(&inputs) {
            if values[id.index()] != v {
                values[id.index()] = v;
                if measuring {
                    transitions += 1;
                }
                dirty.extend(fanouts[id.index()].iter().map(|f| f.index()));
            }
        }
        for (&id, &v) in net.latches().iter().zip(seq.states()) {
            if values[id.index()] != v {
                values[id.index()] = v;
                if measuring {
                    transitions += 1;
                }
                dirty.extend(fanouts[id.index()].iter().map(|f| f.index()));
            }
        }

        let mut toggle_counts = vec![0u32; net.len()];
        let mut guard = 0usize;
        while !dirty.is_empty() && guard <= 4 * net.len() {
            guard += 1;
            // Unit-delay semantics: all nodes of this wavefront evaluate
            // against the values at the *start* of the timestep (double
            // buffered), so races between equal-time events are preserved.
            let mut updates: Vec<(usize, bool)> = Vec::new();
            for &i in &dirty {
                let node = net.node(domino_netlist::NodeId::from_index(i));
                let v = match node.kind {
                    NodeKind::And => node.fanins.iter().all(|f| values[f.index()]),
                    NodeKind::Or => node.fanins.iter().any(|f| values[f.index()]),
                    NodeKind::Not => !values[node.fanins[0].index()],
                    _ => continue,
                };
                if v != values[i] {
                    updates.push((i, v));
                }
            }
            let mut next: BTreeSet<usize> = BTreeSet::new();
            for (i, v) in updates {
                values[i] = v;
                toggle_counts[i] += 1;
                if measuring {
                    transitions += 1;
                }
                next.extend(fanouts[i].iter().map(|f| f.index()));
            }
            dirty = next;
        }

        if measuring {
            // Glitches: toggles beyond the settled change.
            for (i, &t) in toggle_counts.iter().enumerate() {
                if t == 0 {
                    continue;
                }
                let settled_changed = values[i] != before[i];
                let useful = settled_changed as u32;
                glitches += (t - useful) as u64;
            }
        }

        // Clock the latches from settled values.
        let next_states: Vec<bool> = net
            .latches()
            .iter()
            .map(|&l| values[net.node(l).fanins[0].index()])
            .collect();
        seq.set_states(&next_states).expect("state width");
    }

    StaticSimReport {
        transitions,
        glitch_transitions: glitches,
        cycles: config.cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic glitch generator: f = a·!a delayed — here x = a·b, y = !a,
    /// f = x + (y·b): unequal depths create hazards.
    fn glitchy() -> Network {
        let mut net = Network::new("glitchy");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let na = net.add_not(a).unwrap();
        let x = net.add_and([a, b]).unwrap();
        let yb = net.add_and([na, b]).unwrap();
        // f = a·b + !a·b = b, but the two branches race on `a` changes.
        let f = net.add_or([x, yb]).unwrap();
        net.add_output("f", f).unwrap();
        net
    }

    #[test]
    fn hazard_circuit_produces_glitches() {
        let net = glitchy();
        let report = simulate_static(
            &net,
            &[0.5, 0.9],
            &SimConfig {
                cycles: 20_000,
                warmup: 4,
                seed: 3,
            },
        );
        assert!(report.transitions > 0);
        // `f = b` logically, yet `a` toggles glitch it: with b mostly high
        // and a toggling, the OR momentarily drops.
        assert!(
            report.glitch_transitions > 0,
            "expected glitches, report {report:?}"
        );
        assert!(report.glitch_fraction() > 0.0);
        assert!(report.transitions_per_cycle() > 0.0);
    }

    #[test]
    fn glitch_free_chain_has_no_glitches() {
        // A linear chain has equal path depths: no hazards.
        let mut net = Network::new("chain");
        let a = net.add_input("a").unwrap();
        let n1 = net.add_not(a).unwrap();
        let n2 = net.add_not(n1).unwrap();
        net.add_output("f", n2).unwrap();
        let report = simulate_static(
            &net,
            &[0.5],
            &SimConfig {
                cycles: 5_000,
                warmup: 0,
                seed: 9,
            },
        );
        assert_eq!(report.glitch_transitions, 0);
        assert!(report.transitions > 0);
    }
}
