//! Unit-delay simulation of the *static CMOS* realization, with glitch
//! accounting — on the bit-parallel engine.
//!
//! Domino gates cannot glitch (Property 2.2): once a gate discharges it
//! stays down until the next precharge, so zero-delay analysis is exact.
//! Static gates *do* glitch — unequal path delays make a gate's inputs
//! arrive at different times and its output can bounce before settling.
//! This simulator quantifies that: it propagates each new input vector
//! through the network one unit delay per gate, counting every transition;
//! the transitions in excess of the settled change are glitches. The
//! contrast against the glitch-free domino counts is the dynamic-power
//! story behind Figure 2.
//!
//! All 64 lanes propagate their wavefronts in lockstep: each unit-delay
//! timestep re-evaluates the dirty nodes word-wide (double-buffered, so
//! races between equal-time events are preserved per lane) and counts
//! transitions as `count_ones` of the XOR between successive words.
//! Glitches fall out of the identity `glitches = gate transitions −
//! settled gate changes`: a gate's settled value cannot change without at
//! least one toggle, so every toggle beyond the settled change is excess.

use std::collections::BTreeSet;

use domino_netlist::{Network, NodeKind, SequentialState};

use crate::packed::{broadcast, WordSchedule};
use crate::power::SimConfig;
use crate::vectors::PackedVectorSource;

/// Result of [`simulate_static`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticSimReport {
    /// Total gate output transitions observed (including glitches).
    pub transitions: u64,
    /// Transitions in excess of the settled value change — pure glitch
    /// power.
    pub glitch_transitions: u64,
    /// Cycles simulated.
    pub cycles: usize,
}

impl StaticSimReport {
    /// Average transitions per cycle.
    pub fn transitions_per_cycle(&self) -> f64 {
        self.transitions as f64 / self.cycles as f64
    }

    /// Fraction of transitions that are glitches.
    pub fn glitch_fraction(&self) -> f64 {
        if self.transitions == 0 {
            0.0
        } else {
            self.glitch_transitions as f64 / self.transitions as f64
        }
    }
}

/// Simulates `net` as static CMOS with unit gate delays under random
/// vectors, counting all transitions and glitches (64 independent lanes
/// per word).
///
/// # Panics
///
/// Panics if `pi_probs` does not have one entry per primary input.
pub fn simulate_static(net: &Network, pi_probs: &[f64], config: &SimConfig) -> StaticSimReport {
    assert_eq!(
        pi_probs.len(),
        net.inputs().len(),
        "one probability per primary input"
    );
    let fanouts = net.fanouts();
    let mut vectors = PackedVectorSource::new(pi_probs, config.seed);
    let mut latch_words: Vec<u64> = SequentialState::new(net)
        .states()
        .iter()
        .map(|&v| broadcast(v))
        .collect();
    let mut input_words = vec![0u64; net.inputs().len()];

    // Settled values from an initial all-false vector (every lane).
    let mut values: Vec<u64> = Vec::new();
    net.eval_nodes_packed(&vec![0u64; net.inputs().len()], &latch_words, &mut values)
        .expect("validated network evaluates");
    let mut before = vec![0u64; net.len()];

    let mut transitions = 0u64;
    let mut glitches = 0u64;
    let schedule = WordSchedule::new(config.warmup, config.cycles);
    for step in 0..schedule.total_steps() {
        let mask = schedule.step_mask(step);
        vectors.next_words(&mut input_words);
        before.copy_from_slice(&values);

        // Apply the new inputs and latch states, then propagate with unit
        // delays.
        let mut dirty: BTreeSet<usize> = BTreeSet::new();
        for (&id, &w) in net.inputs().iter().zip(&input_words) {
            let changed = values[id.index()] ^ w;
            if changed != 0 {
                values[id.index()] = w;
                transitions += u64::from((changed & mask).count_ones());
                dirty.extend(fanouts[id.index()].iter().map(|f| f.index()));
            }
        }
        for (&id, &w) in net.latches().iter().zip(&latch_words) {
            let changed = values[id.index()] ^ w;
            if changed != 0 {
                values[id.index()] = w;
                transitions += u64::from((changed & mask).count_ones());
                dirty.extend(fanouts[id.index()].iter().map(|f| f.index()));
            }
        }

        let mut gate_transitions = 0u64;
        let mut guard = 0usize;
        while !dirty.is_empty() && guard <= 4 * net.len() {
            guard += 1;
            // Unit-delay semantics: all nodes of this wavefront evaluate
            // against the values at the *start* of the timestep (double
            // buffered), so races between equal-time events are preserved
            // in every lane.
            let mut updates: Vec<(usize, u64)> = Vec::new();
            for &i in &dirty {
                let node = net.node(domino_netlist::NodeId::from_index(i));
                let w = match node.kind {
                    NodeKind::And => node
                        .fanins
                        .iter()
                        .fold(!0u64, |acc, f| acc & values[f.index()]),
                    NodeKind::Or => node
                        .fanins
                        .iter()
                        .fold(0u64, |acc, f| acc | values[f.index()]),
                    NodeKind::Not => !values[node.fanins[0].index()],
                    _ => continue,
                };
                if w != values[i] {
                    updates.push((i, w));
                }
            }
            let mut next: BTreeSet<usize> = BTreeSet::new();
            for (i, w) in updates {
                gate_transitions += u64::from(((w ^ values[i]) & mask).count_ones());
                values[i] = w;
                next.extend(fanouts[i].iter().map(|f| f.index()));
            }
            dirty = next;
        }
        transitions += gate_transitions;

        if mask != 0 {
            // Glitches: gate toggles beyond the settled change. A settled
            // change requires at least one toggle, so the difference is
            // exactly the per-node, per-lane excess of the scalar
            // accounting.
            let mut settled_changes = 0u64;
            for id in net.node_ids() {
                match net.node(id).kind {
                    NodeKind::And | NodeKind::Or | NodeKind::Not => {
                        let i = id.index();
                        settled_changes += u64::from(((values[i] ^ before[i]) & mask).count_ones());
                    }
                    _ => {}
                }
            }
            glitches += gate_transitions - settled_changes;
        }

        // Clock the latches from settled values.
        for (slot, &l) in latch_words.iter_mut().zip(net.latches()) {
            *slot = values[net.node(l).fanins[0].index()];
        }
    }

    StaticSimReport {
        transitions,
        glitch_transitions: glitches,
        cycles: config.cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic glitch generator: f = a·!a delayed — here x = a·b, y = !a,
    /// f = x + (y·b): unequal depths create hazards.
    fn glitchy() -> Network {
        let mut net = Network::new("glitchy");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let na = net.add_not(a).unwrap();
        let x = net.add_and([a, b]).unwrap();
        let yb = net.add_and([na, b]).unwrap();
        // f = a·b + !a·b = b, but the two branches race on `a` changes.
        let f = net.add_or([x, yb]).unwrap();
        net.add_output("f", f).unwrap();
        net
    }

    #[test]
    fn hazard_circuit_produces_glitches() {
        let net = glitchy();
        let report = simulate_static(
            &net,
            &[0.5, 0.9],
            &SimConfig {
                cycles: 20_000,
                warmup: 4,
                seed: 3,
                ..SimConfig::default()
            },
        );
        assert!(report.transitions > 0);
        // `f = b` logically, yet `a` toggles glitch it: with b mostly high
        // and a toggling, the OR momentarily drops.
        assert!(
            report.glitch_transitions > 0,
            "expected glitches, report {report:?}"
        );
        assert!(report.glitch_fraction() > 0.0);
        assert!(report.transitions_per_cycle() > 0.0);
    }

    #[test]
    fn glitch_free_chain_has_no_glitches() {
        // A linear chain has equal path depths: no hazards.
        let mut net = Network::new("chain");
        let a = net.add_input("a").unwrap();
        let n1 = net.add_not(a).unwrap();
        let n2 = net.add_not(n1).unwrap();
        net.add_output("f", n2).unwrap();
        let report = simulate_static(
            &net,
            &[0.5],
            &SimConfig {
                cycles: 5_000,
                warmup: 0,
                seed: 9,
                ..SimConfig::default()
            },
        );
        assert_eq!(report.glitch_transitions, 0);
        assert!(report.transitions > 0);
    }
}
