//! Scalar reference implementations of the packed simulation kernels.
//!
//! Each function here consumes the **same logical vector stream** as its
//! packed counterpart — it draws the identical `u64` words from
//! [`PackedVectorSource`] (walking the same per-shard sub-seeded streams
//! for the sharded kernels) and then simulates the 64 lanes one at a time
//! with plain `bool` evaluation, accumulating the same integer event
//! counters and running the same final integer→`f64` conversion. Because
//! the counters are order-independent integers, the packed kernels must
//! reproduce these results **bit for bit**; `tests/sim_packed_equivalence.rs`
//! pins that contract on the public suite and under proptest-generated
//! random networks.
//!
//! These functions exist to validate (and benchmark against) the packed
//! engine — they are one-bool-at-a-time and roughly 64× slower; production
//! paths should call the packed kernels in the crate root.
//!
//! Adaptive cycle control is a packed-engine feature: every function here
//! requires `config.adaptive_tol_ppm == 0`.

use std::collections::BTreeSet;

use domino_netlist::{Network, NodeKind, SequentialState};
use domino_phase::{DominoNetwork, DominoRef};
use domino_techmap::{CellClass, Library, MappedNetlist};

use crate::packed::{shard_plan, SimStats, WordSchedule, LANES};
use crate::power::{
    dff_source_loads, finalize_power, inverter_positions, PowerCounters, SimConfig,
    SwitchingEventCounters,
};
use crate::static_sim::StaticSimReport;
use crate::vectors::PackedVectorSource;
use crate::{PowerReport, SwitchingCounts};

/// Draws every word-step of the packed stream up front so lanes can be
/// replayed independently.
fn collect_words(pi_probs: &[f64], seed: u64, steps: usize) -> Vec<Vec<u64>> {
    let mut src = PackedVectorSource::new(pi_probs, seed);
    (0..steps)
        .map(|_| {
            let mut w = vec![0u64; pi_probs.len()];
            src.next_words(&mut w);
            w
        })
        .collect()
}

fn lane_bit(word: u64, lane: usize) -> bool {
    (word >> lane) & 1 == 1
}

fn assert_fixed_length(config: &SimConfig) {
    assert_eq!(
        config.adaptive_tol_ppm, 0,
        "the scalar reference does not implement adaptive cycle control"
    );
}

/// Scalar reference for [`measure_power`](crate::measure_power): identical
/// stream, identical counters, identical report — one lane at a time.
///
/// # Panics
///
/// Panics on a PI-count mismatch or a non-zero `adaptive_tol_ppm`.
pub fn measure_power(
    mapped: &MappedNetlist,
    lib: &Library,
    pi_probs: &[f64],
    config: &SimConfig,
) -> PowerReport {
    assert_eq!(
        pi_probs.len(),
        mapped.pi_count(),
        "one probability per primary input"
    );
    assert_fixed_length(config);
    let loads = mapped.load_caps_ff(lib);
    let source_loads = dff_source_loads(mapped, lib);
    let plan = shard_plan(config);

    let mut counters = PowerCounters {
        cell_events: vec![0u64; mapped.cells().len()],
        dff_events: vec![0u64; mapped.dffs().len()],
        measured_cycles: config.cycles as u64,
    };
    let mut stats = SimStats {
        vectors: config.cycles as u64,
        shards: plan.len() as u64,
        ..SimStats::default()
    };
    // Same shard decomposition as the packed kernel, each shard's stream
    // replayed lane by lane.
    for slice in &plan {
        let schedule = WordSchedule::new(slice.warmup, slice.cycles);
        let total_steps = schedule.total_steps();
        let step_words = collect_words(pi_probs, slice.seed, total_steps);
        stats.words += total_steps as u64;
        stats.measured_words += schedule.measured_words() as u64;
        for lane in 0..LANES {
            let mut sources = vec![false; mapped.source_count()];
            for dff in mapped.dffs() {
                sources[dff.source_index] = dff.init;
            }
            let mut prev_cells = vec![false; mapped.cells().len()];
            for (step, words) in step_words.iter().enumerate() {
                let measuring = lane_bit(schedule.step_mask(step), lane);
                for (slot, &w) in sources.iter_mut().zip(words) {
                    *slot = lane_bit(w, lane);
                }
                let values = mapped.eval_cells(&sources);
                if measuring {
                    for (i, cell) in mapped.cells().iter().enumerate() {
                        let event = match cell.class {
                            CellClass::DominoAnd | CellClass::DominoOr | CellClass::DominoBuf => {
                                values[i]
                            }
                            CellClass::InputInv => values[i] != prev_cells[i],
                            CellClass::OutputInv => !values[i],
                            CellClass::Dff => unreachable!("flops are not in cells"),
                        };
                        counters.cell_events[i] += u64::from(event);
                    }
                }
                prev_cells.copy_from_slice(&values);
                // Clock the flops simultaneously (mirrors the packed
                // kernel): sample every data input before any flop output
                // moves.
                let next_states: Vec<bool> = mapped
                    .dffs()
                    .iter()
                    .map(|dff| mapped.ref_value(dff.data, &sources, &values))
                    .collect();
                for (j, dff) in mapped.dffs().iter().enumerate() {
                    if measuring && next_states[j] != sources[dff.source_index] {
                        counters.dff_events[j] += 1;
                    }
                    sources[dff.source_index] = next_states[j];
                }
            }
        }
    }

    finalize_power(mapped, lib, &loads, &source_loads, &counters, stats)
}

/// Scalar reference for
/// [`measure_domino_switching`](crate::measure_domino_switching).
///
/// # Panics
///
/// Panics on a PI-count mismatch or a non-zero `adaptive_tol_ppm`.
pub fn measure_domino_switching(
    domino: &DominoNetwork,
    pi_probs: &[f64],
    config: &SimConfig,
) -> SwitchingCounts {
    let n_latches = domino.latch_inits().len();
    let n_pis = domino.sources().len() - n_latches;
    assert_eq!(pi_probs.len(), n_pis, "one probability per primary input");
    assert_fixed_length(config);
    let inverter_positions = inverter_positions(domino);

    let mut counters = SwitchingEventCounters::default();
    // Same shard decomposition as the packed kernel, each shard's stream
    // replayed lane by lane.
    for slice in &shard_plan(config) {
        let schedule = WordSchedule::new(slice.warmup, slice.cycles);
        let total_steps = schedule.total_steps();
        let step_words = collect_words(pi_probs, slice.seed, total_steps);
        for lane in 0..LANES {
            let mut sources = vec![false; domino.sources().len()];
            for (i, &init) in domino.latch_inits().iter().enumerate() {
                sources[n_pis + i] = init;
            }
            let mut prev_sources = sources.clone();
            for (step, words) in step_words.iter().enumerate() {
                let measuring = lane_bit(schedule.step_mask(step), lane);
                for (slot, &w) in sources.iter_mut().zip(words) {
                    *slot = lane_bit(w, lane);
                }
                let rails = domino
                    .eval_rails(&sources)
                    .expect("source width matches by construction");
                if measuring {
                    for &v in &rails {
                        counters.block += u64::from(v);
                    }
                    for &pos in &inverter_positions {
                        counters.input_inverters += u64::from(sources[pos] != prev_sources[pos]);
                    }
                }
                prev_sources.copy_from_slice(&sources);

                // Resolve every output against this cycle's rails first,
                // then clock the latches simultaneously (mirrors the packed
                // kernel).
                let block_values: Vec<bool> = domino
                    .outputs()
                    .iter()
                    .map(|out| match out.driver {
                        DominoRef::Gate(i) => rails[i],
                        DominoRef::Source { node, complemented } => {
                            let pos = domino
                                .sources()
                                .iter()
                                .position(|&s| s == node)
                                .expect("known source");
                            sources[pos] ^ complemented
                        }
                        DominoRef::Constant(v) => v,
                    })
                    .collect();
                let mut latch_idx = 0usize;
                for (out, &block_value) in domino.outputs().iter().zip(&block_values) {
                    if measuring && out.phase.is_negative() && block_value {
                        counters.output_inverters += 1;
                    }
                    if out.is_latch_data {
                        let logical = if out.phase.is_negative() {
                            !block_value
                        } else {
                            block_value
                        };
                        sources[n_pis + latch_idx] = logical;
                        latch_idx += 1;
                    }
                }
            }
        }
    }
    counters.per_cycle(config.cycles)
}

/// Scalar reference for
/// [`estimate_node_probabilities`](crate::montecarlo::estimate_node_probabilities).
///
/// # Panics
///
/// Panics on a PI-count mismatch or a non-zero `adaptive_tol_ppm`.
pub fn estimate_node_probabilities(
    net: &Network,
    pi_probs: &[f64],
    config: &SimConfig,
) -> Vec<f64> {
    assert_eq!(
        pi_probs.len(),
        net.inputs().len(),
        "one probability per primary input"
    );
    assert_fixed_length(config);
    let schedule = WordSchedule::new(config.warmup, config.cycles);
    let total_steps = schedule.total_steps();
    let step_words = collect_words(pi_probs, config.seed, total_steps);

    let mut tallies = vec![0u64; net.len()];
    let mut inputs = vec![false; net.inputs().len()];
    for lane in 0..LANES {
        let mut state = SequentialState::new(net);
        for (step, words) in step_words.iter().enumerate() {
            let measuring = lane_bit(schedule.step_mask(step), lane);
            for (slot, &w) in inputs.iter_mut().zip(words) {
                *slot = lane_bit(w, lane);
            }
            let (_, values) = state
                .step_with_values(net, &inputs)
                .expect("validated network evaluates");
            if measuring {
                for (t, &v) in tallies.iter_mut().zip(&values) {
                    *t += u64::from(v);
                }
            }
        }
    }
    tallies
        .into_iter()
        .map(|t| t as f64 / config.cycles as f64)
        .collect()
}

/// Scalar reference for [`simulate_static`](crate::simulate_static): the
/// original event-driven unit-delay wavefront, replayed lane by lane.
///
/// # Panics
///
/// Panics on a PI-count mismatch or a non-zero `adaptive_tol_ppm`.
pub fn simulate_static(net: &Network, pi_probs: &[f64], config: &SimConfig) -> StaticSimReport {
    assert_eq!(
        pi_probs.len(),
        net.inputs().len(),
        "one probability per primary input"
    );
    assert_fixed_length(config);
    let fanouts = net.fanouts();
    let schedule = WordSchedule::new(config.warmup, config.cycles);
    let total_steps = schedule.total_steps();
    let step_words = collect_words(pi_probs, config.seed, total_steps);

    let mut transitions = 0u64;
    let mut glitches = 0u64;
    for lane in 0..LANES {
        let mut seq = SequentialState::new(net);
        let mut values = net
            .eval_nodes(&vec![false; net.inputs().len()], seq.states())
            .expect("validated network evaluates");
        for (step, words) in step_words.iter().enumerate() {
            let measuring = lane_bit(schedule.step_mask(step), lane);
            let before = values.clone();

            let mut dirty: BTreeSet<usize> = BTreeSet::new();
            for (&id, &w) in net.inputs().iter().zip(words) {
                let v = lane_bit(w, lane);
                if values[id.index()] != v {
                    values[id.index()] = v;
                    if measuring {
                        transitions += 1;
                    }
                    dirty.extend(fanouts[id.index()].iter().map(|f| f.index()));
                }
            }
            for (&id, &v) in net.latches().iter().zip(seq.states()) {
                if values[id.index()] != v {
                    values[id.index()] = v;
                    if measuring {
                        transitions += 1;
                    }
                    dirty.extend(fanouts[id.index()].iter().map(|f| f.index()));
                }
            }

            let mut toggle_counts = vec![0u32; net.len()];
            let mut guard = 0usize;
            while !dirty.is_empty() && guard <= 4 * net.len() {
                guard += 1;
                let mut updates: Vec<(usize, bool)> = Vec::new();
                for &i in &dirty {
                    let node = net.node(domino_netlist::NodeId::from_index(i));
                    let v = match node.kind {
                        NodeKind::And => node.fanins.iter().all(|f| values[f.index()]),
                        NodeKind::Or => node.fanins.iter().any(|f| values[f.index()]),
                        NodeKind::Not => !values[node.fanins[0].index()],
                        _ => continue,
                    };
                    if v != values[i] {
                        updates.push((i, v));
                    }
                }
                let mut next: BTreeSet<usize> = BTreeSet::new();
                for (i, v) in updates {
                    values[i] = v;
                    toggle_counts[i] += 1;
                    if measuring {
                        transitions += 1;
                    }
                    next.extend(fanouts[i].iter().map(|f| f.index()));
                }
                dirty = next;
            }

            if measuring {
                for (i, &t) in toggle_counts.iter().enumerate() {
                    if t == 0 {
                        continue;
                    }
                    let settled_changed = values[i] != before[i];
                    glitches += u64::from(t - u32::from(settled_changed));
                }
            }

            let next_states: Vec<bool> = net
                .latches()
                .iter()
                .map(|&l| values[net.node(l).fanins[0].index()])
                .collect();
            seq.set_states(&next_states).expect("state width");
        }
    }

    StaticSimReport {
        transitions,
        glitch_transitions: glitches,
        cycles: config.cycles,
    }
}
