use std::fmt;

/// Output phase: whether a static inverter sits at the output boundary of
/// the domino block.
///
/// A *negative* phase does **not** complement the output's logical value —
/// the block internally computes the complement and the boundary inverter
/// restores it (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Phase {
    /// No inverter at the boundary: the domino block realizes the function
    /// directly.
    #[default]
    Positive,
    /// One static inverter at the boundary: the block realizes the
    /// complement.
    Negative,
}

impl Phase {
    /// The other phase.
    pub fn flipped(self) -> Phase {
        match self {
            Phase::Positive => Phase::Negative,
            Phase::Negative => Phase::Positive,
        }
    }

    /// `true` for [`Phase::Negative`].
    pub fn is_negative(self) -> bool {
        self == Phase::Negative
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Positive => write!(f, "+"),
            Phase::Negative => write!(f, "-"),
        }
    }
}

/// A phase per output of the network's combinational view (primary outputs
/// first, then latch data inputs; see
/// [`DominoSynthesizer::view_outputs`](crate::DominoSynthesizer::view_outputs)).
///
/// # Example
///
/// ```
/// use domino_phase::{Phase, PhaseAssignment};
///
/// let mut pa = PhaseAssignment::all_positive(3);
/// pa.flip(1);
/// assert_eq!(pa.phase(1), Phase::Negative);
/// assert_eq!(pa.to_string(), "+-+");
/// assert_eq!(pa.negative_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PhaseAssignment {
    phases: Vec<Phase>,
}

impl PhaseAssignment {
    /// All outputs in positive phase.
    pub fn all_positive(n: usize) -> Self {
        PhaseAssignment {
            phases: vec![Phase::Positive; n],
        }
    }

    /// All outputs in negative phase.
    pub fn all_negative(n: usize) -> Self {
        PhaseAssignment {
            phases: vec![Phase::Negative; n],
        }
    }

    /// From an explicit phase vector.
    pub fn from_phases(phases: Vec<Phase>) -> Self {
        PhaseAssignment { phases }
    }

    /// Assignment number `bits` of the `2^n` possibilities: bit `i` set ⇒
    /// output `i` negative. Used by exhaustive search.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn from_bits(n: usize, bits: u64) -> Self {
        assert!(n <= 64, "from_bits supports at most 64 outputs");
        PhaseAssignment {
            phases: (0..n)
                .map(|i| {
                    if bits & (1 << i) != 0 {
                        Phase::Negative
                    } else {
                        Phase::Positive
                    }
                })
                .collect(),
        }
    }

    /// Number of outputs.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// `true` if there are no outputs.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Phase of output `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn phase(&self, i: usize) -> Phase {
        self.phases[i]
    }

    /// Sets the phase of output `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, phase: Phase) {
        self.phases[i] = phase;
    }

    /// Flips the phase of output `i` and returns the new phase.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn flip(&mut self, i: usize) -> Phase {
        self.phases[i] = self.phases[i].flipped();
        self.phases[i]
    }

    /// Iterates over the phases in output order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Phase> + '_ {
        self.phases.iter().copied()
    }

    /// Number of negative-phase outputs (= output boundary inverters).
    pub fn negative_count(&self) -> usize {
        self.phases.iter().filter(|p| p.is_negative()).count()
    }
}

impl fmt::Display for PhaseAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.phases {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(PhaseAssignment::all_positive(2).negative_count(), 0);
        assert_eq!(PhaseAssignment::all_negative(2).negative_count(), 2);
        let pa = PhaseAssignment::from_bits(4, 0b1010);
        assert_eq!(pa.to_string(), "+-+-");
    }

    #[test]
    fn flip_roundtrip() {
        let mut pa = PhaseAssignment::all_positive(1);
        assert_eq!(pa.flip(0), Phase::Negative);
        assert_eq!(pa.flip(0), Phase::Positive);
    }

    #[test]
    fn from_bits_covers_all_assignments() {
        let n = 3;
        let mut seen = std::collections::HashSet::new();
        for bits in 0..(1u64 << n) {
            seen.insert(PhaseAssignment::from_bits(n, bits));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn phase_flipped() {
        assert_eq!(Phase::Positive.flipped(), Phase::Negative);
        assert!(!Phase::Positive.is_negative());
        assert!(Phase::Negative.is_negative());
        assert_eq!(Phase::default(), Phase::Positive);
    }
}
