use std::error::Error;
use std::fmt;

use domino_bdd::BddError;
use domino_netlist::NetlistError;

/// Errors from domino synthesis and phase-assignment search.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PhaseError {
    /// The underlying netlist was invalid or mis-sized.
    Netlist(NetlistError),
    /// BDD construction or probability computation failed.
    Bdd(BddError),
    /// A phase assignment's length does not match the network's output view.
    AssignmentMismatch {
        /// Outputs in the network's combinational view.
        expected: usize,
        /// Phases supplied.
        got: usize,
    },
    /// A per-input probability vector had the wrong length.
    ProbabilityMismatch {
        /// Primary input count.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// The flow was cooperatively cancelled at a stage boundary (see
    /// [`flow::minimize_power_with_cancel`](crate::flow::minimize_power_with_cancel)).
    Cancelled,
}

impl fmt::Display for PhaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhaseError::Netlist(e) => write!(f, "netlist error: {e}"),
            PhaseError::Bdd(e) => write!(f, "bdd error: {e}"),
            PhaseError::AssignmentMismatch { expected, got } => write!(
                f,
                "phase assignment has {got} phases but the network view has {expected} outputs"
            ),
            PhaseError::ProbabilityMismatch { expected, got } => write!(
                f,
                "expected {expected} primary-input probabilities, got {got}"
            ),
            PhaseError::Cancelled => write!(f, "flow cancelled"),
        }
    }
}

impl Error for PhaseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PhaseError::Netlist(e) => Some(e),
            PhaseError::Bdd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for PhaseError {
    fn from(e: NetlistError) -> Self {
        PhaseError::Netlist(e)
    }
}

impl From<BddError> for PhaseError {
    fn from(e: BddError) -> Self {
        PhaseError::Bdd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PhaseError::AssignmentMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("2 phases"));
        let e: PhaseError = NetlistError::DuplicateName("x".into()).into();
        assert!(Error::source(&e).is_some());
    }
}
