//! Phase-assignment search: the minimum-area baseline of Puri et al. \[15\]
//! and the paper's minimum-power greedy loop (§4.1).
//!
//! Both searches share an incremental [`ConeAccountant`] that maintains the
//! union of per-output demand cones under the current assignment with
//! reference counts, so changing one output's phase costs `O(|cone|)` rather
//! than a full resynthesis. The accountant is exact: its totals equal
//! [`estimate_power`](crate::power::estimate_power) /
//! [`DominoNetwork::area_cells`](crate::DominoNetwork::area_cells) on the
//! synthesized network (asserted by tests).

use domino_netlist::NodeKind;

use crate::cost::CostModel;
use crate::error::PhaseError;
use crate::phase_assignment::{Phase, PhaseAssignment};
use crate::power::{
    fixed_to_power, power_to_fixed, static_switching, FixedPower, PowerModel, POWER_FRAC_BITS,
};
use crate::prob::NodeProbabilities;
use crate::synth::{ConeDemand, DemandRoot, DominoGateKind, DominoSynthesizer};

/// What the accountant optimizes.
#[derive(Debug, Clone)]
pub enum Objective<'p> {
    /// Cell count: domino gates + boundary inverters (the \[15\] baseline).
    Area,
    /// Switching-weighted power `Σ S·C·P` plus boundary inverters — the
    /// paper's estimate.
    Power {
        /// Base (positive-polarity) probability per original node index.
        probs: &'p [f64],
        /// Element weights.
        model: PowerModel,
    },
}

/// Incremental objective evaluator over phase assignments.
///
/// Maintains, for the current assignment, reference counts over demanded
/// `(node, polarity)` gates and complemented sources; the weighted total
/// updates in `O(|cone|)` per phase change.
///
/// The reference counts are dense per-node arrays indexed by the arena
/// index (`gate_refs[node][polarity]`, `inv_refs[node]`) rather than hash
/// maps: a phase change touches every gate of a cone, so the count update
/// is the innermost loop of both searches and a bounds-checked array slot
/// beats a hash per gate.
///
/// # Fixed-point totals
///
/// Every element weight is quantized once, at construction, onto the
/// [`FixedPower`] `2⁻⁴⁰` grid (`gate_weights[node][polarity]`,
/// `inv_weights[node]`), and the three running components are plain `i64`
/// sums of those table entries. A phase change therefore applies an
/// **incremental integer delta** per touched element — no per-step weight
/// recomputation — and because integer addition is associative and
/// commutative the total is *path-independent*: an accountant flipped to an
/// assignment step by step carries bit-identical totals to one freshly
/// seeded there, which is what lets [`search_objective`] shard the
/// exhaustive walk for *every* objective, power included.
#[derive(Debug)]
pub struct ConeAccountant<'a, 'p> {
    synth: &'a DominoSynthesizer<'a>,
    objective: Objective<'p>,
    current: PhaseAssignment,
    demands: Vec<[Option<FlatDemand>; 2]>,
    /// Refcount per gate slot (`2·node + polarity`).
    gate_refs: Vec<u32>,
    inv_refs: Vec<u32>,
    /// Quantized weight per gate slot (`2·node + polarity`).
    gate_weights: Vec<FixedPower>,
    /// Quantized weight of the input-boundary inverter on each source.
    inv_weights: Vec<FixedPower>,
    block: FixedPower,
    input_inv: FixedPower,
    output_inv: FixedPower,
}

/// A [`ConeDemand`](crate::synth::ConeDemand) pre-flattened for the
/// accountant's innermost loop: gate demands as flat `2·node + polarity`
/// slots into the refcount/weight arrays, complemented sources as plain
/// node indices. Computed once per `(output, phase)` and walked on every
/// phase change.
#[derive(Debug)]
struct FlatDemand {
    gate_slots: Vec<u32>,
    inv_slots: Vec<u32>,
    root: DemandRoot,
}

impl<'a, 'p> ConeAccountant<'a, 'p> {
    /// Creates an accountant positioned at `initial`.
    ///
    /// # Errors
    ///
    /// Returns [`PhaseError::AssignmentMismatch`] if `initial` does not
    /// match the synthesizer's view outputs.
    pub fn new(
        synth: &'a DominoSynthesizer<'a>,
        objective: Objective<'p>,
        initial: PhaseAssignment,
    ) -> Result<Self, PhaseError> {
        let n = synth.view_outputs().len();
        if initial.len() != n {
            return Err(PhaseError::AssignmentMismatch {
                expected: n,
                got: initial.len(),
            });
        }
        let n_nodes = synth.network().len();
        let (gate_weights, inv_weights) = build_weight_tables(synth, &objective);
        let mut acct = ConeAccountant {
            synth,
            objective,
            current: PhaseAssignment::all_positive(n),
            demands: std::iter::repeat_with(|| [None, None]).take(n).collect(),
            gate_refs: vec![0; 2 * n_nodes],
            inv_refs: vec![0; n_nodes],
            gate_weights,
            inv_weights,
            block: 0,
            input_inv: 0,
            output_inv: 0,
        };
        for i in 0..n {
            acct.add_cone(i, Phase::Positive);
        }
        // Move to the requested assignment.
        for i in 0..n {
            acct.set_phase(i, initial.phase(i));
        }
        Ok(acct)
    }

    /// The current assignment.
    pub fn assignment(&self) -> &PhaseAssignment {
        &self.current
    }

    /// Objective total under the current assignment, in weight units.
    pub fn total(&self) -> f64 {
        fixed_to_power(self.fixed_total())
    }

    /// The exact fixed-point total — what the searches compare. Equal
    /// assignments give equal bits regardless of the flip path taken to
    /// reach them (see the type-level docs).
    pub fn fixed_total(&self) -> FixedPower {
        self.block + self.input_inv + self.output_inv
    }

    /// `(block, input inverters, output inverters)` components.
    pub fn components(&self) -> (f64, f64, f64) {
        (
            fixed_to_power(self.block),
            fixed_to_power(self.input_inv),
            fixed_to_power(self.output_inv),
        )
    }

    /// Changes output `i`'s phase; no-op if unchanged.
    pub fn set_phase(&mut self, i: usize, phase: Phase) {
        let old = self.current.phase(i);
        if old == phase {
            return;
        }
        self.remove_cone(i, old);
        self.add_cone(i, phase);
        self.current.set(i, phase);
    }

    /// Flips output `i`.
    pub fn flip(&mut self, i: usize) {
        self.set_phase(i, self.current.phase(i).flipped());
    }

    /// Quantized weight of the output-boundary inverter a negative-phase
    /// output adds on `root`. Pure in `root`, so repeated add/remove of the
    /// same cone cancels exactly in the integer total.
    fn output_inverter_weight(&self, root: DemandRoot) -> FixedPower {
        match &self.objective {
            Objective::Area => AREA_UNIT,
            Objective::Power { probs, model } => {
                let p = match root {
                    DemandRoot::Node(n, c) | DemandRoot::Source(n, c) => {
                        let base = probs[n.index()];
                        if c {
                            1.0 - base
                        } else {
                            base
                        }
                    }
                    DemandRoot::Constant(v) => {
                        if v {
                            1.0
                        } else {
                            0.0
                        }
                    }
                };
                power_to_fixed(p * model.inverter_cap)
            }
        }
    }

    /// Moves the (lazily computed) flattened demand of `(i, phase)` out of
    /// the cache so the caller can walk it while mutating the refcount
    /// arrays; must be returned with [`Self::put_demand`]. A move instead
    /// of a clone — the cone walk is the innermost loop of both searches
    /// and a per-walk `Vec` clone would dominate its cost.
    fn take_demand(&mut self, i: usize, phase: Phase) -> FlatDemand {
        let slot = phase.is_negative() as usize;
        if self.demands[i][slot].is_none() {
            let cd: ConeDemand = self.synth.cone_demand(i, phase);
            self.demands[i][slot] = Some(FlatDemand {
                gate_slots: cd
                    .gates
                    .iter()
                    .map(|&(n, c)| (2 * n.index() + usize::from(c)) as u32)
                    .collect(),
                inv_slots: cd
                    .complemented_sources
                    .iter()
                    .map(|&s| s.index() as u32)
                    .collect(),
                root: cd.root,
            });
        }
        self.demands[i][slot].take().expect("just filled")
    }

    fn put_demand(&mut self, i: usize, phase: Phase, demand: FlatDemand) {
        self.demands[i][phase.is_negative() as usize] = Some(demand);
    }

    fn add_cone(&mut self, i: usize, phase: Phase) {
        let demand = self.take_demand(i, phase);
        for &slot in &demand.gate_slots {
            let count = &mut self.gate_refs[slot as usize];
            *count += 1;
            if *count == 1 {
                self.block += self.gate_weights[slot as usize];
            }
        }
        for &s in &demand.inv_slots {
            let count = &mut self.inv_refs[s as usize];
            *count += 1;
            if *count == 1 {
                self.input_inv += self.inv_weights[s as usize];
            }
        }
        if phase.is_negative() {
            self.output_inv += self.output_inverter_weight(demand.root);
        }
        self.put_demand(i, phase, demand);
    }

    fn remove_cone(&mut self, i: usize, phase: Phase) {
        let demand = self.take_demand(i, phase);
        for &slot in &demand.gate_slots {
            let count = &mut self.gate_refs[slot as usize];
            assert!(*count > 0, "removing unaccounted gate");
            *count -= 1;
            if *count == 0 {
                self.block -= self.gate_weights[slot as usize];
            }
        }
        for &s in &demand.inv_slots {
            let count = &mut self.inv_refs[s as usize];
            assert!(*count > 0, "removing unaccounted inverter");
            *count -= 1;
            if *count == 0 {
                self.input_inv -= self.inv_weights[s as usize];
            }
        }
        if phase.is_negative() {
            self.output_inv -= self.output_inverter_weight(demand.root);
        }
        self.put_demand(i, phase, demand);
    }
}

/// One cell or inverter in the area objective: weight `1.0`, exact in
/// fixed point (`2⁴⁰` units).
const AREA_UNIT: FixedPower = 1 << POWER_FRAC_BITS;

/// Quantizes every per-element weight once, up front: the per-flip work of
/// [`ConeAccountant`] then reduces to integer table deltas (the fix for the
/// old per-step weight recomputation in the exhaustive power walk). Gate
/// weights are laid out flat, `2·node + polarity`, matching
/// [`FlatDemand::gate_slots`].
fn build_weight_tables(
    synth: &DominoSynthesizer<'_>,
    objective: &Objective<'_>,
) -> (Vec<FixedPower>, Vec<FixedPower>) {
    let net = synth.network();
    let n_nodes = net.len();
    match objective {
        Objective::Area => (vec![AREA_UNIT; 2 * n_nodes], vec![AREA_UNIT; n_nodes]),
        Objective::Power { probs, model } => {
            let mut gate_weights = vec![0 as FixedPower; 2 * n_nodes];
            let mut inv_weights = vec![0 as FixedPower; n_nodes];
            for idx in 0..n_nodes {
                let node = net.node(domino_netlist::NodeId::from_index(idx));
                let p = probs[idx];
                if matches!(node.kind, NodeKind::And | NodeKind::Or) {
                    for (pol, complemented) in [(0usize, false), (1usize, true)] {
                        let kind = match (node.kind, complemented) {
                            (NodeKind::And, false) | (NodeKind::Or, true) => DominoGateKind::And,
                            _ => DominoGateKind::Or,
                        };
                        let rail = if complemented { 1.0 - p } else { p };
                        gate_weights[2 * idx + pol] =
                            power_to_fixed(rail * model.gate_weight(kind));
                    }
                }
                inv_weights[idx] = power_to_fixed(static_switching(p) * model.inverter_cap);
            }
            (gate_weights, inv_weights)
        }
    }
}

/// Result of a phase-assignment search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The assignment found.
    pub assignment: PhaseAssignment,
    /// Objective value at that assignment (cells for area, switching-power
    /// for power).
    pub objective: f64,
    /// Number of candidate evaluations (synthesize + measure steps).
    pub evaluations: usize,
    /// Number of committed changes.
    pub commits: usize,
    /// Objective after each commit (convergence trace, Figure 6).
    pub trace: Vec<f64>,
}

/// Configuration for [`min_area_assignment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinAreaConfig {
    /// Up to this many outputs the search is exhaustive over all `2^n`
    /// assignments (gray-code walk, `O(cone)` per step) — this makes the
    /// baseline *optimal* like the paper's \[15\] runs.
    pub exhaustive_limit: usize,
    /// Hill-climbing passes for larger output counts.
    pub max_passes: usize,
}

impl Default for MinAreaConfig {
    fn default() -> Self {
        MinAreaConfig {
            exhaustive_limit: 16,
            max_passes: 32,
        }
    }
}

/// Minimum-area phase assignment — the Puri et al. \[15\] baseline: exhaustive
/// for small output counts, single-flip hill climbing from all-positive
/// otherwise.
///
/// # Errors
///
/// Propagates [`PhaseError`] from accounting (never fails on a validated
/// synthesizer).
pub fn min_area_assignment(
    synth: &DominoSynthesizer<'_>,
    config: &MinAreaConfig,
) -> Result<SearchOutcome, PhaseError> {
    search_objective(synth, Objective::Area, config)
}

/// Generic exhaustive/hill-climbing search over an [`Objective`] — the
/// machinery behind [`min_area_assignment`], also used to find the *true*
/// optimum power assignment on small circuits (frg1's 8-assignment space).
///
/// The exhaustive branch walks all `2^n` assignments in Gray-code order
/// (one flip per step, `O(|cone|)` each); large enough spaces are sharded
/// across [`GRAY_SHARDS`] `std::thread` workers with a deterministic merge.
/// Since the accountant's fixed-point totals are path-independent integers
/// this applies to **every** objective — power included — and the result is
/// bit-identical to the single-threaded walk (see `gray_walk`).
///
/// # Errors
///
/// Propagates [`PhaseError`] from accounting.
///
/// # Example
///
/// ```
/// use domino_phase::search::{search_objective, MinAreaConfig, Objective};
/// use domino_phase::DominoSynthesizer;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut net = domino_netlist::Network::new("ex");
/// let a = net.add_input("a")?;
/// let b = net.add_input("b")?;
/// let f = net.add_and([a, b])?;
/// let g = net.add_not(f)?;
/// net.add_output("f", f)?;
/// net.add_output("g", g)?;
/// let synth = DominoSynthesizer::new(&net)?;
/// let outcome = search_objective(&synth, Objective::Area, &MinAreaConfig::default())?;
/// // Exhaustive over 2² assignments; the optimum shares the AND gate.
/// assert_eq!(outcome.evaluations, 4);
/// # Ok(())
/// # }
/// ```
pub fn search_objective(
    synth: &DominoSynthesizer<'_>,
    objective: Objective<'_>,
    config: &MinAreaConfig,
) -> Result<SearchOutcome, PhaseError> {
    let n = synth.view_outputs().len();
    let auto_shards =
        if n <= config.exhaustive_limit && n > 0 && (1u64 << n) >= GRAY_SHARD_MIN_STEPS {
            GRAY_SHARDS
        } else {
            1
        };
    search_objective_with_shards(synth, objective, config, auto_shards)
}

/// [`search_objective`] with an explicit shard count for the exhaustive
/// branch (clamped to `[1, 16]`; the hill-climbing branch is inherently
/// sequential and ignores it). The outcome is bit-identical for every
/// shard count — exposed so tests and benches can pin that contract
/// directly; ordinary callers should use [`search_objective`], which picks
/// the count automatically.
///
/// # Errors
///
/// Propagates [`PhaseError`] from accounting.
pub fn search_objective_with_shards(
    synth: &DominoSynthesizer<'_>,
    objective: Objective<'_>,
    config: &MinAreaConfig,
    shards: usize,
) -> Result<SearchOutcome, PhaseError> {
    let n = synth.view_outputs().len();
    if n <= config.exhaustive_limit && n > 0 {
        return gray_walk(synth, &objective, n, shards);
    }

    let mut acct = ConeAccountant::new(synth, objective, PhaseAssignment::all_positive(n))?;
    let mut evaluations = 1usize;
    let mut best = acct.fixed_total();
    let mut best_assignment = acct.assignment().clone();
    let mut trace = vec![fixed_to_power(best)];
    let mut commits = 0usize;

    // Hill climbing on single flips.
    for _ in 0..config.max_passes {
        let mut improved = false;
        for i in 0..n {
            acct.flip(i);
            evaluations += 1;
            let total = acct.fixed_total();
            if total < best {
                best = total;
                best_assignment = acct.assignment().clone();
                trace.push(fixed_to_power(best));
                commits += 1;
                improved = true;
            } else {
                acct.flip(i); // revert
            }
        }
        if !improved {
            break;
        }
    }
    Ok(SearchOutcome {
        assignment: best_assignment,
        objective: fixed_to_power(best),
        evaluations,
        commits,
        trace,
    })
}

/// Worker count of a sharded exhaustive walk. A fixed constant (rather
/// than the machine's core count) so the shard boundaries — and therefore
/// the floating-point accumulation paths — are identical on every machine.
pub const GRAY_SHARDS: usize = 8;

/// Smallest `2^n` for which the walk is sharded; below this the thread
/// spawn/merge overhead exceeds the walk itself.
const GRAY_SHARD_MIN_STEPS: u64 = 1 << 12;

/// A shard-local improvement candidate of the Gray-code walk.
struct GrayCandidate {
    step: u64,
    total: FixedPower,
}

/// Exhaustive Gray-code walk over all `2^n` assignments, sharded across
/// `shards` workers.
///
/// The global walk visits assignment `gray(s) = s ^ (s >> 1)` at step `s`.
/// The step range `[0, 2^n)` is split into `shards` contiguous
/// near-equal chunks (earlier shards take the remainder, so every shard
/// count covers every step exactly once): shard `w` positions a private
/// [`ConeAccountant`] at its range's first assignment, walks the range
/// flipping `trailing_zeros(step)` per step, and records every *strict
/// prefix minimum* (strictly smaller than everything earlier in the
/// shard).
///
/// Totals are the accountant's fixed-point integers, so they are **exact**
/// and path-independent for every objective: a shard accountant freshly
/// seeded at its range start carries the same bits as one flipped there
/// sequentially. The sequential walk commits step `s` iff
/// `total(s) < min(totals before s)` — exactly the strict prefix minima of
/// the global sequence, each of which is also a strict prefix minimum of
/// its own shard. Replaying the recorded candidates in global step order
/// through the same commit rule therefore reproduces the single-threaded
/// result bit for bit — same assignment, objective, trace and commit
/// count, independent of `shards`. (Before the fixed-point weights this
/// held only for the integer-weighted area objective; `f64` power totals
/// were accumulation-path-dependent, which is why power walks used to be
/// single-threaded.)
fn gray_walk(
    synth: &DominoSynthesizer<'_>,
    objective: &Objective<'_>,
    n: usize,
    shards: usize,
) -> Result<SearchOutcome, PhaseError> {
    let total_steps = 1u64 << n;
    // Each shard must own at least one step; earlier shards take the
    // remainder of the balanced split, so any count in [1, 16] covers
    // every step exactly once.
    let shards = (shards.clamp(1, 16) as u64).min(total_steps);
    let base = total_steps / shards;
    let rem = total_steps % shards;

    let walk_shard = |w: u64| -> Result<Vec<GrayCandidate>, PhaseError> {
        let start = w * base + w.min(rem);
        let len = base + u64::from(w < rem);
        let start_bits = start ^ (start >> 1);
        let mut acct = ConeAccountant::new(
            synth,
            objective.clone(),
            PhaseAssignment::from_bits(n, start_bits),
        )?;
        let mut local_best = FixedPower::MAX;
        let mut candidates = Vec::new();
        let mut record = |step: u64, total: FixedPower, local_best: &mut FixedPower| {
            if total < *local_best {
                *local_best = total;
                candidates.push(GrayCandidate { step, total });
            }
        };
        record(start, acct.fixed_total(), &mut local_best);
        for step in start + 1..start + len {
            acct.flip(step.trailing_zeros() as usize);
            record(step, acct.fixed_total(), &mut local_best);
        }
        Ok(candidates)
    };

    let shard_results: Vec<Result<Vec<GrayCandidate>, PhaseError>> = if shards == 1 {
        vec![walk_shard(0)]
    } else {
        std::thread::scope(|scope| {
            let walk_shard = &walk_shard;
            let handles: Vec<_> = (0..shards)
                .map(|w| scope.spawn(move || walk_shard(w)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("gray-walk shard panicked"))
                .collect()
        })
    };

    // Deterministic merge in global step order.
    let mut best = FixedPower::MAX;
    let mut best_step = 0u64;
    let mut trace = Vec::new();
    let mut commits = 0usize;
    for candidates in shard_results {
        for cand in candidates? {
            if cand.step == 0 {
                // The sequential loop seeds `best` with the all-positive
                // total before walking (not a commit).
                best = cand.total;
                best_step = 0;
                trace.push(fixed_to_power(best));
            } else if cand.total < best {
                best = cand.total;
                best_step = cand.step;
                trace.push(fixed_to_power(best));
                commits += 1;
            }
        }
    }
    Ok(SearchOutcome {
        assignment: PhaseAssignment::from_bits(n, best_step ^ (best_step >> 1)),
        objective: fixed_to_power(best),
        evaluations: total_steps as usize,
        commits,
        trace,
    })
}

/// Configuration for [`min_power_assignment`].
#[derive(Debug, Clone, PartialEq)]
pub struct MinPowerConfig {
    /// Element weights of the power estimate.
    pub model: PowerModel,
    /// Commit every candidate even if measured power did not decrease
    /// (ablation A4; the paper commits only on improvement).
    pub always_commit: bool,
    /// Use the cost function `K` to order candidate pairs (the paper's
    /// heuristic). When `false`, pairs are visited in a seeded random order
    /// (ablation A3) with the combination still chosen by `K`.
    pub k_guided: bool,
    /// Seed for the random pair order when `k_guided` is `false`.
    pub seed: u64,
    /// Measurement-driven single-flip hill-climbing passes *after* the
    /// pairwise loop. The paper's loop consumes each pair once, so an
    /// unluckily ranked combination can strand an output in the wrong
    /// phase; one cheap refinement pass fixes that (set to 0 for the
    /// strictly literal §4.1 algorithm).
    pub refinement_passes: usize,
}

impl Default for MinPowerConfig {
    fn default() -> Self {
        MinPowerConfig {
            model: PowerModel::unit(),
            always_commit: false,
            k_guided: true,
            seed: 1,
            refinement_passes: 1,
        }
    }
}

/// Ordered f64 key for the candidate heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    cost: f64,
    i: usize,
    j: usize,
    phase_i: Phase,
    phase_j: Phase,
    version_i: u64,
    version_j: u64,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min cost on top.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| (other.i, other.j).cmp(&(self.i, self.j)))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The paper's §4.1 minimum-power phase assignment heuristic.
///
/// 1. start from an arbitrary initial assignment and measure its power;
/// 2. for every pair of outputs, compute the cost `K` of the four keep/flip
///    combinations;
/// 3. take the globally cheapest `(pair, combination)`;
/// 4. synthesize that candidate and measure its power;
/// 5. commit iff the power decreased;
/// 6. remove the pair from the candidate set and repeat until empty.
///
/// The per-candidate measurement uses the incremental [`ConeAccountant`]
/// (exactly equal to a full resynthesis + `Σ S·C·P` estimate).
///
/// # Errors
///
/// Returns [`PhaseError::AssignmentMismatch`] if `initial` has the wrong
/// length.
///
/// # Example
///
/// The paper's Figure 5 pair at `p(PI) = 0.9`: the heuristic finds the
/// `(f−, g+)` assignment, 75% cheaper than the all-positive one.
///
/// ```
/// use domino_phase::prob::{compute_probabilities, ProbabilityConfig};
/// use domino_phase::search::{min_power_assignment, MinPowerConfig};
/// use domino_phase::{DominoSynthesizer, Phase, PhaseAssignment};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = domino_workloads::figures::fig5_network()?;
/// let probs = compute_probabilities(&net, &[0.9; 4], &ProbabilityConfig::default())?;
/// let synth = DominoSynthesizer::new(&net)?;
/// let outcome = min_power_assignment(
///     &synth,
///     &probs,
///     PhaseAssignment::all_positive(2),
///     &MinPowerConfig::default(),
/// )?;
/// assert_eq!(outcome.assignment.phase(0), Phase::Negative); // f flipped
/// assert_eq!(outcome.assignment.phase(1), Phase::Positive); // g kept
/// assert!((outcome.objective - 1.1219).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn min_power_assignment(
    synth: &DominoSynthesizer<'_>,
    probs: &NodeProbabilities,
    initial: PhaseAssignment,
    config: &MinPowerConfig,
) -> Result<SearchOutcome, PhaseError> {
    let n = synth.view_outputs().len();
    let cost_model = CostModel::new(synth, probs);
    let mut acct = ConeAccountant::new(
        synth,
        Objective::Power {
            probs: probs.as_slice(),
            model: config.model,
        },
        initial,
    )?;
    let mut best = acct.fixed_total();
    let mut trace = vec![fixed_to_power(best)];
    let mut evaluations = 0usize;
    let mut commits = 0usize;

    if n >= 2 {
        let mut versions = vec![0u64; n];
        let mut removed = std::collections::HashSet::new();
        if config.k_guided {
            let mut heap = std::collections::BinaryHeap::new();
            for i in 0..n {
                for j in i + 1..n {
                    let (pi, pj, k) = cost_model.pair_best(i, j, acct.assignment());
                    heap.push(HeapEntry {
                        cost: k,
                        i,
                        j,
                        phase_i: pi,
                        phase_j: pj,
                        version_i: 0,
                        version_j: 0,
                    });
                }
            }
            while let Some(entry) = heap.pop() {
                if removed.contains(&(entry.i, entry.j)) {
                    continue;
                }
                if entry.version_i != versions[entry.i] || entry.version_j != versions[entry.j] {
                    // Stale: recompute under the current assignment.
                    let (pi, pj, k) = cost_model.pair_best(entry.i, entry.j, acct.assignment());
                    heap.push(HeapEntry {
                        cost: k,
                        i: entry.i,
                        j: entry.j,
                        phase_i: pi,
                        phase_j: pj,
                        version_i: versions[entry.i],
                        version_j: versions[entry.j],
                    });
                    continue;
                }
                evaluate_pair(
                    &mut acct,
                    entry.i,
                    entry.j,
                    entry.phase_i,
                    entry.phase_j,
                    config,
                    &mut best,
                    &mut trace,
                    &mut evaluations,
                    &mut commits,
                    &mut versions,
                );
                removed.insert((entry.i, entry.j));
            }
        } else {
            // Ablation: random pair order, combination still by K.
            let mut pairs: Vec<(usize, usize)> = (0..n)
                .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
                .collect();
            let mut state = config.seed | 1;
            for idx in (1..pairs.len()).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let j = (state % (idx as u64 + 1)) as usize;
                pairs.swap(idx, j);
            }
            for (i, j) in pairs {
                let (pi, pj, _) = cost_model.pair_best(i, j, acct.assignment());
                evaluate_pair(
                    &mut acct,
                    i,
                    j,
                    pi,
                    pj,
                    config,
                    &mut best,
                    &mut trace,
                    &mut evaluations,
                    &mut commits,
                    &mut versions,
                );
            }
        }
    }

    // Optional refinement: measurement-driven single flips.
    for _ in 0..config.refinement_passes {
        let mut improved = false;
        for i in 0..n {
            acct.flip(i);
            evaluations += 1;
            let total = acct.fixed_total();
            if total < best {
                best = total;
                trace.push(fixed_to_power(total));
                commits += 1;
                improved = true;
            } else {
                acct.flip(i);
            }
        }
        if !improved {
            break;
        }
    }

    Ok(SearchOutcome {
        assignment: acct.assignment().clone(),
        objective: fixed_to_power(best),
        evaluations,
        commits,
        trace,
    })
}

/// The *optimal* minimum-power assignment by exhaustive gray-code search —
/// feasible exactly when the paper says it is (frg1's "only 2³ or 8
/// possible phase assignments"). Used to certify the heuristic on small
/// circuits.
///
/// # Errors
///
/// Propagates [`PhaseError`] from accounting.
///
/// # Panics
///
/// Panics if the network has more than 20 view outputs (2²⁰ evaluations).
pub fn optimal_power_assignment(
    synth: &DominoSynthesizer<'_>,
    probs: &NodeProbabilities,
    model: PowerModel,
) -> Result<SearchOutcome, PhaseError> {
    let n = synth.view_outputs().len();
    assert!(n <= 20, "exhaustive power search is exponential in outputs");
    search_objective(
        synth,
        Objective::Power {
            probs: probs.as_slice(),
            model,
        },
        &MinAreaConfig {
            exhaustive_limit: 20,
            max_passes: 0,
        },
    )
}

/// The §4.1 extension: the cost function `K` generalized from pairs to
/// groups of `group_size` outputs.
///
/// For a group `G` with chosen phases `p`, the cost is
/// `Σ_{i∈G} |D_i|·a_i + ½·Σ_{i<j∈G} O(i,j)·(a_i + a_j)` — the paper's `K`
/// restricted to `|G| = 2`, and "a greedily ordered exhaustive search" as
/// `|G|` approaches the output count. Groups are the `C(n, g)` combinations
/// in K-best order; each group is measured once with its best combination
/// and committed iff power decreases, exactly like the pairwise loop.
///
/// Group sizes beyond 3 get expensive quickly (`C(n,g)·2^g` cost
/// evaluations); sizes 2 and 3 cover the paper's discussion.
///
/// # Errors
///
/// Returns [`PhaseError::AssignmentMismatch`] if `initial` has the wrong
/// length.
///
/// # Panics
///
/// Panics if `group_size < 2`.
pub fn min_power_assignment_grouped(
    synth: &DominoSynthesizer<'_>,
    probs: &NodeProbabilities,
    initial: PhaseAssignment,
    config: &MinPowerConfig,
    group_size: usize,
) -> Result<SearchOutcome, PhaseError> {
    assert!(group_size >= 2, "groups need at least two outputs");
    if group_size == 2 {
        return min_power_assignment(synth, probs, initial, config);
    }
    let n = synth.view_outputs().len();
    let cost_model = CostModel::new(synth, probs);
    let mut acct = ConeAccountant::new(
        synth,
        Objective::Power {
            probs: probs.as_slice(),
            model: config.model,
        },
        initial,
    )?;
    let mut best = acct.fixed_total();
    let mut trace = vec![fixed_to_power(best)];
    let mut evaluations = 0usize;
    let mut commits = 0usize;

    if n >= group_size {
        // Enumerate all C(n, g) groups, order by best-combination K.
        let mut groups: Vec<(f64, Vec<usize>, Vec<Phase>)> = Vec::new();
        let mut members: Vec<usize> = (0..group_size).collect();
        loop {
            let (phases, k) = group_best(&cost_model, &members, acct.assignment());
            groups.push((k, members.clone(), phases));
            // Next combination.
            let mut i = group_size;
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                if members[i] != i + n - group_size {
                    members[i] += 1;
                    for j in i + 1..group_size {
                        members[j] = members[j - 1] + 1;
                    }
                    break;
                }
                if i == 0 {
                    members.clear();
                }
            }
            if members.is_empty() {
                break;
            }
        }
        groups.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (_, members, _phases) in groups {
            // Re-derive the best combination under the *current* assignment
            // (commits since ranking may have changed it).
            let (phases, _) = group_best(&cost_model, &members, acct.assignment());
            let old: Vec<Phase> = members
                .iter()
                .map(|&i| acct.assignment().phase(i))
                .collect();
            if old == phases {
                continue;
            }
            for (&i, &p) in members.iter().zip(&phases) {
                acct.set_phase(i, p);
            }
            evaluations += 1;
            let total = acct.fixed_total();
            if total < best || config.always_commit {
                best = total;
                trace.push(fixed_to_power(total));
                commits += 1;
            } else {
                for (&i, &p) in members.iter().zip(&old) {
                    acct.set_phase(i, p);
                }
            }
        }
    }

    for _ in 0..config.refinement_passes {
        let mut improved = false;
        for i in 0..n {
            acct.flip(i);
            evaluations += 1;
            let total = acct.fixed_total();
            if total < best {
                best = total;
                trace.push(fixed_to_power(total));
                commits += 1;
                improved = true;
            } else {
                acct.flip(i);
            }
        }
        if !improved {
            break;
        }
    }

    Ok(SearchOutcome {
        assignment: acct.assignment().clone(),
        objective: fixed_to_power(best),
        evaluations,
        commits,
        trace,
    })
}

/// Best phase combination for a group under the generalized `K`.
fn group_best(
    cost_model: &CostModel,
    members: &[usize],
    current: &PhaseAssignment,
) -> (Vec<Phase>, f64) {
    let g = members.len();
    let mut best_phases: Vec<Phase> = members.iter().map(|&i| current.phase(i)).collect();
    let mut best_k = f64::INFINITY;
    for combo in 0u32..(1 << g) {
        let phases: Vec<Phase> = members
            .iter()
            .enumerate()
            .map(|(idx, &i)| {
                if combo & (1 << idx) != 0 {
                    current.phase(i).flipped()
                } else {
                    current.phase(i)
                }
            })
            .collect();
        let mut k = 0.0;
        for (idx, &i) in members.iter().enumerate() {
            k += cost_model.cone_size(i) as f64 * cost_model.average(i, phases[idx]);
        }
        for (ia, &i) in members.iter().enumerate() {
            for (ja, &j) in members.iter().enumerate().skip(ia + 1) {
                k += 0.5
                    * cost_model.overlap(i, j)
                    * (cost_model.average(i, phases[ia]) + cost_model.average(j, phases[ja]));
            }
        }
        if k < best_k {
            best_k = k;
            best_phases = phases;
        }
    }
    (best_phases, best_k)
}

#[allow(clippy::too_many_arguments)]
fn evaluate_pair(
    acct: &mut ConeAccountant<'_, '_>,
    i: usize,
    j: usize,
    phase_i: Phase,
    phase_j: Phase,
    config: &MinPowerConfig,
    best: &mut FixedPower,
    trace: &mut Vec<f64>,
    evaluations: &mut usize,
    commits: &mut usize,
    versions: &mut [u64],
) {
    let old_i = acct.assignment().phase(i);
    let old_j = acct.assignment().phase(j);
    if old_i == phase_i && old_j == phase_j {
        // Retain/retain: nothing to measure, power unchanged.
        return;
    }
    acct.set_phase(i, phase_i);
    acct.set_phase(j, phase_j);
    *evaluations += 1;
    let total = acct.fixed_total();
    if total < *best || config.always_commit {
        *best = total;
        trace.push(fixed_to_power(total));
        *commits += 1;
        versions[i] += 1;
        versions[j] += 1;
    } else {
        acct.set_phase(i, old_i);
        acct.set_phase(j, old_j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::estimate_power;
    use crate::prob::{compute_probabilities, ProbabilityConfig};
    use domino_netlist::Network;

    /// The Figure 5 circuit: high-probability cones where phase choice
    /// matters a lot.
    fn fig5() -> Network {
        let mut net = Network::new("fig5");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let d = net.add_input("d").unwrap();
        let aob = net.add_or([a, b]).unwrap();
        let cad = net.add_and([c, d]).unwrap();
        let f = net.add_or([aob, cad]).unwrap();
        let naob = net.add_not(aob).unwrap();
        let ncad = net.add_not(cad).unwrap();
        let g = net.add_or([naob, ncad]).unwrap();
        net.add_output("f", f).unwrap();
        net.add_output("g", g).unwrap();
        net
    }

    fn probs_for(net: &Network, p: f64) -> NodeProbabilities {
        compute_probabilities(
            net,
            &vec![p; net.inputs().len()],
            &ProbabilityConfig::default(),
        )
        .unwrap()
    }

    /// The accountant must agree exactly with full synthesis + estimation
    /// at every assignment.
    #[test]
    fn accountant_matches_full_synthesis() {
        let net = fig5();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let probs = probs_for(&net, 0.9);
        let model = PowerModel::unit();
        let mut acct = ConeAccountant::new(
            &synth,
            Objective::Power {
                probs: probs.as_slice(),
                model,
            },
            PhaseAssignment::all_positive(2),
        )
        .unwrap();
        // Walk all four assignments in gray order.
        for step in 0u64..4 {
            if step > 0 {
                acct.flip(step.trailing_zeros() as usize);
            }
            let pa = acct.assignment().clone();
            let full = synth.synthesize(&pa).unwrap();
            let est = estimate_power(&full, probs.as_slice(), &model);
            assert!(
                (acct.total() - est.total()).abs() < 1e-9,
                "assignment {pa}: acct {} vs full {}",
                acct.total(),
                est.total()
            );
            let (b, ii, oi) = acct.components();
            assert!((b - est.block).abs() < 1e-9);
            assert!((ii - est.input_inverters).abs() < 1e-9);
            assert!((oi - est.output_inverters).abs() < 1e-9);
        }
    }

    #[test]
    fn accountant_matches_area() {
        let net = fig5();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let mut acct =
            ConeAccountant::new(&synth, Objective::Area, PhaseAssignment::all_positive(2)).unwrap();
        for step in 0u64..4 {
            if step > 0 {
                acct.flip(step.trailing_zeros() as usize);
            }
            let full = synth.synthesize(acct.assignment()).unwrap();
            assert_eq!(acct.total() as usize, full.area_cells());
        }
    }

    #[test]
    fn min_area_exhaustive_is_optimal() {
        let net = fig5();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let outcome = min_area_assignment(&synth, &MinAreaConfig::default()).unwrap();
        // Brute force over all four assignments.
        let brute = (0..4u64)
            .map(|bits| {
                let pa = PhaseAssignment::from_bits(2, bits);
                synth.synthesize(&pa).unwrap().area_cells()
            })
            .min()
            .unwrap();
        assert_eq!(outcome.objective as usize, brute);
        assert_eq!(outcome.evaluations, 4);
    }

    #[test]
    fn min_power_finds_figure5_optimum() {
        // The paper's example: at p(PI) = 0.9 the (f−, g+) assignment is
        // 75% cheaper; the greedy heuristic must find it.
        let net = fig5();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let probs = probs_for(&net, 0.9);
        let outcome = min_power_assignment(
            &synth,
            &probs,
            PhaseAssignment::all_positive(2),
            &MinPowerConfig::default(),
        )
        .unwrap();
        assert_eq!(outcome.assignment.phase(0), Phase::Negative, "f flipped");
        assert_eq!(outcome.assignment.phase(1), Phase::Positive, "g kept");
        assert!((outcome.objective - 1.1219).abs() < 1e-9);
        assert!(outcome.commits >= 1);
        // Trace is monotone decreasing.
        for w in outcome.trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn min_power_never_worse_than_initial() {
        let net = fig5();
        let synth = DominoSynthesizer::new(&net).unwrap();
        for p in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let probs = probs_for(&net, p);
            for init_bits in 0..4u64 {
                let init = PhaseAssignment::from_bits(2, init_bits);
                let acct = ConeAccountant::new(
                    &synth,
                    Objective::Power {
                        probs: probs.as_slice(),
                        model: PowerModel::unit(),
                    },
                    init.clone(),
                )
                .unwrap();
                let initial_power = acct.total();
                let outcome =
                    min_power_assignment(&synth, &probs, init, &MinPowerConfig::default()).unwrap();
                assert!(
                    outcome.objective <= initial_power + 1e-12,
                    "p={p} init={init_bits:b}"
                );
            }
        }
    }

    #[test]
    fn random_order_ablation_still_improves() {
        let net = fig5();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let probs = probs_for(&net, 0.9);
        let outcome = min_power_assignment(
            &synth,
            &probs,
            PhaseAssignment::all_positive(2),
            &MinPowerConfig {
                k_guided: false,
                seed: 42,
                ..MinPowerConfig::default()
            },
        )
        .unwrap();
        // With a single pair the random order is irrelevant; it must still
        // find the optimum.
        assert!((outcome.objective - 1.1219).abs() < 1e-9);
    }

    #[test]
    fn heuristic_reaches_the_exhaustive_optimum_on_figure5() {
        // frg1's argument in miniature: with ≤ 2^n assignments the optimum
        // is computable, and the heuristic should land on it.
        let net = fig5();
        let synth = DominoSynthesizer::new(&net).unwrap();
        for p in [0.1, 0.5, 0.9] {
            let probs = probs_for(&net, p);
            let optimal = optimal_power_assignment(&synth, &probs, PowerModel::unit()).unwrap();
            let heuristic = min_power_assignment(
                &synth,
                &probs,
                PhaseAssignment::all_positive(2),
                &MinPowerConfig::default(),
            )
            .unwrap();
            assert!(
                (heuristic.objective - optimal.objective).abs() < 1e-9,
                "p={p}: heuristic {} vs optimal {}",
                heuristic.objective,
                optimal.objective
            );
        }
    }

    #[test]
    fn grouped_search_matches_or_beats_pairwise_on_small_circuits() {
        let net = fig5();
        let synth = DominoSynthesizer::new(&net).unwrap();
        for p in [0.3, 0.5, 0.9] {
            let probs = probs_for(&net, p);
            let pairwise = min_power_assignment(
                &synth,
                &probs,
                PhaseAssignment::all_positive(2),
                &MinPowerConfig::default(),
            )
            .unwrap();
            // group_size == 2 must be identical to the pairwise loop.
            let same = min_power_assignment_grouped(
                &synth,
                &probs,
                PhaseAssignment::all_positive(2),
                &MinPowerConfig::default(),
                2,
            )
            .unwrap();
            assert_eq!(pairwise.assignment, same.assignment);
        }
    }

    #[test]
    fn grouped_search_triples_beat_pairs_when_interaction_matters() {
        // Three outputs sharing one OR-heavy cone: flipping all three
        // together is cheap, flipping any pair leaves a trapped polarity.
        let mut net = Network::new("triple");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let d = net.add_input("d").unwrap();
        let core = net.add_or([a, b, c]).unwrap();
        let f1 = net.add_or([core, d]).unwrap();
        let f2 = net.add_or([core, a]).unwrap();
        let f3 = net.add_or([core, b]).unwrap();
        net.add_output("f1", f1).unwrap();
        net.add_output("f2", f2).unwrap();
        net.add_output("f3", f3).unwrap();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let probs = probs_for(&net, 0.9);
        let strict = MinPowerConfig {
            refinement_passes: 0,
            ..MinPowerConfig::default()
        };
        let pair = min_power_assignment(&synth, &probs, PhaseAssignment::all_positive(3), &strict)
            .unwrap();
        let triple = min_power_assignment_grouped(
            &synth,
            &probs,
            PhaseAssignment::all_positive(3),
            &strict,
            3,
        )
        .unwrap();
        assert!(
            triple.objective <= pair.objective + 1e-12,
            "triples {} vs pairs {}",
            triple.objective,
            pair.objective
        );
    }

    /// 12 outputs with shared, asymmetric cones over 6 inputs — wide
    /// enough (4096 assignments) that [`search_objective`] takes the
    /// sharded walk.
    fn wide12() -> Network {
        let mut net = Network::new("wide12");
        let ins: Vec<_> = (0..6)
            .map(|i| net.add_input(format!("i{i}")).unwrap())
            .collect();
        for i in 0..12usize {
            let g1 = net.add_and([ins[i % 6], ins[(i + 1) % 6]]).unwrap();
            let g2 = net.add_or([g1, ins[(i + 2) % 6]]).unwrap();
            let driver = if i % 2 == 0 {
                g2
            } else {
                net.add_not(g2).unwrap()
            };
            net.add_output(format!("o{i}"), driver).unwrap();
        }
        net
    }

    /// The sharded Gray walk must reproduce the single-threaded walk
    /// exactly — same assignment, same objective bits, same trace — for
    /// any shard count and *every* objective: fixed-point totals are
    /// path-independent integers, so this holds at arbitrary (non-dyadic)
    /// probabilities, which is exactly what lets [`search_objective`]
    /// auto-shard power walks.
    #[test]
    fn sharded_gray_walk_matches_sequential() {
        let net = wide12();
        let synth = DominoSynthesizer::new(&net).unwrap();
        for p in [0.5, 0.9, 0.37] {
            let probs = probs_for(&net, p);
            let objectives = [
                Objective::Area,
                Objective::Power {
                    probs: probs.as_slice(),
                    model: PowerModel::unit(),
                },
            ];
            for objective in objectives {
                let seq = gray_walk(&synth, &objective, 12, 1).unwrap();
                for shards in [2, 3, 4, 7, 8] {
                    let par = gray_walk(&synth, &objective, 12, shards).unwrap();
                    assert_eq!(seq.assignment, par.assignment, "p={p} shards={shards}");
                    assert_eq!(
                        seq.objective.to_bits(),
                        par.objective.to_bits(),
                        "p={p} shards={shards}"
                    );
                    assert_eq!(seq.commits, par.commits, "p={p} shards={shards}");
                    assert_eq!(seq.trace, par.trace, "p={p} shards={shards}");
                    assert_eq!(par.evaluations, 1 << 12);
                }
            }
        }
        // The public entry points (which auto-shard at this width) agree
        // with the explicit single-shard walk, for area and power alike.
        let cfg = MinAreaConfig {
            exhaustive_limit: 12,
            max_passes: 0,
        };
        let probs = probs_for(&net, 0.9);
        for objective in [
            Objective::Area,
            Objective::Power {
                probs: probs.as_slice(),
                model: PowerModel::unit(),
            },
        ] {
            let auto = search_objective(&synth, objective.clone(), &cfg).unwrap();
            let seq = gray_walk(&synth, &objective, 12, 1).unwrap();
            assert_eq!(auto.assignment, seq.assignment);
            assert_eq!(auto.objective.to_bits(), seq.objective.to_bits());
        }
    }

    /// The incremental fixed-point delta must never drift from a full
    /// recomputation: an accountant flipped along a long Gray path carries
    /// bit-identical totals to one freshly seeded at the same assignment.
    #[test]
    fn incremental_totals_match_full_recomputation() {
        let net = wide12();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let probs = probs_for(&net, 0.73);
        let objective = Objective::Power {
            probs: probs.as_slice(),
            model: PowerModel::with_and_penalty(2.5),
        };
        let mut walker =
            ConeAccountant::new(&synth, objective.clone(), PhaseAssignment::all_positive(12))
                .unwrap();
        for step in 1u64..512 {
            walker.flip(step.trailing_zeros() as usize);
            if step % 37 == 0 {
                let fresh =
                    ConeAccountant::new(&synth, objective.clone(), walker.assignment().clone())
                        .unwrap();
                assert_eq!(
                    walker.fixed_total(),
                    fresh.fixed_total(),
                    "step {step}: incremental vs full recomputation"
                );
            }
        }
    }

    /// The sharded exhaustive optimum must equal brute force over a
    /// smaller space where brute force is cheap.
    #[test]
    fn sharded_walk_finds_the_true_optimum() {
        let net = wide12();
        let synth = DominoSynthesizer::new(&net).unwrap();
        // Walk the full 2^12 space sharded; verify against the best of a
        // sequential walk (already proven equal to brute force for the
        // 2-output case by `min_area_exhaustive_is_optimal`).
        let sharded = gray_walk(&synth, &Objective::Area, 12, 8).unwrap();
        let sequential = gray_walk(&synth, &Objective::Area, 12, 1).unwrap();
        assert_eq!(sharded.objective, sequential.objective);
        // And the reported assignment really achieves the reported cost.
        let full = synth.synthesize(&sharded.assignment).unwrap();
        assert_eq!(sharded.objective as usize, full.area_cells());
    }

    #[test]
    fn always_commit_ablation_can_end_worse() {
        let net = fig5();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let probs = probs_for(&net, 0.9);
        let strict = min_power_assignment(
            &synth,
            &probs,
            PhaseAssignment::all_positive(2),
            &MinPowerConfig::default(),
        )
        .unwrap();
        let always = min_power_assignment(
            &synth,
            &probs,
            PhaseAssignment::all_positive(2),
            &MinPowerConfig {
                always_commit: true,
                ..MinPowerConfig::default()
            },
        )
        .unwrap();
        // The strict policy is never worse.
        assert!(strict.objective <= always.objective + 1e-12);
    }
}
