//! Inverter-free domino synthesis for a given phase assignment (paper §3).
//!
//! Given a technology-independent AND/OR/NOT network and a [`Phase`] per
//! output, [`DominoSynthesizer::synthesize`] pushes every inverter to the
//! block boundary with DeMorgan's law:
//!
//! * each internal node may be demanded *direct* or *complemented*;
//! * a complemented AND becomes an OR of complemented fanins (and vice
//!   versa), so the complement flag propagates unchanged through AND/OR and
//!   flips through NOT;
//! * demands that reach a primary input (or latch output) complemented are
//!   served by a **static inverter at the input boundary**;
//! * a negative-phase output adds a **static inverter at the output
//!   boundary** and demands the complement of its driver.
//!
//! A node demanded in *both* polarities is duplicated — the trapped-inverter
//! logic duplication of Figure 4. The resulting [`DominoNetwork`] contains
//! only AND/OR gates over monotone rails, i.e. it is domino-implementable.

use std::collections::HashMap;

use domino_netlist::{Network, NodeId, NodeKind};

use crate::error::PhaseError;
use crate::phase_assignment::{Phase, PhaseAssignment};

/// Kind of a synthesized domino gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DominoGateKind {
    /// N-stack in series — the slow/penalized structure of the paper's
    /// `P_i` term.
    And,
    /// N-stack in parallel.
    Or,
}

/// A fanin reference inside a [`DominoNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DominoRef {
    /// Another domino gate, by index into [`DominoNetwork::gates`].
    Gate(usize),
    /// A source rail: a primary input or latch output, possibly through the
    /// input-boundary inverter.
    Source {
        /// The source node in the original network.
        node: NodeId,
        /// `true` if this is the complemented rail (through a static input
        /// inverter).
        complemented: bool,
    },
    /// A constant rail.
    Constant(bool),
}

/// One synthesized domino gate: which original node (and polarity) it
/// realizes, and its structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DominoGate {
    /// The original AND/OR node this gate realizes.
    pub source: NodeId,
    /// `true` if the gate realizes the *complement* of the original node.
    pub complemented: bool,
    /// AND or OR (after DeMorgan).
    pub kind: DominoGateKind,
    /// Fanins.
    pub fanins: Vec<DominoRef>,
}

/// An output of the combinational view: a primary output or a latch data
/// input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewOutput {
    /// Port name (primary output name, or `<latchname>.d`).
    pub name: String,
    /// Driving node in the original network.
    pub driver: NodeId,
    /// `true` if this is a latch data input rather than a primary output.
    pub is_latch_data: bool,
}

/// Where a polarity demand lands after skipping inverter chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DemandRoot {
    /// An AND/OR node demanded in the given polarity.
    Node(NodeId, bool),
    /// A source (input/latch) rail.
    Source(NodeId, bool),
    /// A constant.
    Constant(bool),
}

/// The polarity-demand closure of one output under one phase: exactly the
/// domino gates and boundary inverters this output contributes. Used by the
/// incremental accountants in [`search`](crate::search).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConeDemand {
    /// Demanded `(node, complemented)` gate pairs, deduplicated.
    pub gates: Vec<(NodeId, bool)>,
    /// Sources demanded complemented (each costs one input inverter, shared
    /// across outputs).
    pub complemented_sources: Vec<NodeId>,
    /// Where the output's own demand lands.
    pub root: DemandRoot,
}

/// One output of a synthesized [`DominoNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DominoOutput {
    /// Port name.
    pub name: String,
    /// What drives the boundary (before the output inverter, if any).
    pub driver: DominoRef,
    /// The output's phase.
    pub phase: Phase,
    /// `true` for latch data inputs.
    pub is_latch_data: bool,
}

/// An inverter-free domino block plus its boundary inverters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DominoNetwork {
    gates: Vec<DominoGate>,
    gate_index: HashMap<(NodeId, bool), usize>,
    input_inverters: Vec<NodeId>,
    outputs: Vec<DominoOutput>,
    sources: Vec<NodeId>,
    latch_inits: Vec<bool>,
    assignment: PhaseAssignment,
}

impl DominoNetwork {
    /// The synthesized gates in topological order (fanins precede
    /// consumers).
    pub fn gates(&self) -> &[DominoGate] {
        &self.gates
    }

    /// Number of domino gates in the block.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// `(and, or)` gate counts.
    pub fn gate_kind_counts(&self) -> (usize, usize) {
        let and = self
            .gates
            .iter()
            .filter(|g| g.kind == DominoGateKind::And)
            .count();
        (and, self.gates.len() - and)
    }

    /// Sources (inputs then latches of the original network) whose
    /// complemented rail is used — one static input inverter each.
    pub fn input_inverters(&self) -> &[NodeId] {
        &self.input_inverters
    }

    /// Number of static inverters at the input boundary.
    pub fn input_inverter_count(&self) -> usize {
        self.input_inverters.len()
    }

    /// Number of static inverters at the output boundary (= negative-phase
    /// outputs).
    pub fn output_inverter_count(&self) -> usize {
        self.outputs
            .iter()
            .filter(|o| o.phase.is_negative())
            .count()
    }

    /// Total cell count: domino gates plus boundary inverters — the area
    /// metric of the paper's experiments (before technology mapping).
    pub fn area_cells(&self) -> usize {
        self.gate_count() + self.input_inverter_count() + self.output_inverter_count()
    }

    /// The outputs, in view order.
    pub fn outputs(&self) -> &[DominoOutput] {
        &self.outputs
    }

    /// The phase assignment this network was synthesized with.
    pub fn assignment(&self) -> &PhaseAssignment {
        &self.assignment
    }

    /// Source rails in variable order: the original network's primary
    /// inputs, then its latch outputs.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Reset values of the original network's latches, in latch declaration
    /// order (aligned with the `is_latch_data` outputs).
    pub fn latch_inits(&self) -> &[bool] {
        &self.latch_inits
    }

    /// Number of original nodes realized in *both* polarities — the
    /// trapped-inverter duplication of Figure 4.
    pub fn duplicated_node_count(&self) -> usize {
        self.gate_index
            .keys()
            .filter(|(n, c)| *c && self.gate_index.contains_key(&(*n, false)))
            .count()
    }

    /// `true` if the block contains no logical inverters (always holds by
    /// construction; checks the structural invariant defensively).
    pub fn is_inverter_free(&self) -> bool {
        // Every fanin is a gate, a source rail, or a constant; inverters
        // exist only at the boundaries. The invariant that could break is a
        // gate referencing a *later* gate; check topological soundness too.
        self.gates.iter().enumerate().all(|(i, g)| {
            g.fanins.iter().all(|f| match f {
                DominoRef::Gate(j) => *j < i,
                _ => true,
            })
        })
    }

    /// Evaluates the block for one vector of source values (original
    /// network's inputs then latches, in declaration order). Returns the
    /// logical value of every view output *after* boundary inverters — which
    /// must equal the original functions.
    ///
    /// # Errors
    ///
    /// Returns [`PhaseError::ProbabilityMismatch`] if the slice length does
    /// not match the source count.
    pub fn eval(&self, source_values: &[bool]) -> Result<Vec<bool>, PhaseError> {
        let rails = self.eval_rails(source_values)?;
        Ok(self
            .outputs
            .iter()
            .map(|o| {
                let block = self.ref_value(o.driver, source_values, &rails);
                if o.phase.is_negative() {
                    !block
                } else {
                    block
                }
            })
            .collect())
    }

    /// Evaluates only the internal gate rails (no boundary inverters) —
    /// used by the monotonicity test and the simulator.
    ///
    /// # Errors
    ///
    /// Returns [`PhaseError::ProbabilityMismatch`] on length mismatch.
    pub fn eval_rails(&self, source_values: &[bool]) -> Result<Vec<bool>, PhaseError> {
        if source_values.len() != self.sources.len() {
            return Err(PhaseError::ProbabilityMismatch {
                expected: self.sources.len(),
                got: source_values.len(),
            });
        }
        let mut rails = vec![false; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            let v = match g.kind {
                DominoGateKind::And => g
                    .fanins
                    .iter()
                    .all(|f| self.ref_value(*f, source_values, &rails)),
                DominoGateKind::Or => g
                    .fanins
                    .iter()
                    .any(|f| self.ref_value(*f, source_values, &rails)),
            };
            rails[i] = v;
        }
        Ok(rails)
    }

    /// Exports the block — including its boundary inverters — as a plain
    /// [`Network`], with one primary input per source rail (in source
    /// order) and one primary output per view output. Positional interfaces
    /// match [`DominoSynthesizer::comb_view`], so
    /// [`check_equivalence`](domino_bdd::circuit::check_equivalence) can
    /// formally verify the synthesis.
    pub fn to_network(&self) -> Network {
        let mut out = Network::new("domino_block");
        let src_ids: Vec<NodeId> = (0..self.sources.len())
            .map(|i| out.add_input(format!("s{i}")).expect("unique names"))
            .collect();
        let mut inv_rail: HashMap<usize, NodeId> = HashMap::new();
        for &inv in &self.input_inverters {
            let pos = self.source_position(inv);
            let n = out.add_not(src_ids[pos]).expect("valid fanin");
            inv_rail.insert(pos, n);
        }
        let mut consts: [Option<NodeId>; 2] = [None, None];
        let mut gate_ids: Vec<NodeId> = Vec::with_capacity(self.gates.len());
        for gate in &self.gates {
            let fanins: Vec<NodeId> = gate
                .fanins
                .iter()
                .map(|&f| match f {
                    DominoRef::Gate(i) => gate_ids[i],
                    DominoRef::Source { node, complemented } => {
                        let pos = self.source_position(node);
                        if complemented {
                            inv_rail[&pos]
                        } else {
                            src_ids[pos]
                        }
                    }
                    DominoRef::Constant(v) => {
                        *consts[v as usize].get_or_insert_with(|| out.add_const(v))
                    }
                })
                .collect();
            let id = match gate.kind {
                DominoGateKind::And => out.add_and(fanins).expect("valid fanins"),
                DominoGateKind::Or => out.add_or(fanins).expect("valid fanins"),
            };
            gate_ids.push(id);
        }
        for o in &self.outputs {
            let mut driver = match o.driver {
                DominoRef::Gate(i) => gate_ids[i],
                DominoRef::Source { node, complemented } => {
                    let pos = self.source_position(node);
                    if complemented {
                        inv_rail[&pos]
                    } else {
                        src_ids[pos]
                    }
                }
                DominoRef::Constant(v) => {
                    *consts[v as usize].get_or_insert_with(|| out.add_const(v))
                }
            };
            if o.phase.is_negative() {
                driver = out.add_not(driver).expect("valid fanin");
            }
            out.add_output(o.name.clone(), driver)
                .expect("unique names");
        }
        out
    }

    fn source_position(&self, node: NodeId) -> usize {
        self.sources
            .iter()
            .position(|&s| s == node)
            .expect("domino ref to unknown source")
    }

    /// Builds a bit-parallel evaluator for this block: every [`DominoRef`]
    /// is resolved to a dense index once, so word-wide rail evaluation (64
    /// simulation lanes per `u64`) runs without per-cycle source lookups.
    pub fn packed_evaluator(&self) -> PackedRailEvaluator {
        let resolve = |r: DominoRef| match r {
            DominoRef::Gate(i) => ResolvedRef::Gate(i),
            DominoRef::Source { node, complemented } => ResolvedRef::Source {
                position: self.source_position(node),
                complemented,
            },
            DominoRef::Constant(v) => ResolvedRef::Constant(v),
        };
        PackedRailEvaluator {
            gates: self
                .gates
                .iter()
                .map(|g| (g.kind, g.fanins.iter().map(|&f| resolve(f)).collect()))
                .collect(),
            outputs: self
                .outputs
                .iter()
                .map(|o| ResolvedOutput {
                    driver: resolve(o.driver),
                    negative: o.phase.is_negative(),
                    is_latch_data: o.is_latch_data,
                })
                .collect(),
        }
    }

    fn ref_value(&self, r: DominoRef, source_values: &[bool], rails: &[bool]) -> bool {
        match r {
            DominoRef::Gate(i) => rails[i],
            DominoRef::Source { node, complemented } => {
                let v = source_values[self.source_position(node)];
                v ^ complemented
            }
            DominoRef::Constant(v) => v,
        }
    }
}

/// A [`DominoRef`] resolved to dense indices for bit-parallel evaluation
/// (source rails pre-looked-up to their position in source order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedRef {
    /// Rail of gate `i`.
    Gate(usize),
    /// Source rail at `position` in source order, optionally complemented.
    Source {
        /// Index into the source-order value slice.
        position: usize,
        /// `true` if the complemented rail is referenced.
        complemented: bool,
    },
    /// A constant rail.
    Constant(bool),
}

/// One output with its driver resolved for packed evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedOutput {
    /// The block rail driving this output (before the output inverter).
    pub driver: ResolvedRef,
    /// `true` if the output has a boundary inverter (negative phase).
    pub negative: bool,
    /// `true` for latch data inputs.
    pub is_latch_data: bool,
}

/// Bit-parallel rail evaluator for a [`DominoNetwork`]: 64 independent
/// simulation lanes per `u64` word, every gate one word-wide boolean
/// operation. Built once via [`DominoNetwork::packed_evaluator`]; reuse the
/// rail buffer across cycles to stay allocation-free.
#[derive(Debug, Clone)]
pub struct PackedRailEvaluator {
    gates: Vec<(DominoGateKind, Vec<ResolvedRef>)>,
    outputs: Vec<ResolvedOutput>,
}

impl PackedRailEvaluator {
    /// The outputs with resolved drivers, in view order.
    pub fn outputs(&self) -> &[ResolvedOutput] {
        &self.outputs
    }

    /// Resolves a reference's packed value.
    pub fn ref_word(r: ResolvedRef, source_words: &[u64], rails: &[u64]) -> u64 {
        match r {
            ResolvedRef::Gate(i) => rails[i],
            ResolvedRef::Source {
                position,
                complemented,
            } => {
                if complemented {
                    !source_words[position]
                } else {
                    source_words[position]
                }
            }
            ResolvedRef::Constant(v) => {
                if v {
                    !0
                } else {
                    0
                }
            }
        }
    }

    /// Evaluates every gate rail word-wide. `rails` is resized to the gate
    /// count and fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `source_words` is shorter than the block's source count
    /// (checked indirectly through rail resolution).
    pub fn eval_rails(&self, source_words: &[u64], rails: &mut Vec<u64>) {
        rails.clear();
        rails.resize(self.gates.len(), 0);
        for i in 0..self.gates.len() {
            let (kind, fanins) = &self.gates[i];
            let w = match kind {
                DominoGateKind::And => fanins.iter().fold(!0u64, |acc, &f| {
                    acc & Self::ref_word(f, source_words, rails)
                }),
                DominoGateKind::Or => fanins
                    .iter()
                    .fold(0u64, |acc, &f| acc | Self::ref_word(f, source_words, rails)),
            };
            rails[i] = w;
        }
    }
}

/// Synthesizes inverter-free domino blocks from a Boolean network for any
/// phase assignment.
///
/// The synthesizer works on the network's *combinational view*: sources are
/// primary inputs followed by latch outputs; outputs are primary outputs
/// followed by latch data inputs ([`DominoSynthesizer::view_outputs`]). A
/// [`PhaseAssignment`] indexes this combined output list.
#[derive(Debug, Clone)]
pub struct DominoSynthesizer<'a> {
    net: &'a Network,
    view_outputs: Vec<ViewOutput>,
    sources: Vec<NodeId>,
}

impl<'a> DominoSynthesizer<'a> {
    /// Creates a synthesizer for `net`.
    ///
    /// # Errors
    ///
    /// Returns [`PhaseError::Netlist`] if the network fails validation.
    pub fn new(net: &'a Network) -> Result<Self, PhaseError> {
        net.validate()?;
        let mut view_outputs: Vec<ViewOutput> = net
            .outputs()
            .iter()
            .map(|o| ViewOutput {
                name: o.name.clone(),
                driver: o.driver,
                is_latch_data: false,
            })
            .collect();
        for (i, &l) in net.latches().iter().enumerate() {
            let data = net.node(l).fanins[0];
            let name = match &net.node(l).name {
                Some(n) => format!("{n}.d"),
                None => format!("latch{i}.d"),
            };
            view_outputs.push(ViewOutput {
                name,
                driver: data,
                is_latch_data: true,
            });
        }
        let sources = net
            .inputs()
            .iter()
            .chain(net.latches().iter())
            .copied()
            .collect();
        Ok(DominoSynthesizer {
            net,
            view_outputs,
            sources,
        })
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        self.net
    }

    /// The combinational view's outputs: primary outputs, then latch data
    /// inputs. Phase assignments index this list.
    pub fn view_outputs(&self) -> &[ViewOutput] {
        &self.view_outputs
    }

    /// The combinational view's sources: primary inputs, then latch
    /// outputs.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// The network's *combinational view* as a standalone [`Network`]: one
    /// primary input per source rail (PIs then latch outputs, named
    /// positionally `s{i}`), one primary output per view output. Interfaces
    /// match [`DominoNetwork::to_network`] positionally, enabling formal
    /// equivalence checking of any synthesis result.
    pub fn comb_view(&self) -> Network {
        let mut out = Network::new(format!("{}_comb", self.net.name()));
        let mut map: std::collections::HashMap<NodeId, NodeId> = std::collections::HashMap::new();
        for (i, &s) in self.sources.iter().enumerate() {
            map.insert(s, out.add_input(format!("s{i}")).expect("unique names"));
        }
        for id in self.net.topo_order() {
            if map.contains_key(&id) {
                continue;
            }
            let node = self.net.node(id);
            let new_id = match node.kind {
                NodeKind::Input | NodeKind::Latch { .. } => continue,
                NodeKind::Constant(v) => out.add_const(v),
                NodeKind::Not => out.add_not(map[&node.fanins[0]]).expect("mapped"),
                NodeKind::And => out
                    .add_and(node.fanins.iter().map(|f| map[f]))
                    .expect("mapped"),
                NodeKind::Or => out
                    .add_or(node.fanins.iter().map(|f| map[f]))
                    .expect("mapped"),
            };
            map.insert(id, new_id);
        }
        for vo in &self.view_outputs {
            out.add_output(vo.name.clone(), map[&vo.driver])
                .expect("unique names");
        }
        out
    }

    /// Follows inverter chains and constants: where does the demand for
    /// `node` (complemented if `complemented`) actually land?
    pub fn resolve(&self, mut node: NodeId, mut complemented: bool) -> DemandRoot {
        loop {
            match self.net.node(node).kind {
                NodeKind::Not => {
                    complemented = !complemented;
                    node = self.net.node(node).fanins[0];
                }
                NodeKind::Constant(v) => return DemandRoot::Constant(v ^ complemented),
                NodeKind::Input | NodeKind::Latch { .. } => {
                    return DemandRoot::Source(node, complemented)
                }
                NodeKind::And | NodeKind::Or => return DemandRoot::Node(node, complemented),
            }
        }
    }

    /// The demand closure of a single output under a given phase — the set
    /// of gates and boundary inverters it requires (Figure 3's "zone that
    /// must become inverterless").
    pub fn cone_demand(&self, output: usize, phase: Phase) -> ConeDemand {
        let driver = self.view_outputs[output].driver;
        let root = self.resolve(driver, phase.is_negative());
        let mut gates = Vec::new();
        // Dense visited sets (bit 0 = direct, bit 1 = complemented): the
        // demand walk feeds the search accountants, where hash probes per
        // gate were measurable.
        let mut seen = vec![0u8; self.net.len()];
        let mut neg_sources: Vec<NodeId> = Vec::new();
        let mut neg_seen = vec![false; self.net.len()];
        let mut stack: Vec<(NodeId, bool)> = Vec::new();
        match root {
            DemandRoot::Node(n, c) => stack.push((n, c)),
            DemandRoot::Source(s, true) => {
                neg_seen[s.index()] = true;
                neg_sources.push(s);
            }
            _ => {}
        }
        while let Some((n, c)) = stack.pop() {
            let mark = 1u8 << u8::from(c);
            if seen[n.index()] & mark != 0 {
                continue;
            }
            seen[n.index()] |= mark;
            gates.push((n, c));
            for &f in self.net.node(n).comb_fanins() {
                match self.resolve(f, c) {
                    DemandRoot::Node(m, mc) => stack.push((m, mc)),
                    DemandRoot::Source(s, true) if !neg_seen[s.index()] => {
                        neg_seen[s.index()] = true;
                        neg_sources.push(s);
                    }
                    _ => {}
                }
            }
        }
        ConeDemand {
            gates,
            complemented_sources: neg_sources,
            root,
        }
    }

    /// Synthesizes the inverter-free domino block for `assignment`.
    ///
    /// # Errors
    ///
    /// Returns [`PhaseError::AssignmentMismatch`] if the assignment length
    /// differs from [`DominoSynthesizer::view_outputs`].
    pub fn synthesize(&self, assignment: &PhaseAssignment) -> Result<DominoNetwork, PhaseError> {
        if assignment.len() != self.view_outputs.len() {
            return Err(PhaseError::AssignmentMismatch {
                expected: self.view_outputs.len(),
                got: assignment.len(),
            });
        }
        // Demand closure with explicit post-order so gates come out
        // topologically sorted.
        let mut state: HashMap<(NodeId, bool), u8> = HashMap::new(); // 1 = open, 2 = done
        let mut postorder: Vec<(NodeId, bool)> = Vec::new();
        let mut neg_sources: Vec<NodeId> = Vec::new();
        let mut neg_seen: HashMap<NodeId, ()> = HashMap::new();

        let mut roots: Vec<DemandRoot> = Vec::with_capacity(self.view_outputs.len());
        for (i, vo) in self.view_outputs.iter().enumerate() {
            roots.push(self.resolve(vo.driver, assignment.phase(i).is_negative()));
        }
        for &root in &roots {
            match root {
                DemandRoot::Node(n, c) => {
                    self.demand_dfs(
                        n,
                        c,
                        &mut state,
                        &mut postorder,
                        &mut neg_sources,
                        &mut neg_seen,
                    );
                }
                DemandRoot::Source(s, true) if neg_seen.insert(s, ()).is_none() => {
                    neg_sources.push(s);
                }
                _ => {}
            }
        }

        // Emit gates in post-order.
        let mut gate_index: HashMap<(NodeId, bool), usize> = HashMap::new();
        let mut gates: Vec<DominoGate> = Vec::with_capacity(postorder.len());
        for &(n, c) in &postorder {
            let node = self.net.node(n);
            let kind = match (node.kind, c) {
                (NodeKind::And, false) | (NodeKind::Or, true) => DominoGateKind::And,
                (NodeKind::Or, false) | (NodeKind::And, true) => DominoGateKind::Or,
                _ => unreachable!("demand closure only contains and/or nodes"),
            };
            let fanins = node
                .comb_fanins()
                .iter()
                .map(|&f| match self.resolve(f, c) {
                    DemandRoot::Node(m, mc) => DominoRef::Gate(gate_index[&(m, mc)]),
                    DemandRoot::Source(s, sc) => DominoRef::Source {
                        node: s,
                        complemented: sc,
                    },
                    DemandRoot::Constant(v) => DominoRef::Constant(v),
                })
                .collect();
            gate_index.insert((n, c), gates.len());
            gates.push(DominoGate {
                source: n,
                complemented: c,
                kind,
                fanins,
            });
        }

        let outputs = self
            .view_outputs
            .iter()
            .zip(roots.iter())
            .enumerate()
            .map(|(i, (vo, &root))| DominoOutput {
                name: vo.name.clone(),
                driver: match root {
                    DemandRoot::Node(n, c) => DominoRef::Gate(gate_index[&(n, c)]),
                    DemandRoot::Source(s, c) => DominoRef::Source {
                        node: s,
                        complemented: c,
                    },
                    DemandRoot::Constant(v) => DominoRef::Constant(v),
                },
                phase: assignment.phase(i),
                is_latch_data: vo.is_latch_data,
            })
            .collect();

        let latch_inits = self
            .net
            .latches()
            .iter()
            .map(|&l| match self.net.node(l).kind {
                NodeKind::Latch { init } => init,
                _ => unreachable!("latch list contains non-latch"),
            })
            .collect();
        Ok(DominoNetwork {
            gates,
            gate_index,
            input_inverters: neg_sources,
            outputs,
            sources: self.sources.clone(),
            latch_inits,
            assignment: assignment.clone(),
        })
    }

    fn demand_dfs(
        &self,
        root_n: NodeId,
        root_c: bool,
        state: &mut HashMap<(NodeId, bool), u8>,
        postorder: &mut Vec<(NodeId, bool)>,
        neg_sources: &mut Vec<NodeId>,
        neg_seen: &mut HashMap<NodeId, ()>,
    ) {
        // Iterative DFS with an explicit frame stack: (node, comp, child idx).
        if state.contains_key(&(root_n, root_c)) {
            return;
        }
        let mut stack: Vec<((NodeId, bool), usize)> = vec![((root_n, root_c), 0)];
        state.insert((root_n, root_c), 1);
        while !stack.is_empty() {
            let ((n, c), child) = {
                let top = stack.last_mut().expect("stack is non-empty");
                let frame = (top.0, top.1);
                top.1 += 1;
                frame
            };
            let fanins = self.net.node(n).comb_fanins();
            if child < fanins.len() {
                let f = fanins[child];
                match self.resolve(f, c) {
                    DemandRoot::Node(m, mc) => {
                        if let std::collections::hash_map::Entry::Vacant(e) = state.entry((m, mc)) {
                            e.insert(1);
                            stack.push(((m, mc), 0));
                        }
                    }
                    DemandRoot::Source(s, true) if neg_seen.insert(s, ()).is_none() => {
                        neg_sources.push(s);
                    }
                    _ => {}
                }
            } else {
                state.insert((n, c), 2);
                postorder.push((n, c));
                stack.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_netlist::Network;

    /// The §3 example: f = (a+b)+(c·d), g = !(a+b) + !(c·d).
    fn fig_functions() -> Network {
        let mut net = Network::new("fig");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let d = net.add_input("d").unwrap();
        let aob = net.add_or([a, b]).unwrap();
        let cad = net.add_and([c, d]).unwrap();
        let f = net.add_or([aob, cad]).unwrap();
        let naob = net.add_not(aob).unwrap();
        let ncad = net.add_not(cad).unwrap();
        let g = net.add_or([naob, ncad]).unwrap();
        net.add_output("f", f).unwrap();
        net.add_output("g", g).unwrap();
        net
    }

    #[test]
    fn packed_rails_agree_with_scalar_eval_rails() {
        let net = fig_functions();
        let synth = DominoSynthesizer::new(&net).unwrap();
        for bits in 0..4u64 {
            let domino = synth
                .synthesize(&PhaseAssignment::from_bits(2, bits))
                .unwrap();
            let eval = domino.packed_evaluator();
            let n = domino.sources().len();
            // All 16 input patterns broadcast across lanes 0..16.
            let mut words = vec![0u64; n];
            for lane in 0..(1usize << n) {
                for (i, w) in words.iter_mut().enumerate() {
                    if (lane >> i) & 1 == 1 {
                        *w |= 1 << lane;
                    }
                }
            }
            let mut rails = Vec::new();
            eval.eval_rails(&words, &mut rails);
            for lane in 0..(1usize << n) {
                let vals: Vec<bool> = (0..n).map(|i| (words[i] >> lane) & 1 == 1).collect();
                let scalar = domino.eval_rails(&vals).unwrap();
                for (i, &s) in scalar.iter().enumerate() {
                    assert_eq!((rails[i] >> lane) & 1 == 1, s, "bits {bits} lane {lane}");
                }
                // Outputs through resolved drivers match DominoNetwork::eval.
                let want = domino.eval(&vals).unwrap();
                for (o, (ro, &w)) in eval.outputs().iter().zip(&want).enumerate() {
                    let block = PackedRailEvaluator::ref_word(ro.driver, &words, &rails);
                    let v = ((block >> lane) & 1 == 1) ^ ro.negative;
                    assert_eq!(v, w, "output {o} lane {lane}");
                }
            }
        }
    }

    fn check_equivalence(net: &Network, assignment: &PhaseAssignment) {
        let synth = DominoSynthesizer::new(net).unwrap();
        let domino = synth.synthesize(assignment).unwrap();
        assert!(domino.is_inverter_free());
        let n = net.inputs().len();
        for bits in 0..(1u32 << n) {
            let vals: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            let want = net.eval_comb(&vals).unwrap();
            let got = domino.eval(&vals).unwrap();
            assert_eq!(got, want, "assignment {assignment} vector {bits:b}");
        }
    }

    #[test]
    fn all_assignments_preserve_function() {
        let net = fig_functions();
        for bits in 0..4u64 {
            check_equivalence(&net, &PhaseAssignment::from_bits(2, bits));
        }
    }

    #[test]
    fn negative_phase_adds_output_inverter() {
        let net = fig_functions();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let pos = synth.synthesize(&PhaseAssignment::all_positive(2)).unwrap();
        assert_eq!(pos.output_inverter_count(), 0);
        let neg = synth.synthesize(&PhaseAssignment::all_negative(2)).unwrap();
        assert_eq!(neg.output_inverter_count(), 2);
    }

    #[test]
    fn demorgan_flips_gate_kinds() {
        // f = !(a·b): negative phase block computes a·b (an AND gate);
        // positive phase computes !a + !b (an OR gate over inverted rails).
        let mut net = Network::new("nand");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let ab = net.add_and([a, b]).unwrap();
        let f = net.add_not(ab).unwrap();
        net.add_output("f", f).unwrap();
        let synth = DominoSynthesizer::new(&net).unwrap();

        let neg = synth.synthesize(&PhaseAssignment::all_negative(1)).unwrap();
        assert_eq!(neg.gate_count(), 1);
        assert_eq!(neg.gates()[0].kind, DominoGateKind::And);
        assert_eq!(neg.input_inverter_count(), 0);
        assert_eq!(neg.output_inverter_count(), 1);

        let pos = synth.synthesize(&PhaseAssignment::all_positive(1)).unwrap();
        assert_eq!(pos.gate_count(), 1);
        assert_eq!(pos.gates()[0].kind, DominoGateKind::Or);
        assert_eq!(pos.input_inverter_count(), 2);
        assert_eq!(pos.output_inverter_count(), 0);
        check_equivalence(&net, &PhaseAssignment::all_positive(1));
        check_equivalence(&net, &PhaseAssignment::all_negative(1));
    }

    #[test]
    fn conflicting_phases_duplicate_logic() {
        // Figure 4: f and g share the cone (a+b); demanding it in both
        // polarities duplicates it.
        let mut net = Network::new("dup");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let aob = net.add_or([a, b]).unwrap();
        let naob = net.add_not(aob).unwrap();
        let c = net.add_input("c").unwrap();
        let f = net.add_and([aob, c]).unwrap();
        let g = net.add_and([naob, c]).unwrap();
        net.add_output("f", f).unwrap();
        net.add_output("g", g).unwrap();
        let synth = DominoSynthesizer::new(&net).unwrap();
        // Both outputs positive: (a+b) needed direct for f, complemented
        // for g.
        let d = synth.synthesize(&PhaseAssignment::all_positive(2)).unwrap();
        assert_eq!(d.duplicated_node_count(), 1);
        check_equivalence(&net, &PhaseAssignment::all_positive(2));
        // f positive, g negative: g's block computes !( !(a+b)·c ) =
        // (a+b) + !c — no duplication of the (a+b) cone.
        let mut pa = PhaseAssignment::all_positive(2);
        pa.set(1, Phase::Negative);
        let d2 = synth.synthesize(&pa).unwrap();
        assert_eq!(d2.duplicated_node_count(), 0);
        assert!(d2.gate_count() <= d.gate_count());
        check_equivalence(&net, &pa);
    }

    #[test]
    fn rails_are_monotone() {
        // The domino block must be monotone in its rails: raising any
        // source value can only raise gate outputs when the complemented
        // rails are *held fixed* — equivalently, every gate is AND/OR of
        // rails. We verify by checking there is no path from a source to a
        // gate through any negation inside the block: structurally true,
        // and dynamically: evaluating with all rails forced high yields all
        // gates high.
        let net = fig_functions();
        let synth = DominoSynthesizer::new(&net).unwrap();
        for bits in 0..4u64 {
            let d = synth
                .synthesize(&PhaseAssignment::from_bits(2, bits))
                .unwrap();
            // In a single evaluate phase, a gate's output rises 0→1 only;
            // check AND/OR structure has no constants-false shortcuts that
            // would require a falling rail: evaluate twice with increasing
            // source vectors and demand gate-wise monotonicity in the
            // *rail* sense (sources fixed — rails include complements, so
            // we compare two vectors where both v and !v rails rise is
            // impossible; instead verify structural property):
            assert!(d.is_inverter_free());
        }
    }

    #[test]
    fn cone_demand_matches_synthesis() {
        let net = fig_functions();
        let synth = DominoSynthesizer::new(&net).unwrap();
        for bits in 0..4u64 {
            let pa = PhaseAssignment::from_bits(2, bits);
            let d = synth.synthesize(&pa).unwrap();
            // Union of per-output demands = synthesized gates.
            let mut union: std::collections::HashSet<(NodeId, bool)> =
                std::collections::HashSet::new();
            let mut inv_union: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
            for i in 0..2 {
                let cd = synth.cone_demand(i, pa.phase(i));
                union.extend(cd.gates.iter().copied());
                inv_union.extend(cd.complemented_sources.iter().copied());
            }
            let gates: std::collections::HashSet<(NodeId, bool)> = d
                .gates()
                .iter()
                .map(|g| (g.source, g.complemented))
                .collect();
            assert_eq!(union, gates, "assignment {pa}");
            let invs: std::collections::HashSet<NodeId> =
                d.input_inverters().iter().copied().collect();
            assert_eq!(inv_union, invs, "assignment {pa}");
        }
    }

    #[test]
    fn output_driven_by_source() {
        let mut net = Network::new("wire");
        let a = net.add_input("a").unwrap();
        let na = net.add_not(a).unwrap();
        net.add_output("w", a).unwrap();
        net.add_output("nw", na).unwrap();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let d = synth.synthesize(&PhaseAssignment::all_positive(2)).unwrap();
        assert_eq!(d.gate_count(), 0);
        // nw demands the complemented rail of a.
        assert_eq!(d.input_inverter_count(), 1);
        assert_eq!(d.eval(&[true]).unwrap(), vec![true, false]);
        assert_eq!(d.eval(&[false]).unwrap(), vec![false, true]);
        // Negative phase on nw serves it from the direct rail + output inv.
        let mut pa = PhaseAssignment::all_positive(2);
        pa.set(1, Phase::Negative);
        let d2 = synth.synthesize(&pa).unwrap();
        assert_eq!(d2.input_inverter_count(), 0);
        assert_eq!(d2.output_inverter_count(), 1);
        assert_eq!(d2.eval(&[true]).unwrap(), vec![true, false]);
    }

    #[test]
    fn latch_view_outputs() {
        let mut net = Network::new("seq");
        let a = net.add_input("a").unwrap();
        let q = net.add_latch(false);
        net.set_node_name(q, "q").unwrap();
        let nq = net.add_not(q).unwrap();
        let d = net.add_and([a, nq]).unwrap();
        net.set_latch_data(q, d).unwrap();
        net.add_output("o", q).unwrap();
        let synth = DominoSynthesizer::new(&net).unwrap();
        assert_eq!(synth.view_outputs().len(), 2);
        assert!(synth.view_outputs()[1].is_latch_data);
        assert_eq!(synth.view_outputs()[1].name, "q.d");
        let dn = synth.synthesize(&PhaseAssignment::all_positive(2)).unwrap();
        // The latch data cone needs !q: an input inverter on the q rail.
        assert_eq!(dn.input_inverter_count(), 1);
        // Sources are [a, q]; outputs are [o, q.d].
        assert_eq!(dn.eval(&[true, false]).unwrap(), vec![false, true]);
        assert_eq!(dn.eval(&[true, true]).unwrap(), vec![true, false]);
    }

    #[test]
    fn wrong_assignment_length_rejected() {
        let net = fig_functions();
        let synth = DominoSynthesizer::new(&net).unwrap();
        assert!(matches!(
            synth.synthesize(&PhaseAssignment::all_positive(3)),
            Err(PhaseError::AssignmentMismatch {
                expected: 2,
                got: 3
            })
        ));
    }

    #[test]
    fn formal_equivalence_via_bdds() {
        // The exported domino block is *formally* equivalent to the
        // combinational view, for every assignment — checked by shared-BDD
        // identity, not sampling.
        let net = fig_functions();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let view = synth.comb_view();
        for bits in 0..4u64 {
            let pa = PhaseAssignment::from_bits(2, bits);
            let domino = synth.synthesize(&pa).unwrap();
            let exported = domino.to_network();
            assert_eq!(
                domino_bdd::circuit::check_equivalence(&view, &exported).unwrap(),
                None,
                "assignment {pa}"
            );
        }
    }

    #[test]
    fn formal_equivalence_sequential_view() {
        let mut net = Network::new("seq");
        let a = net.add_input("a").unwrap();
        let q = net.add_latch(false);
        let nq = net.add_not(q).unwrap();
        let d = net.add_and([a, nq]).unwrap();
        net.set_latch_data(q, d).unwrap();
        net.add_output("o", d).unwrap();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let view = synth.comb_view();
        assert_eq!(view.inputs().len(), 2); // a and the q rail
        assert_eq!(view.outputs().len(), 2); // o and q.d
        for bits in 0..4u64 {
            let pa = PhaseAssignment::from_bits(2, bits);
            let domino = synth.synthesize(&pa).unwrap();
            assert_eq!(
                domino_bdd::circuit::check_equivalence(&view, &domino.to_network()).unwrap(),
                None
            );
        }
    }

    #[test]
    fn constant_outputs() {
        let mut net = Network::new("const");
        let c1 = net.add_const(true);
        let a = net.add_input("a").unwrap();
        let g = net.add_and([a, c1]).unwrap();
        net.add_output("f", g).unwrap();
        net.add_output("k", c1).unwrap();
        let synth = DominoSynthesizer::new(&net).unwrap();
        for bits in 0..4u64 {
            let pa = PhaseAssignment::from_bits(2, bits);
            let d = synth.synthesize(&pa).unwrap();
            assert_eq!(d.eval(&[true]).unwrap(), vec![true, true]);
            assert_eq!(d.eval(&[false]).unwrap(), vec![false, true]);
        }
    }
}
