//! The §4.1 pairwise cost function for candidate phase assignments.
//!
//! For primary outputs `i, j` with transitive fanin cones `D_i, D_j`:
//!
//! * cone **overlap** `O(i,j) = |D_i ∩ D_j| / (|D_i| + |D_j|)` — the worst
//!   possible duplication penalty for incompatible phases;
//! * cone **average probability** `A_i = Σ_{n∈D_i} S_n / |D_i|` under the
//!   current assignment — flipping output `i`'s phase complements its cone,
//!   so the flipped average is `1 − A_i` (Property 4.1);
//! * the four costs
//!   `K(i±, j±) = |D_i|·a_i + |D_j|·a_j + ½·O(i,j)·(a_i + a_j)` with
//!   `a = A` for retaining the current phase and `a = 1 − A` for inverting
//!   it.
//!
//! `K` estimates the switching of the pair's cones after the candidate
//! change; the greedy loop in [`search`](crate::search) picks the globally
//! cheapest `(pair, combination)` and verifies it against the real power
//! estimate before committing.

use crate::phase_assignment::{Phase, PhaseAssignment};
use crate::prob::NodeProbabilities;
use crate::synth::DominoSynthesizer;

/// Precomputed cone sizes, averages and pairwise overlaps for a network.
///
/// Construction is the `O(n²)` part of the min-power search setup, so the
/// cones are materialized as **bitset rows** (one bit per arena node):
/// pairwise intersection sizes reduce to word-wise `AND` + popcount
/// instead of hash-set probing, and the per-cone probability sums iterate
/// set bits once. The `K` values themselves stay `f64` — they only *rank*
/// candidates (every candidate is re-measured through the fixed-point
/// [`ConeAccountant`](crate::search::ConeAccountant) before committing),
/// so the [`FixedPower`](crate::power::FixedPower) scaling contract does
/// not apply to them.
#[derive(Debug, Clone)]
pub struct CostModel {
    n: usize,
    cone_sizes: Vec<usize>,
    base_avgs: Vec<f64>,
    /// Upper-triangular overlap matrix, row-major: entry for `i < j` at
    /// `i*n - i*(i+1)/2 + (j - i - 1)`.
    overlaps: Vec<f64>,
}

impl CostModel {
    /// Builds the model from the synthesizer's view outputs and the base
    /// (positive-polarity) node probabilities.
    pub fn new(synth: &DominoSynthesizer<'_>, probs: &NodeProbabilities) -> Self {
        let net = synth.network();
        let outputs = synth.view_outputs();
        let n = outputs.len();
        let words = net.len().div_ceil(64);
        // One bitset row per output: bit `k` ⇔ arena node `k` ∈ D_i
        // (combinational transitive fanin including the driver and the
        // sources it reaches, exactly `Network::transitive_fanin`).
        let mut rows = vec![0u64; n * words];
        let mut cone_sizes = vec![0usize; n];
        let mut base_avgs = vec![0.0f64; n];
        let mut stack: Vec<domino_netlist::NodeId> = Vec::new();
        for (i, out) in outputs.iter().enumerate() {
            let row = &mut rows[i * words..(i + 1) * words];
            stack.clear();
            stack.push(out.driver);
            let mut size = 0usize;
            let mut sum = 0.0f64;
            while let Some(id) = stack.pop() {
                let idx = id.index();
                let (w, bit) = (idx / 64, 1u64 << (idx % 64));
                if row[w] & bit != 0 {
                    continue;
                }
                row[w] |= bit;
                size += 1;
                sum += probs.get(idx);
                stack.extend(net.node(id).comb_fanins().iter().copied());
            }
            cone_sizes[i] = size;
            if size > 0 {
                base_avgs[i] = sum / size as f64;
            }
        }
        let mut overlaps = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
        for i in 0..n {
            let row_i = &rows[i * words..(i + 1) * words];
            for j in i + 1..n {
                let row_j = &rows[j * words..(j + 1) * words];
                let inter: u32 = row_i
                    .iter()
                    .zip(row_j)
                    .map(|(a, b)| (a & b).count_ones())
                    .sum();
                let denom = (cone_sizes[i] + cone_sizes[j]) as f64;
                overlaps.push(if denom == 0.0 {
                    0.0
                } else {
                    f64::from(inter) / denom
                });
            }
        }
        CostModel {
            n,
            cone_sizes,
            base_avgs,
            overlaps,
        }
    }

    /// Number of outputs.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the network has no outputs.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `|D_i|`.
    pub fn cone_size(&self, i: usize) -> usize {
        self.cone_sizes[i]
    }

    /// `O(i,j)` for `i ≠ j` (symmetric).
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of range.
    pub fn overlap(&self, i: usize, j: usize) -> f64 {
        assert!(i != j, "overlap is defined for distinct outputs");
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        self.overlaps[i * self.n - i * (i + 1) / 2 + (j - i - 1)]
    }

    /// `A_i` when output `i` is realized in the given phase: the base
    /// (positive) cone average, complemented for negative phase
    /// (Property 4.1).
    pub fn average(&self, i: usize, phase: Phase) -> f64 {
        match phase {
            Phase::Positive => self.base_avgs[i],
            Phase::Negative => 1.0 - self.base_avgs[i],
        }
    }

    /// `K` for outputs `i, j` realized in phases `p_i, p_j`.
    pub fn cost(&self, i: usize, j: usize, p_i: Phase, p_j: Phase) -> f64 {
        let a_i = self.average(i, p_i);
        let a_j = self.average(j, p_j);
        self.cone_sizes[i] as f64 * a_i
            + self.cone_sizes[j] as f64 * a_j
            + 0.5 * self.overlap(i, j) * (a_i + a_j)
    }

    /// The cheapest of the four keep/flip combinations for pair `(i, j)`
    /// relative to `current`: returns the phases to adopt and the cost.
    /// Ties prefer the earlier combination in the order
    /// (keep,keep), (keep,flip), (flip,keep), (flip,flip).
    pub fn pair_best(&self, i: usize, j: usize, current: &PhaseAssignment) -> (Phase, Phase, f64) {
        let ci = current.phase(i);
        let cj = current.phase(j);
        let combos = [
            (ci, cj),
            (ci, cj.flipped()),
            (ci.flipped(), cj),
            (ci.flipped(), cj.flipped()),
        ];
        let mut best = (
            combos[0].0,
            combos[0].1,
            self.cost(i, j, combos[0].0, combos[0].1),
        );
        for &(pi, pj) in &combos[1..] {
            let k = self.cost(i, j, pi, pj);
            if k < best.2 {
                best = (pi, pj, k);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::{compute_probabilities, ProbabilityConfig};
    use domino_netlist::Network;

    /// f = a·b (small cone, high-ish probability), g = a+b+c (bigger cone),
    /// sharing {a, b}.
    fn model() -> (CostModel, PhaseAssignment) {
        let mut net = Network::new("cm");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let f = net.add_and([a, b]).unwrap();
        let g0 = net.add_or([a, b]).unwrap();
        let g = net.add_or([g0, c]).unwrap();
        net.add_output("f", f).unwrap();
        net.add_output("g", g).unwrap();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let probs =
            compute_probabilities(&net, &[0.9, 0.9, 0.9], &ProbabilityConfig::default()).unwrap();
        (
            CostModel::new(&synth, &probs),
            PhaseAssignment::all_positive(2),
        )
    }

    #[test]
    fn cone_sizes_and_overlap() {
        let (cm, _) = model();
        // D_f = {a, b, f} (3); D_g = {a, b, c, g0, g} (5); intersection {a, b}.
        assert_eq!(cm.cone_size(0), 3);
        assert_eq!(cm.cone_size(1), 5);
        assert!((cm.overlap(0, 1) - 2.0 / 8.0).abs() < 1e-12);
        assert_eq!(cm.overlap(0, 1), cm.overlap(1, 0));
        assert_eq!(cm.len(), 2);
    }

    #[test]
    fn averages_complement_on_flip() {
        let (cm, _) = model();
        let pos = cm.average(0, Phase::Positive);
        let neg = cm.average(0, Phase::Negative);
        assert!((pos + neg - 1.0).abs() < 1e-12);
        // With p(PI) = 0.9 the positive cone average is high.
        assert!(pos > 0.8);
    }

    #[test]
    fn cost_formula_matches_hand_computation() {
        let (cm, _) = model();
        let (a0, a1) = (
            cm.average(0, Phase::Positive),
            cm.average(1, Phase::Negative),
        );
        let expect = 3.0 * a0 + 5.0 * a1 + 0.5 * cm.overlap(0, 1) * (a0 + a1);
        let got = cm.cost(0, 1, Phase::Positive, Phase::Negative);
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn pair_best_picks_minimum() {
        let (cm, current) = model();
        let (pi, pj, k) = cm.pair_best(0, 1, &current);
        for p_i in [Phase::Positive, Phase::Negative] {
            for p_j in [Phase::Positive, Phase::Negative] {
                assert!(k <= cm.cost(0, 1, p_i, p_j) + 1e-12);
            }
        }
        // At p(PI) = 0.9 all positive cones are probability-heavy: flipping
        // both is cheapest.
        assert_eq!(pi, Phase::Negative);
        assert_eq!(pj, Phase::Negative);
    }

    #[test]
    #[should_panic(expected = "distinct outputs")]
    fn overlap_same_output_panics() {
        let (cm, _) = model();
        let _ = cm.overlap(1, 1);
    }
}
