//! Automated phase assignment for the synthesis of low power domino
//! circuits — the core algorithms of Patra & Narayanan, DAC 1999.
//!
//! Domino logic is inherently *non-inverting*: a domino block functions only
//! if every gate makes a monotonic 0→1 transition, so internal inverters
//! must be eliminated before a netlist can be implemented in domino. The
//! classical recipe (Puri et al., ICCAD '96) picks a **phase** for every
//! primary output — *positive* (no inverter at the output boundary) or
//! *negative* (one static inverter at the boundary) — and pushes inverters
//! out of the block with DeMorgan's law, duplicating logic wherever
//! conflicting polarity demands trap an inverter.
//!
//! The paper's observation: the phase assignment also determines the
//! **switching activity** of the block, because a domino gate switches with
//! probability exactly equal to the *signal probability* of its output
//! (Property 2.1) — and a complemented cone has probability `1 − p`
//! (Property 4.1). Minimum area and minimum power are *different*
//! assignments.
//!
//! This crate provides:
//!
//! * [`DominoSynthesizer`] / [`DominoNetwork`] — inverter-free synthesis for
//!   any [`PhaseAssignment`] (§3, Figures 3–4);
//! * [`power`] — the domino switching/power model (§2, Figures 2 & 5) and
//!   the `Σ Sᵢ·Cᵢ·Pᵢ` estimator (§4.2);
//! * [`prob`] — exact node probabilities via BDDs, with MFVS partitioning
//!   for sequential circuits (§4.2.1–4.2.2);
//! * [`cost`] — the pairwise cost function `K(i±, j±)` with cone overlap
//!   `O(i,j)` and cone averages `A_i` (§4.1);
//! * [`search`] — the min-power greedy loop of §4.1 and the min-area
//!   baseline of \[15\];
//! * [`flow`] — the complete Figure-6 power-minimization paradigm.
//!
//! # Example
//!
//! ```
//! use domino_phase::{DominoSynthesizer, PhaseAssignment};
//! use domino_netlist::Network;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // f = !(a·b) cannot be implemented in domino as-is…
//! let mut net = Network::new("nand");
//! let a = net.add_input("a")?;
//! let b = net.add_input("b")?;
//! let ab = net.add_and([a, b])?;
//! let f = net.add_not(ab)?;
//! net.add_output("f", f)?;
//!
//! let synth = DominoSynthesizer::new(&net)?;
//! // …but with f in negative phase the block computes a·b and a static
//! // inverter at the boundary restores f.
//! let domino = synth.synthesize(&PhaseAssignment::all_negative(1))?;
//! assert!(domino.is_inverter_free());
//! assert_eq!(domino.output_inverter_count(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost;
mod error;
pub mod flow;
mod phase_assignment;
pub mod power;
pub mod prob;
pub mod search;
mod synth;

pub use error::PhaseError;
pub use phase_assignment::{Phase, PhaseAssignment};
pub use synth::{
    DominoGate, DominoGateKind, DominoNetwork, DominoRef, DominoSynthesizer, PackedRailEvaluator,
    ResolvedOutput, ResolvedRef, ViewOutput,
};
