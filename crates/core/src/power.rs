//! The domino switching/power model (paper §2 and §4.2).
//!
//! Per clock cycle, with `p` the signal probability of the relevant logical
//! value:
//!
//! | element | switching probability | paper evidence |
//! |---|---|---|
//! | domino gate | `p` | Property 2.1 |
//! | static inverter at an *output* boundary | `p(driver)` | Figure 5: `.8019` / `.0019` |
//! | static inverter at an *input* boundary | `2·p·(1−p)` | Figure 5: `.18` per input at `p = 0.9` |
//! | generic static gate (Figure 2 comparison) | `2·p·(1−p)` | Figure 2 parabola |
//!
//! An output-boundary inverter is driven by a pulsing domino output, so it
//! switches whenever the driver evaluates high; an input-boundary inverter
//! is driven by a stable primary input, so it only toggles when consecutive
//! vectors differ. Domino gates never glitch (Property 2.2), which is what
//! makes these zero-delay probabilities *exact*.
//!
//! The block power estimate is the paper's `Σ Sᵢ·Cᵢ·Pᵢ` (§4.2) with
//! per-gate capacitance `Cᵢ` and a structure penalty `Pᵢ` (series-stack AND
//! gates can be penalized to discourage slow structures).

use crate::synth::{DominoGateKind, DominoNetwork, DominoRef};

/// Fractional bits of the fixed-point power representation: one unit is
/// `2⁻⁴⁰ ≈ 9.1e-13` switching-weight, the same order as the historical
/// `1e-12` commit margin of the searches.
pub const POWER_FRAC_BITS: u32 = 40;

/// The fixed-point scale factor, `2^POWER_FRAC_BITS` as an `f64` (exact —
/// it is a power of two).
pub const POWER_SCALE: f64 = (1u64 << POWER_FRAC_BITS) as f64;

/// An integer-scaled power value: switching-weight units of `2⁻⁴⁰`.
///
/// # Scaling contract
///
/// Every per-element power weight (a domino gate's `S·C·P` contribution, a
/// boundary inverter's toggle weight) is quantized **once**, at the element
/// level, by [`power_to_fixed`] — round-to-nearest onto the `2⁻⁴⁰` grid.
/// Totals are then plain integer sums of those quantized weights, which
/// makes them
///
/// * **path-independent** — integer addition is associative and
///   commutative, so any accumulation order (sequential Gray-code flips, a
///   freshly seeded accountant, per-shard partial sums merged by addition)
///   produces the *same bits*; this is what lets the exhaustive power walk
///   shard across threads without breaking determinism;
/// * **exactly reversible** — adding and later subtracting an element's
///   weight restores the previous total exactly, so incremental
///   accountants never drift from a full recomputation.
///
/// Quantization error is at most `2⁻⁴¹` per element, so a total over `k`
/// elements is within `k·2⁻⁴¹` (≈ `5e-10` for a million elements) of the
/// real-valued sum. Overflow is impossible in practice: an `i64`
/// accommodates total weights up to `2²³ ≈ 8.4e6` (callers keep per-element
/// weights below that; the paper's models use unit-order weights).
pub type FixedPower = i64;

/// Quantizes one element weight onto the `2⁻⁴⁰` fixed-point grid
/// (round-to-nearest). See the [`FixedPower`] scaling contract.
///
/// ```
/// use domino_phase::power::{fixed_to_power, power_to_fixed, POWER_SCALE};
///
/// let w = power_to_fixed(0.8019);
/// assert!((fixed_to_power(w) - 0.8019).abs() <= 0.5 / POWER_SCALE);
/// // Integer totals merge by addition, independent of order.
/// assert_eq!(w + power_to_fixed(0.18), power_to_fixed(0.18) + w);
/// ```
pub fn power_to_fixed(weight: f64) -> FixedPower {
    debug_assert!(weight.is_finite(), "power weights must be finite");
    (weight * POWER_SCALE).round() as FixedPower
}

/// Converts a fixed-point total back to switching-weight units (exact for
/// totals below `2⁵³` units, i.e. total weight below `2¹³`; rounds above).
pub fn fixed_to_power(fixed: FixedPower) -> f64 {
    fixed as f64 / POWER_SCALE
}

/// Switching probability of a domino gate whose logical output has signal
/// probability `p` (Property 2.1 — the identity function).
pub fn domino_switching(p: f64) -> f64 {
    p
}

/// Switching probability of a static CMOS gate under the temporal
/// independence toggle model: `2·p·(1−p)` (the Figure 2 parabola).
pub fn static_switching(p: f64) -> f64 {
    2.0 * p * (1.0 - p)
}

/// Per-element weights of the power estimate `Σ Sᵢ·Cᵢ·Pᵢ`.
///
/// The paper's experiments use `Cᵢ = 1` and `Pᵢ = 0`; a zero penalty would
/// erase the objective entirely under a literal reading, so — matching what
/// the paper *says it did* ("we effectively determined the phase assignment
/// that minimized the total switching activity") — the default model uses
/// unit weights, making power = total switching.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Output capacitance `Cᵢ` of every domino gate.
    pub gate_cap: f64,
    /// Structure penalty `Pᵢ` for AND (series-stack) domino gates.
    pub and_penalty: f64,
    /// Structure penalty `Pᵢ` for OR (parallel-stack) domino gates.
    pub or_penalty: f64,
    /// Capacitance of boundary static inverters.
    pub inverter_cap: f64,
}

impl PowerModel {
    /// Unit weights: power = total switching activity (the paper's
    /// experimental setting).
    pub fn unit() -> Self {
        PowerModel {
            gate_cap: 1.0,
            and_penalty: 1.0,
            or_penalty: 1.0,
            inverter_cap: 1.0,
        }
    }

    /// A timing-aware variant that penalizes series-stack ANDs (the `Pᵢ`
    /// discussion of §4.2): AND gates cost `and_penalty ×` their switching.
    pub fn with_and_penalty(and_penalty: f64) -> Self {
        PowerModel {
            and_penalty,
            ..PowerModel::unit()
        }
    }

    /// Weight of one gate of the given kind.
    pub fn gate_weight(&self, kind: DominoGateKind) -> f64 {
        let penalty = match kind {
            DominoGateKind::And => self.and_penalty,
            DominoGateKind::Or => self.or_penalty,
        };
        self.gate_cap * penalty
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::unit()
    }
}

/// Estimated switching-weighted power, broken down by element class
/// (Figure 5's three rows).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerBreakdown {
    /// Domino gates inside the block.
    pub block: f64,
    /// Static inverters at the input boundary.
    pub input_inverters: f64,
    /// Static inverters at the output boundary.
    pub output_inverters: f64,
}

impl PowerBreakdown {
    /// Total over all element classes.
    pub fn total(&self) -> f64 {
        self.block + self.input_inverters + self.output_inverters
    }
}

/// Estimates the power of a synthesized domino block.
///
/// `node_probs[i]` must be the signal probability of original-network node
/// with arena index `i` (from [`prob`](crate::prob)); a gate realizing the
/// complement of node `n` has probability `1 − node_probs[n]`
/// (Property 4.1, exact for complements).
///
/// # Example
///
/// ```
/// use domino_phase::power::{estimate_power, PowerModel};
/// use domino_phase::prob::{compute_probabilities, ProbabilityConfig};
/// use domino_phase::{DominoSynthesizer, PhaseAssignment};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = domino_workloads::figures::fig5_network()?;
/// let probs = compute_probabilities(&net, &[0.9; 4], &ProbabilityConfig::default())?;
/// let synth = DominoSynthesizer::new(&net)?;
/// let domino = synth.synthesize(&PhaseAssignment::all_positive(2))?;
/// let power = estimate_power(&domino, probs.as_slice(), &PowerModel::unit());
/// assert!(power.total() > 0.0);
/// assert_eq!(
///     power.total(),
///     power.block + power.input_inverters + power.output_inverters,
/// );
/// # Ok(())
/// # }
/// ```
pub fn estimate_power(
    domino: &DominoNetwork,
    node_probs: &[f64],
    model: &PowerModel,
) -> PowerBreakdown {
    let mut breakdown = PowerBreakdown::default();
    for gate in domino.gates() {
        let p = rail_probability(node_probs[gate.source.index()], gate.complemented);
        breakdown.block += domino_switching(p) * model.gate_weight(gate.kind);
    }
    for &src in domino.input_inverters() {
        let p = node_probs[src.index()];
        breakdown.input_inverters += static_switching(p) * model.inverter_cap;
    }
    for out in domino.outputs() {
        if !out.phase.is_negative() {
            continue;
        }
        // The boundary inverter pulses with its (domino) driver.
        let p = ref_probability(domino, out.driver, node_probs);
        breakdown.output_inverters += domino_switching(p) * model.inverter_cap;
    }
    breakdown
}

/// Probability that a rail (possibly complemented) is high.
pub fn rail_probability(p: f64, complemented: bool) -> f64 {
    if complemented {
        1.0 - p
    } else {
        p
    }
}

/// Probability that a [`DominoRef`] rail is high, given original-network
/// node probabilities.
pub fn ref_probability(domino: &DominoNetwork, r: DominoRef, node_probs: &[f64]) -> f64 {
    match r {
        DominoRef::Gate(i) => {
            let g = &domino.gates()[i];
            rail_probability(node_probs[g.source.index()], g.complemented)
        }
        DominoRef::Source { node, complemented } => {
            rail_probability(node_probs[node.index()], complemented)
        }
        DominoRef::Constant(v) => {
            if v {
                1.0
            } else {
                0.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase_assignment::PhaseAssignment;
    use crate::synth::DominoSynthesizer;
    use domino_netlist::Network;

    #[test]
    fn switching_models_match_figure2() {
        // Domino: straight line through (0,0), (0.5,0.5), (1,1).
        assert_eq!(domino_switching(0.0), 0.0);
        assert_eq!(domino_switching(0.5), 0.5);
        assert_eq!(domino_switching(1.0), 1.0);
        // Static: parabola peaking at 0.5 with value 0.5.
        assert_eq!(static_switching(0.0), 0.0);
        assert_eq!(static_switching(1.0), 0.0);
        assert!((static_switching(0.5) - 0.5).abs() < 1e-12);
        assert!((static_switching(0.9) - 0.18).abs() < 1e-12);
        // Domino switches more than static everywhere above p = 0.5.
        for i in 1..10 {
            let p = 0.5 + i as f64 / 20.0;
            assert!(domino_switching(p) > static_switching(p));
        }
    }

    /// Reconstruct Figure 5 exactly: f = (a+b)+(c·d), g = !(a+b)+!(c·d),
    /// all PI probabilities 0.9.
    fn fig5() -> (Network, Vec<f64>) {
        let mut net = Network::new("fig5");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let d = net.add_input("d").unwrap();
        let aob = net.add_or([a, b]).unwrap();
        let cad = net.add_and([c, d]).unwrap();
        let f = net.add_or([aob, cad]).unwrap();
        let naob = net.add_not(aob).unwrap();
        let ncad = net.add_not(cad).unwrap();
        let g = net.add_or([naob, ncad]).unwrap();
        net.add_output("f", f).unwrap();
        net.add_output("g", g).unwrap();
        // Exact node probabilities at p(PI) = 0.9.
        let mut probs = vec![0.0; net.len()];
        probs[a.index()] = 0.9;
        probs[b.index()] = 0.9;
        probs[c.index()] = 0.9;
        probs[d.index()] = 0.9;
        probs[aob.index()] = 0.99;
        probs[cad.index()] = 0.81;
        probs[f.index()] = 1.0 - 0.01 * 0.19; // .9981
        probs[naob.index()] = 0.01;
        probs[ncad.index()] = 0.19;
        probs[g.index()] = 1.0 - 0.99 * 0.81; // .1981
        (net, probs)
    }

    #[test]
    fn figure5_first_assignment() {
        // (f+, g−): block computes f and !g = (a+b)·(c·d).
        let (net, probs) = fig5();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let mut pa = PhaseAssignment::all_positive(2);
        pa.flip(1);
        let d = synth.synthesize(&pa).unwrap();
        let power = estimate_power(&d, &probs, &PowerModel::unit());
        // Block: .99 + .81 + .9981 + .8019 = 3.6
        assert!((power.block - 3.6).abs() < 1e-9, "block = {}", power.block);
        assert!((power.input_inverters - 0.0).abs() < 1e-12);
        assert!(
            (power.output_inverters - 0.8019).abs() < 1e-9,
            "out = {}",
            power.output_inverters
        );
        assert!((power.total() - 4.4019).abs() < 1e-9);
    }

    #[test]
    fn figure5_second_assignment() {
        // (f−, g+): block computes !f = !(a+b)·!(c·d) and g.
        let (net, probs) = fig5();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let mut pa = PhaseAssignment::all_positive(2);
        pa.flip(0);
        let d = synth.synthesize(&pa).unwrap();
        let power = estimate_power(&d, &probs, &PowerModel::unit());
        // Block: .01 + .19 + .0019 + .1981 = 0.40
        assert!((power.block - 0.40).abs() < 1e-9, "block = {}", power.block);
        // Four input inverters at 2·.9·.1 = .18 each.
        assert!(
            (power.input_inverters - 0.72).abs() < 1e-9,
            "in = {}",
            power.input_inverters
        );
        assert!(
            (power.output_inverters - 0.0019).abs() < 1e-9,
            "out = {}",
            power.output_inverters
        );
        // Totals: 1.1219 vs 4.4019 — "75% fewer transitions".
        let reduction = 1.0 - power.total() / 4.4019;
        assert!(
            reduction > 0.74 && reduction < 0.76,
            "reduction {reduction}"
        );
    }

    #[test]
    fn and_penalty_weights_series_gates() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let g = net.add_and([a, b]).unwrap();
        net.add_output("f", g).unwrap();
        let synth = DominoSynthesizer::new(&net).unwrap();
        let d = synth.synthesize(&PhaseAssignment::all_positive(1)).unwrap();
        let probs = {
            let mut p = vec![0.5; net.len()];
            p[g.index()] = 0.25;
            p
        };
        let unit = estimate_power(&d, &probs, &PowerModel::unit());
        let penalized = estimate_power(&d, &probs, &PowerModel::with_and_penalty(3.0));
        assert!((penalized.block - 3.0 * unit.block).abs() < 1e-12);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = PowerBreakdown {
            block: 1.5,
            input_inverters: 0.25,
            output_inverters: 0.75,
        };
        assert!((b.total() - 2.5).abs() < 1e-12);
    }
}
