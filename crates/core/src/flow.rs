//! The overall power-minimization paradigm (paper Figure 6).
//!
//! ```text
//!   generate initial phase assignment
//!        │
//!        ▼
//!   partition sequential circuit (enhanced MFVS)  ┐
//!   compute signal probabilities (ordered BDDs)   ┴ power estimation
//!        │
//!        ▼
//!   generate new candidate phase assignment (cost K) ──► measure ──► commit?
//!        │                                                   ▲
//!        └──────────────── candidates left ──────────────────┘
//!        ▼
//!   output final phase assignment
//! ```
//!
//! [`minimize_power`] runs the whole loop; [`minimize_area`] runs the
//! baseline of Puri et al. \[15\] through the same reporting path so the two
//! are directly comparable (Tables 1 and 2).

use domino_netlist::Network;

use crate::error::PhaseError;
use crate::phase_assignment::PhaseAssignment;
use crate::power::{estimate_power, PowerBreakdown};
use crate::prob::{compute_probabilities, NodeProbabilities, ProbabilityConfig};
use crate::search::{
    min_area_assignment, min_power_assignment, MinAreaConfig, MinPowerConfig, SearchOutcome,
};
use crate::synth::{DominoNetwork, DominoSynthesizer};

/// Configuration of the full flow.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowConfig {
    /// Signal-probability machinery (ordering, MFVS, sweeps).
    pub probability: ProbabilityConfig,
    /// The min-power search (§4.1).
    pub power: MinPowerConfig,
    /// The min-area baseline search.
    pub area: MinAreaConfig,
}

/// Everything the flow produced for one circuit.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Final phase assignment.
    pub assignment: PhaseAssignment,
    /// The synthesized inverter-free block under that assignment.
    pub domino: DominoNetwork,
    /// Estimated switching-weighted power of the block.
    pub power: PowerBreakdown,
    /// Cell count (domino gates + boundary inverters).
    pub area_cells: usize,
    /// Search statistics (evaluations, commits, convergence trace).
    pub outcome: SearchOutcome,
    /// The node probabilities used by the search.
    pub probabilities: NodeProbabilities,
}

fn finish(
    synth: &DominoSynthesizer<'_>,
    probabilities: NodeProbabilities,
    outcome: SearchOutcome,
    config: &FlowConfig,
) -> Result<FlowReport, PhaseError> {
    let domino = synth.synthesize(&outcome.assignment)?;
    let power = estimate_power(&domino, probabilities.as_slice(), &config.power.model);
    Ok(FlowReport {
        assignment: outcome.assignment.clone(),
        area_cells: domino.area_cells(),
        domino,
        power,
        outcome,
        probabilities,
    })
}

/// Runs the paper's full minimum-power flow on `net` with the given primary
/// input probabilities.
///
/// # Errors
///
/// * [`PhaseError::ProbabilityMismatch`] if `pi_probs` does not match the
///   primary input count;
/// * [`PhaseError::Netlist`] / [`PhaseError::Bdd`] from validation or BDD
///   blow-up.
///
/// # Example
///
/// ```
/// use domino_phase::flow::{minimize_power, FlowConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut net = domino_netlist::Network::new("ex");
/// let a = net.add_input("a")?;
/// let b = net.add_input("b")?;
/// let g = net.add_or([a, b])?;
/// let f = net.add_not(g)?;
/// net.add_output("f", f)?;
/// let report = minimize_power(&net, &[0.9, 0.9], &FlowConfig::default())?;
/// assert!(report.domino.is_inverter_free());
/// # Ok(())
/// # }
/// ```
pub fn minimize_power(
    net: &Network,
    pi_probs: &[f64],
    config: &FlowConfig,
) -> Result<FlowReport, PhaseError> {
    minimize_power_with_cancel(net, pi_probs, config, &|| false)
}

/// [`minimize_power`] with a cooperative cancellation check.
///
/// `is_cancelled` is consulted at every stage boundary — before the
/// probability computation, between probabilities and the phase search,
/// and between the search and the final synthesis — so a caller holding a
/// cancel flag (e.g. a `dominod` worker observing `DELETE /jobs/:id`) gets
/// a bounded response time instead of waiting out the whole flow. The
/// check is a plain closure so this crate stays independent of any
/// particular token type.
///
/// # Errors
///
/// [`PhaseError::Cancelled`] when `is_cancelled` returns `true` at a
/// boundary, plus everything [`minimize_power`] can return.
pub fn minimize_power_with_cancel(
    net: &Network,
    pi_probs: &[f64],
    config: &FlowConfig,
    is_cancelled: &dyn Fn() -> bool,
) -> Result<FlowReport, PhaseError> {
    check_cancel(is_cancelled)?;
    let probabilities = compute_probabilities(net, pi_probs, &config.probability)?;
    minimize_power_with_probabilities(net, probabilities, config, is_cancelled)
}

/// The tail of [`minimize_power_with_cancel`] after the probability stage:
/// search, synthesis and reporting over caller-supplied probabilities.
/// This is the warm path of the snapshot store — when converged
/// probabilities were loaded from disk, the flow runs with zero BDD or
/// probability recompute and is byte-identical to the cold run that stored
/// them.
///
/// # Errors
///
/// Same conditions as [`minimize_power_with_cancel`] minus the probability
/// stage's.
pub fn minimize_power_with_probabilities(
    net: &Network,
    probabilities: NodeProbabilities,
    config: &FlowConfig,
    is_cancelled: &dyn Fn() -> bool,
) -> Result<FlowReport, PhaseError> {
    check_cancel(is_cancelled)?;
    let synth = DominoSynthesizer::new(net)?;
    let initial = PhaseAssignment::all_positive(synth.view_outputs().len());
    let outcome = min_power_assignment(&synth, &probabilities, initial, &config.power)?;
    check_cancel(is_cancelled)?;
    finish(&synth, probabilities, outcome, config)
}

/// Runs the minimum-area baseline (\[15\]) and reports its power under the
/// same estimate, for MA-vs-MP comparisons.
///
/// # Errors
///
/// Same conditions as [`minimize_power`].
pub fn minimize_area(
    net: &Network,
    pi_probs: &[f64],
    config: &FlowConfig,
) -> Result<FlowReport, PhaseError> {
    minimize_area_with_cancel(net, pi_probs, config, &|| false)
}

/// [`minimize_area`] with a cooperative cancellation check at the same
/// stage boundaries as [`minimize_power_with_cancel`].
///
/// # Errors
///
/// [`PhaseError::Cancelled`] when `is_cancelled` returns `true` at a
/// boundary, plus everything [`minimize_area`] can return.
pub fn minimize_area_with_cancel(
    net: &Network,
    pi_probs: &[f64],
    config: &FlowConfig,
    is_cancelled: &dyn Fn() -> bool,
) -> Result<FlowReport, PhaseError> {
    check_cancel(is_cancelled)?;
    let probabilities = compute_probabilities(net, pi_probs, &config.probability)?;
    minimize_area_with_probabilities(net, probabilities, config, is_cancelled)
}

/// The tail of [`minimize_area_with_cancel`] after the probability stage,
/// over caller-supplied probabilities — the snapshot store's warm path for
/// the min-area baseline (the power report still needs the probabilities).
///
/// # Errors
///
/// Same conditions as [`minimize_area_with_cancel`] minus the probability
/// stage's.
pub fn minimize_area_with_probabilities(
    net: &Network,
    probabilities: NodeProbabilities,
    config: &FlowConfig,
    is_cancelled: &dyn Fn() -> bool,
) -> Result<FlowReport, PhaseError> {
    check_cancel(is_cancelled)?;
    let synth = DominoSynthesizer::new(net)?;
    let outcome = min_area_assignment(&synth, &config.area)?;
    check_cancel(is_cancelled)?;
    finish(&synth, probabilities, outcome, config)
}

fn check_cancel(is_cancelled: &dyn Fn() -> bool) -> Result<(), PhaseError> {
    if is_cancelled() {
        Err(PhaseError::Cancelled)
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase_assignment::Phase;

    fn fig5() -> Network {
        let mut net = Network::new("fig5");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let d = net.add_input("d").unwrap();
        let aob = net.add_or([a, b]).unwrap();
        let cad = net.add_and([c, d]).unwrap();
        let f = net.add_or([aob, cad]).unwrap();
        let naob = net.add_not(aob).unwrap();
        let ncad = net.add_not(cad).unwrap();
        let g = net.add_or([naob, ncad]).unwrap();
        net.add_output("f", f).unwrap();
        net.add_output("g", g).unwrap();
        net
    }

    #[test]
    fn ma_and_mp_can_differ() {
        // The paper's core claim: minimum area ≠ minimum power.
        let net = fig5();
        let pi = vec![0.9; 4];
        let cfg = FlowConfig::default();
        let ma = minimize_area(&net, &pi, &cfg).unwrap();
        let mp = minimize_power(&net, &pi, &cfg).unwrap();
        assert!(mp.power.total() <= ma.power.total() + 1e-12);
        // At p = 0.9 the saving is large (75% including boundaries).
        assert!(mp.power.total() < 0.5 * ma.power.total());
        // MP found the (f−, g+) assignment.
        assert_eq!(mp.assignment.phase(0), Phase::Negative);
        assert_eq!(mp.assignment.phase(1), Phase::Positive);
    }

    #[test]
    fn reports_are_consistent() {
        let net = fig5();
        let pi = vec![0.5; 4];
        let report = minimize_power(&net, &pi, &FlowConfig::default()).unwrap();
        assert_eq!(report.area_cells, report.domino.area_cells());
        assert!((report.power.total() - report.outcome.objective).abs() < 1e-9);
        assert!(report.domino.is_inverter_free());
        assert_eq!(report.assignment.len(), 2);
    }

    #[test]
    fn sequential_flow_runs() {
        // A small FSM exercises partition + probability sweeps end to end.
        let mut net = Network::new("fsm");
        let a = net.add_input("a").unwrap();
        let q0 = net.add_latch(false);
        let q1 = net.add_latch(false);
        let nq1 = net.add_not(q1).unwrap();
        let d0 = net.add_and([a, nq1]).unwrap();
        let d1 = net.add_or([q0, q1]).unwrap();
        net.set_latch_data(q0, d0).unwrap();
        net.set_latch_data(q1, d1).unwrap();
        let out = net.add_and([q0, q1]).unwrap();
        net.add_output("o", out).unwrap();
        let report = minimize_power(&net, &[0.7], &FlowConfig::default()).unwrap();
        // View outputs: o, q0.d, q1.d.
        assert_eq!(report.assignment.len(), 3);
        assert!(report.probabilities.partition().is_some());
        assert!(report.domino.is_inverter_free());
    }

    #[test]
    fn cancellation_stops_at_stage_boundaries() {
        let net = fig5();
        let pi = vec![0.5; 4];
        let cfg = FlowConfig::default();
        // Already-cancelled: nothing runs.
        assert!(matches!(
            minimize_power_with_cancel(&net, &pi, &cfg, &|| true),
            Err(PhaseError::Cancelled)
        ));
        assert!(matches!(
            minimize_area_with_cancel(&net, &pi, &cfg, &|| true),
            Err(PhaseError::Cancelled)
        ));
        // Cancel raised after the first boundary check: the flow stops at
        // the next boundary instead of completing.
        let checks = std::cell::Cell::new(0u32);
        let cancel_after_first = || {
            checks.set(checks.get() + 1);
            checks.get() > 1
        };
        assert!(matches!(
            minimize_power_with_cancel(&net, &pi, &cfg, &cancel_after_first),
            Err(PhaseError::Cancelled)
        ));
        // A never-cancelled run through the same entry point completes.
        assert!(minimize_power_with_cancel(&net, &pi, &cfg, &|| false).is_ok());
    }

    #[test]
    fn wrong_probability_count_rejected() {
        let net = fig5();
        assert!(matches!(
            minimize_power(&net, &[0.5], &FlowConfig::default()),
            Err(PhaseError::ProbabilityMismatch { .. })
        ));
    }
}
