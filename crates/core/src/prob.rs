//! Exact signal probabilities for every network node (paper §4.2.1–4.2.2).
//!
//! Combinational networks: one BDD per node (shared manager) under a
//! configurable variable order, probabilities in one memoized sweep.
//!
//! Sequential networks: the latch dependency structure is made acyclic by
//! cutting an (approximately minimum) feedback vertex set of the s-graph
//! (`domino-sgraph`); cut latches act as pseudo primary inputs with
//! probability ½, the remaining latches are resolved in dependency order
//! (their steady-state probability is their data input's probability), and
//! optional extra sweeps iterate the cut latches toward a fixpoint.

use domino_bdd::circuit::CircuitBdds;
use domino_bdd::ordering;
use domino_bdd::{BddStats, ReorderConfig, ReorderMode, ReorderOutcome};
use domino_netlist::Network;
use domino_sgraph::{partition, MfvsConfig, Partition};

use crate::error::PhaseError;

/// Which BDD variable order to build with (ablation A2 of DESIGN.md).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum OrderingChoice {
    /// The paper's reverse-topological fanout-cone heuristic (§4.2.2).
    #[default]
    Paper,
    /// Naive first-visit topological order (Figure 10's 11-node baseline).
    Topological,
    /// A seeded random permutation.
    Random(u64),
    /// An explicit order (level 0 first).
    Custom(Vec<usize>),
}

/// Configuration for [`compute_probabilities`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProbabilityConfig {
    /// Variable ordering for the BDDs.
    pub ordering: OrderingChoice,
    /// MFVS heuristic configuration for sequential partitioning.
    pub mfvs: MfvsConfig,
    /// Number of fixpoint sweeps updating cut-latch probabilities (≥ 1).
    /// Sweep 1 uses probability ½ for every cut latch, matching the paper's
    /// partition-and-approximate scheme; more sweeps refine toward a
    /// steady state.
    pub sweeps: usize,
    /// Probability assigned to cut latches on the first sweep.
    pub cut_latch_probability: f64,
    /// Early-exit threshold for the sequential sweep loop: when no source
    /// probability moved by more than this between sweeps, the remaining
    /// sweeps are skipped (they could only reproduce the same result). The
    /// default `0.0` exits only at an *exact* fixed point, so results are
    /// bit-identical to running every sweep.
    pub convergence_tolerance: f64,
    /// Dynamic variable reordering (sifting) applied while the BDDs are
    /// built. `Off` (the default) reproduces the static-order build
    /// bit-for-bit; `Auto` sifts at fixed node-count triggers; `Sift` runs
    /// one final sifting pass. Result-affecting: the reorder mode joins
    /// the engine cache key.
    pub reorder: ReorderMode,
}

impl Default for ProbabilityConfig {
    fn default() -> Self {
        ProbabilityConfig {
            ordering: OrderingChoice::Paper,
            mfvs: MfvsConfig::default(),
            sweeps: 2,
            cut_latch_probability: 0.5,
            convergence_tolerance: 0.0,
            reorder: ReorderMode::Off,
        }
    }
}

/// Signal probability of every node, plus the artifacts that produced them.
#[derive(Debug, Clone)]
pub struct NodeProbabilities {
    probs: Vec<f64>,
    partition: Option<Partition>,
    bdd_nodes: usize,
    bdd_stats: Option<BddStats>,
    reorder: Option<ReorderOutcome>,
}

impl NodeProbabilities {
    /// Wraps externally computed per-node probabilities (e.g. Monte-Carlo
    /// estimates from `domino-sim`) so they can drive the same search
    /// machinery as the exact BDD values (ablation A5).
    pub fn from_vec(probs: Vec<f64>) -> Self {
        NodeProbabilities {
            probs,
            partition: None,
            bdd_nodes: 0,
            bdd_stats: None,
            reorder: None,
        }
    }

    /// Probability of node with arena index `i` (see
    /// [`NodeId::index`](domino_netlist::NodeId::index)).
    pub fn get(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// The full probability slice, indexed by node arena index.
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }

    /// The sequential partition, if the network had latches.
    pub fn partition(&self) -> Option<&Partition> {
        self.partition.as_ref()
    }

    /// Shared BDD nodes used for the computation (the §4.2.2 cost metric).
    pub fn bdd_node_count(&self) -> usize {
        self.bdd_nodes
    }

    /// Kernel statistics of the BDD manager that produced these
    /// probabilities (unique-table and op-cache traffic); `None` for
    /// externally supplied probabilities ([`NodeProbabilities::from_vec`]).
    pub fn bdd_stats(&self) -> Option<&BddStats> {
        self.bdd_stats.as_ref()
    }

    /// Outcome of dynamic variable reordering, if a reorder mode other
    /// than [`ReorderMode::Off`] was configured (swap count, node counts
    /// before/after, and the final variable order).
    pub fn reorder_outcome(&self) -> Option<&ReorderOutcome> {
        self.reorder.as_ref()
    }

    /// Reassembles a [`NodeProbabilities`] from snapshot-carried parts
    /// without any BDD work: `probs`, `bdd_nodes`, `bdd_stats` and
    /// `reorder` come back verbatim from the snapshot (a deserialized
    /// manager has zero traffic counters, so build-time statistics must be
    /// carried, not recomputed), while the sequential partition — pure
    /// graph work on the netlist, not kernel recompute — is rederived
    /// deterministically from `net` and `config.mfvs`.
    pub fn rehydrate(
        net: &Network,
        config: &ProbabilityConfig,
        probs: Vec<f64>,
        bdd_nodes: usize,
        bdd_stats: Option<BddStats>,
        reorder: Option<ReorderOutcome>,
    ) -> Self {
        let partition = net.is_sequential().then(|| partition(net, &config.mfvs));
        NodeProbabilities {
            probs,
            partition,
            bdd_nodes,
            bdd_stats,
            reorder,
        }
    }
}

fn resolve_order(net: &Network, choice: &OrderingChoice) -> Vec<usize> {
    match choice {
        OrderingChoice::Paper => ordering::paper_order(net),
        OrderingChoice::Topological => ordering::topological_order(net),
        OrderingChoice::Random(seed) => {
            let n = net.inputs().len() + net.latches().len();
            ordering::random_order(n, *seed)
        }
        OrderingChoice::Custom(order) => order.clone(),
    }
}

/// Computes the exact signal probability of every node given per-primary-
/// input probabilities.
///
/// # Errors
///
/// * [`PhaseError::ProbabilityMismatch`] if `pi_probs` does not match the
///   primary input count;
/// * [`PhaseError::Bdd`] if BDD construction exceeds limits or
///   probabilities are invalid.
///
/// # Example
///
/// ```
/// use domino_phase::prob::{compute_probabilities, ProbabilityConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut net = domino_netlist::Network::new("p");
/// let a = net.add_input("a")?;
/// let b = net.add_input("b")?;
/// let g = net.add_or([a, b])?;
/// net.add_output("f", g)?;
/// let probs = compute_probabilities(&net, &[0.9, 0.9], &ProbabilityConfig::default())?;
/// assert!((probs.get(g.index()) - 0.99).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn compute_probabilities(
    net: &Network,
    pi_probs: &[f64],
    config: &ProbabilityConfig,
) -> Result<NodeProbabilities, PhaseError> {
    compute_probabilities_with_bdds(net, pi_probs, config).map(|(probs, _)| probs)
}

/// [`compute_probabilities`], additionally returning the built
/// [`CircuitBdds`] instead of dropping it — the seam the snapshot store
/// uses to serialize the expensive structures right after a cold build.
/// The probability result is bit-identical to [`compute_probabilities`].
///
/// # Errors
///
/// Same conditions as [`compute_probabilities`].
pub fn compute_probabilities_with_bdds(
    net: &Network,
    pi_probs: &[f64],
    config: &ProbabilityConfig,
) -> Result<(NodeProbabilities, CircuitBdds), PhaseError> {
    if pi_probs.len() != net.inputs().len() {
        return Err(PhaseError::ProbabilityMismatch {
            expected: net.inputs().len(),
            got: pi_probs.len(),
        });
    }
    let order = resolve_order(net, &config.ordering);
    let (bdds, reorder) =
        CircuitBdds::build_reordered(net, order, &ReorderConfig::with_mode(config.reorder))?;
    let bdd_nodes = bdds.total_node_count();

    if !net.is_sequential() {
        let probs = bdds.node_probabilities(net, pi_probs)?;
        let result = NodeProbabilities {
            probs,
            partition: None,
            bdd_nodes,
            bdd_stats: Some(bdds.manager().stats()),
            reorder,
        };
        return Ok((result, bdds));
    }

    // Sequential: partition, then resolve latch probabilities.
    let part = partition(net, &config.mfvs);
    let latches = net.latches();
    // Dense latch-position map indexed by node arena index (hoisted out of
    // the sweep loop; the former HashMap cost a hash per latch per sweep).
    let mut latch_pos = vec![usize::MAX; net.len()];
    for (i, &l) in latches.iter().enumerate() {
        latch_pos[l.index()] = i;
    }
    // Source probabilities: PIs then latches.
    let mut source_probs: Vec<f64> = pi_probs.to_vec();
    source_probs.extend(std::iter::repeat_n(
        config.cut_latch_probability,
        latches.len(),
    ));

    let sweeps = config.sweeps.max(1);
    // One probability buffer reused across all sweeps; `last_eval_sources`
    // snapshots the source vector the buffer was computed under, so a
    // sweep whose sources have not moved past the tolerance can stop —
    // re-evaluating would reproduce the buffer as-is.
    let mut probs = Vec::new();
    let mut last_eval_sources: Option<Vec<f64>> = None;
    for _ in 0..sweeps {
        // Scheduled latches resolve in dependency order within the sweep.
        for &l in &part.schedule {
            let data = net.node(l).fanins[0];
            let p = bdds
                .manager()
                .signal_probability(bdds.node_bdd(data), &source_probs)?;
            source_probs[pi_probs.len() + latch_pos[l.index()]] = p;
        }
        if let Some(prev) = &last_eval_sources {
            let converged = prev
                .iter()
                .zip(&source_probs)
                .all(|(a, b)| (a - b).abs() <= config.convergence_tolerance);
            if converged {
                break;
            }
        }
        // All node probabilities under the current sources.
        bdds.node_probabilities_into(net, &source_probs, &mut probs)?;
        match &mut last_eval_sources {
            Some(prev) => prev.copy_from_slice(&source_probs),
            None => last_eval_sources = Some(source_probs.clone()),
        }
        // Cut latches move toward their data's probability for the next
        // sweep.
        for &l in &part.cut {
            let data = net.node(l).fanins[0];
            source_probs[pi_probs.len() + latch_pos[l.index()]] = probs[data.index()];
        }
    }
    let result = NodeProbabilities {
        probs,
        partition: Some(part),
        bdd_nodes,
        bdd_stats: Some(bdds.manager().stats()),
        reorder,
    };
    Ok((result, bdds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_netlist::Network;

    #[test]
    fn combinational_exact() {
        let mut net = Network::new("c");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let ab = net.add_and([a, b]).unwrap();
        let f = net.add_or([ab, c]).unwrap();
        let nf = net.add_not(f).unwrap();
        net.add_output("f", nf).unwrap();
        let p =
            compute_probabilities(&net, &[0.9, 0.8, 0.3], &ProbabilityConfig::default()).unwrap();
        let expect_f = 1.0 - (1.0 - 0.72) * 0.7;
        assert!((p.get(f.index()) - expect_f).abs() < 1e-12);
        assert!((p.get(nf.index()) - (1.0 - expect_f)).abs() < 1e-12);
        assert!(p.partition().is_none());
        assert!(p.bdd_node_count() > 0);
    }

    #[test]
    fn wrong_pi_count_rejected() {
        let mut net = Network::new("c");
        let _ = net.add_input("a").unwrap();
        assert!(matches!(
            compute_probabilities(&net, &[], &ProbabilityConfig::default()),
            Err(PhaseError::ProbabilityMismatch { .. })
        ));
    }

    #[test]
    fn pipeline_probabilities_propagate_through_latches() {
        // a -> q0 -> q1; all latches scheduled (no feedback), so after one
        // sweep q1 carries P[a].
        let mut net = Network::new("pipe");
        let a = net.add_input("a").unwrap();
        let q0 = net.add_latch(false);
        let q1 = net.add_latch(false);
        net.set_latch_data(q0, a).unwrap();
        net.set_latch_data(q1, q0).unwrap();
        net.add_output("o", q1).unwrap();
        let p = compute_probabilities(&net, &[0.7], &ProbabilityConfig::default()).unwrap();
        assert!((p.get(q0.index()) - 0.7).abs() < 1e-12);
        assert!((p.get(q1.index()) - 0.7).abs() < 1e-12);
        let part = p.partition().unwrap();
        assert!(part.cut.is_empty());
        assert_eq!(part.schedule.len(), 2);
    }

    #[test]
    fn feedback_latch_iterates_toward_fixpoint() {
        // q' = a + q (a sticky latch): the exact steady-state probability
        // tends to 1; more sweeps should move monotonically upward.
        let mut net = Network::new("sticky");
        let a = net.add_input("a").unwrap();
        let q = net.add_latch(false);
        let d = net.add_or([a, q]).unwrap();
        net.set_latch_data(q, d).unwrap();
        net.add_output("o", q).unwrap();
        let p1 = compute_probabilities(
            &net,
            &[0.5],
            &ProbabilityConfig {
                sweeps: 1,
                ..ProbabilityConfig::default()
            },
        )
        .unwrap();
        let p4 = compute_probabilities(
            &net,
            &[0.5],
            &ProbabilityConfig {
                sweeps: 4,
                ..ProbabilityConfig::default()
            },
        )
        .unwrap();
        // Sweep 1: q = 0.5 ⇒ d = 0.75. Sweep 4 refines: q = 0.75 ⇒
        // d = 0.875, then q = 0.875 ⇒ …
        assert!((p1.get(d.index()) - 0.75).abs() < 1e-12);
        assert!(p4.get(d.index()) > p1.get(d.index()));
        assert_eq!(p1.partition().unwrap().cut.len(), 1);
    }

    /// A feed-forward pipeline reaches its fixed point after one sweep, so
    /// the default zero-tolerance early exit must stop there — and the
    /// result must be bit-identical to running every requested sweep.
    #[test]
    fn early_exit_at_exact_fixpoint_is_bit_identical() {
        let mut net = Network::new("pipe");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let g = net.add_and([a, b]).unwrap();
        let q0 = net.add_latch(false);
        let q1 = net.add_latch(false);
        net.set_latch_data(q0, g).unwrap();
        net.set_latch_data(q1, q0).unwrap();
        let out = net.add_or([q1, a]).unwrap();
        net.add_output("o", out).unwrap();
        let pi = [0.3, 0.8];
        let one = compute_probabilities(
            &net,
            &pi,
            &ProbabilityConfig {
                sweeps: 1,
                ..ProbabilityConfig::default()
            },
        )
        .unwrap();
        let many = compute_probabilities(
            &net,
            &pi,
            &ProbabilityConfig {
                sweeps: 64,
                ..ProbabilityConfig::default()
            },
        )
        .unwrap();
        for (x, y) in one.as_slice().iter().zip(many.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// A sequential workload with feedback: the cut latch refines by a
    /// shrinking delta each sweep, so a loose tolerance stops the loop
    /// after exactly the sweeps whose movement exceeded it.
    #[test]
    fn convergence_tolerance_stops_sequential_sweeps() {
        // Sticky latch q' = a + q: cut-latch probability walks
        // 0.5 → 0.75 → 0.875 → ... (delta halves each sweep).
        let mut net = Network::new("sticky");
        let a = net.add_input("a").unwrap();
        let q = net.add_latch(false);
        let d = net.add_or([a, q]).unwrap();
        net.set_latch_data(q, d).unwrap();
        net.add_output("o", q).unwrap();
        let with_tol = compute_probabilities(
            &net,
            &[0.5],
            &ProbabilityConfig {
                sweeps: 10,
                convergence_tolerance: 0.2,
                ..ProbabilityConfig::default()
            },
        )
        .unwrap();
        let two_sweeps = compute_probabilities(
            &net,
            &[0.5],
            &ProbabilityConfig {
                sweeps: 2,
                ..ProbabilityConfig::default()
            },
        )
        .unwrap();
        let full = compute_probabilities(
            &net,
            &[0.5],
            &ProbabilityConfig {
                sweeps: 10,
                ..ProbabilityConfig::default()
            },
        )
        .unwrap();
        // Sweep 2's source delta is 0.25 > 0.2, sweep 3's is 0.125 ≤ 0.2:
        // the tolerant run stops after two evaluations.
        for (x, y) in with_tol.as_slice().iter().zip(two_sweeps.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // ... which really is an early exit: the full 10-sweep run differs.
        assert!(with_tol.get(d.index()) < full.get(d.index()));
    }

    /// `reorder: Off` must be byte-identical to the historical build path,
    /// and an active mode must record its outcome while leaving every
    /// probability numerically exact.
    #[test]
    fn reorder_modes_preserve_probabilities() {
        let mut net = Network::new("c");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let d = net.add_input("d").unwrap();
        let ab = net.add_and([a, b]).unwrap();
        let cd = net.add_and([c, d]).unwrap();
        let f = net.add_or([ab, cd]).unwrap();
        net.add_output("f", f).unwrap();
        let pi = [0.3, 0.6, 0.9, 0.2];
        let off = compute_probabilities(&net, &pi, &ProbabilityConfig::default()).unwrap();
        assert!(off.reorder_outcome().is_none());
        for mode in [ReorderMode::Auto, ReorderMode::Sift] {
            let on = compute_probabilities(
                &net,
                &pi,
                &ProbabilityConfig {
                    reorder: mode,
                    ..ProbabilityConfig::default()
                },
            )
            .unwrap();
            let outcome = on.reorder_outcome().expect("active mode records outcome");
            assert_eq!(outcome.final_order.len(), 4);
            for (x, y) in off.as_slice().iter().zip(on.as_slice()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ordering_choice_does_not_change_probabilities() {
        let mut net = Network::new("c");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let ab = net.add_and([a, b]).unwrap();
        let f = net.add_or([ab, c]).unwrap();
        net.add_output("f", f).unwrap();
        let pi = [0.2, 0.4, 0.6];
        let base = compute_probabilities(&net, &pi, &ProbabilityConfig::default()).unwrap();
        for choice in [
            OrderingChoice::Topological,
            OrderingChoice::Random(7),
            OrderingChoice::Custom(vec![2, 0, 1]),
        ] {
            let alt = compute_probabilities(
                &net,
                &pi,
                &ProbabilityConfig {
                    ordering: choice,
                    ..ProbabilityConfig::default()
                },
            )
            .unwrap();
            for (x, y) in base.as_slice().iter().zip(alt.as_slice()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }
}
