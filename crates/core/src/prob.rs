//! Exact signal probabilities for every network node (paper §4.2.1–4.2.2).
//!
//! Combinational networks: one BDD per node (shared manager) under a
//! configurable variable order, probabilities in one memoized sweep.
//!
//! Sequential networks: the latch dependency structure is made acyclic by
//! cutting an (approximately minimum) feedback vertex set of the s-graph
//! (`domino-sgraph`); cut latches act as pseudo primary inputs with
//! probability ½, the remaining latches are resolved in dependency order
//! (their steady-state probability is their data input's probability), and
//! optional extra sweeps iterate the cut latches toward a fixpoint.

use domino_bdd::circuit::CircuitBdds;
use domino_bdd::ordering;
use domino_netlist::Network;
use domino_sgraph::{partition, MfvsConfig, Partition};

use crate::error::PhaseError;

/// Which BDD variable order to build with (ablation A2 of DESIGN.md).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum OrderingChoice {
    /// The paper's reverse-topological fanout-cone heuristic (§4.2.2).
    #[default]
    Paper,
    /// Naive first-visit topological order (Figure 10's 11-node baseline).
    Topological,
    /// A seeded random permutation.
    Random(u64),
    /// An explicit order (level 0 first).
    Custom(Vec<usize>),
}

/// Configuration for [`compute_probabilities`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProbabilityConfig {
    /// Variable ordering for the BDDs.
    pub ordering: OrderingChoice,
    /// MFVS heuristic configuration for sequential partitioning.
    pub mfvs: MfvsConfig,
    /// Number of fixpoint sweeps updating cut-latch probabilities (≥ 1).
    /// Sweep 1 uses probability ½ for every cut latch, matching the paper's
    /// partition-and-approximate scheme; more sweeps refine toward a
    /// steady state.
    pub sweeps: usize,
    /// Probability assigned to cut latches on the first sweep.
    pub cut_latch_probability: f64,
}

impl Default for ProbabilityConfig {
    fn default() -> Self {
        ProbabilityConfig {
            ordering: OrderingChoice::Paper,
            mfvs: MfvsConfig::default(),
            sweeps: 2,
            cut_latch_probability: 0.5,
        }
    }
}

/// Signal probability of every node, plus the artifacts that produced them.
#[derive(Debug, Clone)]
pub struct NodeProbabilities {
    probs: Vec<f64>,
    partition: Option<Partition>,
    bdd_nodes: usize,
}

impl NodeProbabilities {
    /// Wraps externally computed per-node probabilities (e.g. Monte-Carlo
    /// estimates from `domino-sim`) so they can drive the same search
    /// machinery as the exact BDD values (ablation A5).
    pub fn from_vec(probs: Vec<f64>) -> Self {
        NodeProbabilities {
            probs,
            partition: None,
            bdd_nodes: 0,
        }
    }

    /// Probability of node with arena index `i` (see
    /// [`NodeId::index`](domino_netlist::NodeId::index)).
    pub fn get(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// The full probability slice, indexed by node arena index.
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }

    /// The sequential partition, if the network had latches.
    pub fn partition(&self) -> Option<&Partition> {
        self.partition.as_ref()
    }

    /// Shared BDD nodes used for the computation (the §4.2.2 cost metric).
    pub fn bdd_node_count(&self) -> usize {
        self.bdd_nodes
    }
}

fn resolve_order(net: &Network, choice: &OrderingChoice) -> Vec<usize> {
    match choice {
        OrderingChoice::Paper => ordering::paper_order(net),
        OrderingChoice::Topological => ordering::topological_order(net),
        OrderingChoice::Random(seed) => {
            let n = net.inputs().len() + net.latches().len();
            ordering::random_order(n, *seed)
        }
        OrderingChoice::Custom(order) => order.clone(),
    }
}

/// Computes the exact signal probability of every node given per-primary-
/// input probabilities.
///
/// # Errors
///
/// * [`PhaseError::ProbabilityMismatch`] if `pi_probs` does not match the
///   primary input count;
/// * [`PhaseError::Bdd`] if BDD construction exceeds limits or
///   probabilities are invalid.
///
/// # Example
///
/// ```
/// use domino_phase::prob::{compute_probabilities, ProbabilityConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut net = domino_netlist::Network::new("p");
/// let a = net.add_input("a")?;
/// let b = net.add_input("b")?;
/// let g = net.add_or([a, b])?;
/// net.add_output("f", g)?;
/// let probs = compute_probabilities(&net, &[0.9, 0.9], &ProbabilityConfig::default())?;
/// assert!((probs.get(g.index()) - 0.99).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn compute_probabilities(
    net: &Network,
    pi_probs: &[f64],
    config: &ProbabilityConfig,
) -> Result<NodeProbabilities, PhaseError> {
    if pi_probs.len() != net.inputs().len() {
        return Err(PhaseError::ProbabilityMismatch {
            expected: net.inputs().len(),
            got: pi_probs.len(),
        });
    }
    let order = resolve_order(net, &config.ordering);
    let bdds = CircuitBdds::build_with_order(net, order)?;
    let bdd_nodes = bdds.total_node_count();

    if !net.is_sequential() {
        let probs = bdds.node_probabilities(net, pi_probs)?;
        return Ok(NodeProbabilities {
            probs,
            partition: None,
            bdd_nodes,
        });
    }

    // Sequential: partition, then resolve latch probabilities.
    let part = partition(net, &config.mfvs);
    let latches = net.latches();
    let latch_pos: std::collections::HashMap<_, _> =
        latches.iter().enumerate().map(|(i, &l)| (l, i)).collect();
    // Source probabilities: PIs then latches.
    let mut source_probs: Vec<f64> = pi_probs.to_vec();
    source_probs.extend(std::iter::repeat_n(
        config.cut_latch_probability,
        latches.len(),
    ));

    let sweeps = config.sweeps.max(1);
    let mut probs = Vec::new();
    for _ in 0..sweeps {
        // Scheduled latches resolve in dependency order within the sweep.
        for &l in &part.schedule {
            let data = net.node(l).fanins[0];
            let p = bdds
                .manager()
                .signal_probability(bdds.node_bdd(data), &source_probs)?;
            source_probs[pi_probs.len() + latch_pos[&l]] = p;
        }
        // All node probabilities under the current sources.
        probs = bdds.node_probabilities(net, &source_probs)?;
        // Cut latches move toward their data's probability for the next
        // sweep.
        for &l in &part.cut {
            let data = net.node(l).fanins[0];
            source_probs[pi_probs.len() + latch_pos[&l]] = probs[data.index()];
        }
    }
    Ok(NodeProbabilities {
        probs,
        partition: Some(part),
        bdd_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_netlist::Network;

    #[test]
    fn combinational_exact() {
        let mut net = Network::new("c");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let ab = net.add_and([a, b]).unwrap();
        let f = net.add_or([ab, c]).unwrap();
        let nf = net.add_not(f).unwrap();
        net.add_output("f", nf).unwrap();
        let p =
            compute_probabilities(&net, &[0.9, 0.8, 0.3], &ProbabilityConfig::default()).unwrap();
        let expect_f = 1.0 - (1.0 - 0.72) * 0.7;
        assert!((p.get(f.index()) - expect_f).abs() < 1e-12);
        assert!((p.get(nf.index()) - (1.0 - expect_f)).abs() < 1e-12);
        assert!(p.partition().is_none());
        assert!(p.bdd_node_count() > 0);
    }

    #[test]
    fn wrong_pi_count_rejected() {
        let mut net = Network::new("c");
        let _ = net.add_input("a").unwrap();
        assert!(matches!(
            compute_probabilities(&net, &[], &ProbabilityConfig::default()),
            Err(PhaseError::ProbabilityMismatch { .. })
        ));
    }

    #[test]
    fn pipeline_probabilities_propagate_through_latches() {
        // a -> q0 -> q1; all latches scheduled (no feedback), so after one
        // sweep q1 carries P[a].
        let mut net = Network::new("pipe");
        let a = net.add_input("a").unwrap();
        let q0 = net.add_latch(false);
        let q1 = net.add_latch(false);
        net.set_latch_data(q0, a).unwrap();
        net.set_latch_data(q1, q0).unwrap();
        net.add_output("o", q1).unwrap();
        let p = compute_probabilities(&net, &[0.7], &ProbabilityConfig::default()).unwrap();
        assert!((p.get(q0.index()) - 0.7).abs() < 1e-12);
        assert!((p.get(q1.index()) - 0.7).abs() < 1e-12);
        let part = p.partition().unwrap();
        assert!(part.cut.is_empty());
        assert_eq!(part.schedule.len(), 2);
    }

    #[test]
    fn feedback_latch_iterates_toward_fixpoint() {
        // q' = a + q (a sticky latch): the exact steady-state probability
        // tends to 1; more sweeps should move monotonically upward.
        let mut net = Network::new("sticky");
        let a = net.add_input("a").unwrap();
        let q = net.add_latch(false);
        let d = net.add_or([a, q]).unwrap();
        net.set_latch_data(q, d).unwrap();
        net.add_output("o", q).unwrap();
        let p1 = compute_probabilities(
            &net,
            &[0.5],
            &ProbabilityConfig {
                sweeps: 1,
                ..ProbabilityConfig::default()
            },
        )
        .unwrap();
        let p4 = compute_probabilities(
            &net,
            &[0.5],
            &ProbabilityConfig {
                sweeps: 4,
                ..ProbabilityConfig::default()
            },
        )
        .unwrap();
        // Sweep 1: q = 0.5 ⇒ d = 0.75. Sweep 4 refines: q = 0.75 ⇒
        // d = 0.875, then q = 0.875 ⇒ …
        assert!((p1.get(d.index()) - 0.75).abs() < 1e-12);
        assert!(p4.get(d.index()) > p1.get(d.index()));
        assert_eq!(p1.partition().unwrap().cut.len(), 1);
    }

    #[test]
    fn ordering_choice_does_not_change_probabilities() {
        let mut net = Network::new("c");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let ab = net.add_and([a, b]).unwrap();
        let f = net.add_or([ab, c]).unwrap();
        net.add_output("f", f).unwrap();
        let pi = [0.2, 0.4, 0.6];
        let base = compute_probabilities(&net, &pi, &ProbabilityConfig::default()).unwrap();
        for choice in [
            OrderingChoice::Topological,
            OrderingChoice::Random(7),
            OrderingChoice::Custom(vec![2, 0, 1]),
        ] {
            let alt = compute_probabilities(
                &net,
                &pi,
                &ProbabilityConfig {
                    ordering: choice,
                    ..ProbabilityConfig::default()
                },
            )
            .unwrap();
            for (x, y) in base.as_slice().iter().zip(alt.as_slice()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }
}
