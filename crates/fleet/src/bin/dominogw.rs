//! `dominogw` — the fleet gateway.
//!
//! ```text
//! dominogw --backend host:port [--backend host:port ...] [--addr 127.0.0.1:7270]
//! ```
//!
//! Binds, prints `dominogw listening on <addr>` (port 0 reports the
//! ephemeral port actually bound — scripts parse this line), then routes
//! jobs across its backends until `POST /shutdown`, SIGTERM or SIGINT
//! asks it to drain.
//!
//! Exit status: 0 after a graceful drain, 2 on usage or bind errors.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use domino_fleet::{Gateway, GatewayConfig};

fn usage() -> String {
    format!(
        "usage: dominogw --backend <host:port> [options]\n\
         \n\
         options:\n\
         {}\n\
         \n\
         stop it with: dominoc shutdown --server <addr>, SIGTERM or SIGINT",
        GatewayConfig::arg_table().options_help()
    )
}

/// Arranges for SIGTERM/SIGINT to request the same graceful drain as
/// `POST /shutdown`. Failures are reported, not fatal — a platform
/// without signal support still serves.
fn wire_signals(gateway: &Gateway) {
    let flag = Arc::new(AtomicBool::new(false));
    for signal in [signal_hook::consts::SIGTERM, signal_hook::consts::SIGINT] {
        if let Err(e) = signal_hook::flag::register(signal, Arc::clone(&flag)) {
            eprintln!("dominogw: signal {signal} not wired: {e}");
        }
    }
    let handle = gateway.shutdown_handle();
    std::thread::Builder::new()
        .name("gw-signals".into())
        .spawn(move || loop {
            if flag.load(Ordering::SeqCst) {
                eprintln!("dominogw: signal received, draining");
                handle.request_shutdown();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        })
        .expect("spawn signal watcher");
}

fn run(args: &[String]) -> Result<(), String> {
    if args
        .iter()
        .any(|a| matches!(a.as_str(), "help" | "--help" | "-h"))
    {
        println!("{}", usage());
        return Ok(());
    }
    let mut args = args.to_vec();
    domino_failpoint::take_cli_args(&mut args)?;
    if let Some((spec, seed)) = domino_failpoint::active_spec() {
        // The reproducibility header: a chaos failure is rerunnable from
        // this one log line.
        eprintln!("dominogw: failpoints active: {spec} (seed {seed})");
    }
    let config = GatewayConfig::parse_args(&args)?;
    let backends = config.backends.clone();
    let gateway = Gateway::start(config).map_err(|e| format!("bind failed: {e}"))?;
    // Scripts (CI fleet-smoke, fleet_bench) parse this exact line.
    println!("dominogw listening on {}", gateway.addr());
    eprintln!(
        "dominogw: routing across {} backend(s): {}",
        backends.len(),
        backends.join(", ")
    );
    wire_signals(&gateway);
    gateway.wait();
    eprintln!("dominogw: drained and exiting");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("dominogw: {message}");
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}
