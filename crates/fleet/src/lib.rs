//! `dominofleet` — scale-out for the phase-assignment service: a
//! consistent-hash gateway (`dominogw`) over N `dominod` backends, with
//! cache peering so one node's cold run warms the whole fleet.
//!
//! PR 5 made flows servable by one resident `dominod`; this crate makes
//! a *fleet* of them look like one server:
//!
//! * [`hash`] — rendezvous (highest-random-weight) hashing from a job's
//!   content-address to its home backend: identical specs always land on
//!   the same node and its warm cache, and membership churn only moves
//!   the keys that must move.
//! * [`pool`] — the gateway's health-checked view of its backends (one
//!   kept-alive [`domino_serve::ServeClient`] each).
//! * [`gateway`] — the `dominogw` front door: protocol-compatible with
//!   `dominod` (same client, same `dominoc`), relaying outcome bytes
//!   verbatim, rewriting job ids, propagating `429` backpressure, and
//!   failing over deterministically when a backend is unreachable.
//!
//! # Example
//!
//! ```
//! use domino_fleet::{Gateway, GatewayConfig};
//! use domino_serve::{ServeConfig, Server, ServeClient};
//! use domino_engine::JobSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two backends...
//! let a = Server::start(ServeConfig { addr: "127.0.0.1:0".into(), workers: 1, ..Default::default() })?;
//! let b = Server::start(ServeConfig { addr: "127.0.0.1:0".into(), workers: 1, ..Default::default() })?;
//! // ...one gateway.
//! let gw = Gateway::start(GatewayConfig {
//!     addr: "127.0.0.1:0".into(),
//!     backends: vec![a.addr().to_string(), b.addr().to_string()],
//!     ..Default::default()
//! })?;
//!
//! // The gateway speaks the dominod protocol: the same client works.
//! let client = ServeClient::new(gw.addr().to_string());
//! let mut spec = JobSpec::suite("frg1");
//! spec.sim.cycles = 256; // keep the doctest quick
//! let outcome_json = client.run_sync(&spec)?;
//! assert!(outcome_json.starts_with("{\"name\":\"frg1\""));
//!
//! gw.shutdown();
//! a.shutdown();
//! b.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gateway;
pub mod hash;
pub mod pool;

pub use gateway::{
    BackendHealth, Gateway, GatewayConfig, GatewayMetrics, GatewayShutdownHandle, DEFAULT_GW_PORT,
    FAILOVER_RETRY_BUDGET,
};
pub use pool::{Backend, BackendPool, BREAKER_TRIP_THRESHOLD};
