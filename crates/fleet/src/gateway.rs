//! `dominogw`: the fleet gateway. One HTTP front door that routes each
//! submitted job — by its engine cache key (content-address) — to a
//! `dominod` backend chosen by rendezvous hashing, so identical specs
//! always land on the same backend and its warm cache.
//!
//! # Wire contract
//!
//! The gateway speaks the same protocol as `dominod` itself: `dominoc`
//! and [`ServeClient`](domino_serve::ServeClient) work against it
//! unchanged. Responses carrying
//! outcome bytes (`/jobs/:id/result`, `POST /jobs?wait=1`) are relayed
//! **verbatim** — the gateway never re-serializes an outcome, so fleet
//! results stay byte-identical to single-node and local runs (pinned by
//! `tests/gateway_integration.rs`). Job ids are gateway-assigned and
//! rewritten in protocol documents (submit/status replies, event
//! records) so callers never see backend-local ids.
//!
//! # Routing
//!
//! * **Home**: the highest rendezvous score among healthy backends.
//! * **Failover**: connect-refused ⇒ mark the backend down and try the
//!   next backend in score order — deterministic, so every gateway
//!   agrees. Only *connect* failures fail over; once a request has been
//!   sent, an error is reported (a blind resend could double-submit).
//! * **Backpressure**: a backend's `429` is propagated verbatim (with
//!   `Retry-After`) and never failed over — a full home queue means the
//!   fleet should slow down, not migrate load away from the key's cache.
//! * **Cache peering**: before routing a cold submit, the gateway peeks
//!   the home's cache; on a miss it peeks the failover sequence and, if a
//!   peer holds the entry, fills the home's cache first
//!   (`POST /cache/fill/:key`) — one node's cold run warms the fleet.
//!
//! # Threads
//!
//! Like `dominod`, the gateway multiplexes every client connection on
//! one reactor thread ([`domino_serve::front`]): idle kept-alive
//! clients cost a socket each and no thread. Relay work — backend round
//! trips, `?wait=1` long-polls, event-stream re-emission — blocks for
//! its whole backend exchange, so it never runs on the handler pool:
//! each relay gets a detached thread, capped at [`RELAY_CAP`] in
//! flight (beyond that, an honest `503` + `Retry-After`). The handler
//! pool itself only ever executes control endpoints (`/healthz`,
//! `/metrics`, `/shutdown`) and request classification, so health and
//! drain stay responsive no matter how many clients sit in long-polls.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use domino_engine::json::{parse, Json};
use domino_engine::{CircuitSource, EngineError, FlowJob, JobSpec};
use domino_serve::config::{apply_connection_flags, DEFAULT_MAX_CONNECTIONS};
use domino_serve::front::{FrontConfig, FrontHandle, HttpFront, Responder};
use domino_serve::http::Request;
use domino_serve::protocol::{ErrorReply, StatusReply, SubmitReply};
use domino_serve::{ArgTable, ClientError, FailpointCounter, RetryPolicy};

use crate::pool::BackendPool;

/// One backend's health as reported in the gateway's `GET /metrics` —
/// the gateway flavor of the shared metrics schema in
/// [`domino_serve::protocol`].
pub type BackendHealth = domino_serve::protocol::BackendHealthDoc;

/// Point-in-time gateway counters (the `GET /metrics` document) — the
/// gateway flavor of the shared metrics schema in
/// [`domino_serve::protocol`].
pub type GatewayMetrics = domino_serve::protocol::GatewayMetricsDoc;

/// Failover attempts a submission may make beyond its first backend. A
/// budget (rather than "walk the whole ranking") bounds worst-case
/// submit latency on a large fleet that is mostly down.
pub const FAILOVER_RETRY_BUDGET: u32 = 3;

/// Default TCP port for `dominogw` (one above `dominod`'s 7171 block).
pub const DEFAULT_GW_PORT: u16 = 7270;

/// Handler threads of the gateway's front. These only classify requests
/// and answer control endpoints — every backend-blocking relay moves to
/// its own detached thread (see [`RELAY_CAP`]) — so a handful suffices.
const GW_HANDLER_THREADS: usize = 4;

/// Concurrently blocking relays (backend round trips, `?wait=1`
/// long-polls, event streams) the gateway will carry; each occupies one
/// detached, mostly-sleeping thread. Beyond the cap, callers get `503` +
/// `Retry-After` — the same backpressure shape as the reactor's
/// connection cap. Before the reactor front this bound was implicit in
/// thread-per-connection; now it is explicit and survives thousands of
/// *idle* clients costing no thread at all.
pub const RELAY_CAP: usize = 512;

/// Gateway configuration (CLI flags of `dominogw`).
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Listen address, e.g. `127.0.0.1:7270`. Port 0 binds ephemerally.
    pub addr: String,
    /// Backend `dominod` addresses (`host:port`), one per `--backend`.
    pub backends: Vec<String>,
    /// Health-probe interval.
    pub probe_interval: Duration,
    /// Per-connection idle timeout (same state machine as `dominod`).
    pub idle_timeout_ms: u64,
    /// Requests served per connection before a polite close.
    pub max_requests_per_connection: u32,
    /// Concurrently open connections the reactor accepts before
    /// answering further accepts with `503` and an immediate close.
    pub max_connections: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: format!("127.0.0.1:{DEFAULT_GW_PORT}"),
            backends: Vec::new(),
            probe_interval: Duration::from_millis(500),
            idle_timeout_ms: 10_000,
            max_requests_per_connection: 1024,
            max_connections: DEFAULT_MAX_CONNECTIONS,
        }
    }
}

impl GatewayConfig {
    /// The gateway's flag table (see [`domino_serve::config`]): the
    /// single declaration behind both [`GatewayConfig::parse_args`] and
    /// `dominogw --help`. The connection flags are the exact same
    /// declarations `dominod` uses.
    pub fn arg_table() -> ArgTable {
        let table = ArgTable::new("gateway")
            .flag(
                "--addr",
                "<host:port>",
                "bind address [127.0.0.1:7270]; port 0 = ephemeral",
            )
            .flag(
                "--backend",
                "<host:port>",
                "dominod backend; repeat once per fleet node (required)",
            )
            .flag("--probe-ms", "<n>", "health-probe interval [500]");
        domino_serve::config::failpoint_docs(domino_serve::config::connection_flags(table))
    }

    /// Parses `dominogw` CLI flags (`--addr`, repeated `--backend`,
    /// `--probe-ms`, `--idle-ms`, `--max-requests`,
    /// `--max-connections`).
    ///
    /// # Errors
    ///
    /// A rendered usage problem: unknown flag, missing value, no
    /// backends.
    pub fn parse_args(args: &[String]) -> Result<Self, String> {
        let parsed = Self::arg_table().parse(args)?;
        let mut config = GatewayConfig::default();
        parsed.set_string("--addr", &mut config.addr);
        config.backends = parsed.all("--backend");
        if let Some(ms) = parsed.integer::<u64>("--probe-ms")? {
            config.probe_interval = Duration::from_millis(ms.max(1));
        }
        apply_connection_flags(
            &parsed,
            &mut config.idle_timeout_ms,
            &mut config.max_requests_per_connection,
            &mut config.max_connections,
        )?;
        if config.backends.is_empty() {
            return Err("at least one --backend is required".to_string());
        }
        Ok(config)
    }
}

/// Gateway ids are monotonic; the table maps them to `(backend,
/// backend-local id)`. Bounded: the oldest mappings are evicted beyond
/// [`ID_TABLE_CAP`] — matching `dominod`'s own bounded retention of
/// terminal jobs.
const ID_TABLE_CAP: usize = 65_536;

#[derive(Debug, Default)]
struct IdTable {
    next: u64,
    map: BTreeMap<u64, (String, u64)>,
}

impl IdTable {
    fn assign(&mut self, backend: &str, backend_id: u64) -> u64 {
        while self.map.len() >= ID_TABLE_CAP {
            self.map.pop_first();
        }
        self.next += 1;
        self.map
            .insert(self.next, (backend.to_string(), backend_id));
        self.next
    }

    fn lookup(&self, gw_id: u64) -> Option<(String, u64)> {
        self.map.get(&gw_id).cloned()
    }
}

/// Bounded memo of resolved networks keyed by circuit source, so warm
/// resubmissions of the same suite circuit do not regenerate the netlist
/// just to compute a routing key (mirrors `dominod`'s resolve memo).
#[derive(Debug, Default)]
struct KeyMemo {
    map: Mutex<HashMap<String, FlowJob>>,
}

const KEY_MEMO_CAP: usize = 64;

impl KeyMemo {
    fn source_key(source: &CircuitSource) -> Option<String> {
        match source {
            CircuitSource::Suite(name) => Some(format!("suite\u{0}{name}")),
            CircuitSource::BlifInline(text) => Some(format!("blif\u{0}{text}")),
            CircuitSource::BlifPath(_) => None,
        }
    }

    fn routing_key(&self, spec: JobSpec) -> Result<String, EngineError> {
        let Some(memo_key) = Self::source_key(&spec.source) else {
            return Ok(spec.resolve()?.cache_key().to_string());
        };
        if let Some(proto) = self.map.lock().expect("key memo").get(&memo_key) {
            return Ok(FlowJob::new(spec, proto.network.clone())
                .cache_key()
                .to_string());
        }
        let job = spec.resolve()?;
        let key = job.cache_key().to_string();
        let mut map = self.map.lock().expect("key memo");
        if map.len() >= KEY_MEMO_CAP {
            map.clear();
        }
        map.insert(memo_key, job);
        Ok(key)
    }
}

/// A verbatim-relayable reply a coalescing leader captured for its
/// followers: status, optional `Retry-After`, exact body bytes.
type StoredReply = (u16, Option<String>, Vec<u8>);

/// In-flight coalescing for sync (`?wait=1`) submissions: one gate per
/// routing key. The leader holds the gate's lock for the whole backend
/// round trip and stores its reply; duplicates block on the lock and
/// replay the identical bytes instead of re-submitting. A leader that
/// failed stores nothing, so the next waiter simply becomes the new
/// leader and tries again.
///
/// The leader releases the gate *before* its reply goes out: a client
/// that reacts to the reply by re-submitting the same key must get a
/// fresh backend round trip, never a replay off the not-yet-released
/// gate. Only duplicates already blocked on the gate coalesce.
#[derive(Debug, Default)]
struct SyncFlight {
    gates: Mutex<HashMap<String, Arc<Mutex<Option<StoredReply>>>>>,
}

impl SyncFlight {
    fn acquire(&self, key: &str) -> Arc<Mutex<Option<StoredReply>>> {
        Arc::clone(
            self.gates
                .lock()
                .expect("sync flight")
                .entry(key.to_string())
                .or_default(),
        )
    }

    fn release(&self, key: &str) {
        let mut gates = self.gates.lock().expect("sync flight");
        if let Some(gate) = gates.get(key) {
            // 2 = the map's reference + the caller's about-to-drop clone.
            if Arc::strong_count(gate) <= 2 {
                gates.remove(key);
            }
        }
    }
}

#[derive(Debug)]
struct GwShared {
    pool: Arc<BackendPool>,
    ids: Mutex<IdTable>,
    key_memo: KeyMemo,
    retry: RetryPolicy,
    sync_flight: SyncFlight,
    front: FrontHandle,
    addr: SocketAddr,
    started: Instant,
    /// Jobs forwarded to a backend (any reply status).
    routed: AtomicU64,
    /// Backend `429`s propagated to callers.
    rejected: AtomicU64,
    /// Submissions answered by a non-home backend after the home refused
    /// the connection.
    failovers: AtomicU64,
    /// Cold-home submissions warmed from a peer's cache before routing.
    peer_fills: AtomicU64,
    /// Submissions with no reachable backend at all (`503`).
    unroutable: AtomicU64,
    /// Sync submissions answered by replaying an in-flight leader's
    /// reply instead of a backend round trip.
    coalesced: AtomicU64,
    /// Relay threads currently blocking on a backend exchange (bounded
    /// by [`RELAY_CAP`]).
    relays: std::sync::atomic::AtomicUsize,
}

impl GwShared {
    fn is_shutting_down(&self) -> bool {
        self.front.is_draining()
    }

    fn begin_shutdown(&self) {
        // The reactor owns the listener and every connection: one flag
        // flip closes the accept path and starts the drain (no self-
        // connect wake needed — the reactor's waker pipe does it).
        self.front.shutdown();
    }

    /// The `GET /metrics` document: gateway counters, live reactor
    /// counters, per-backend health, failpoint sites.
    fn metrics_doc(&self) -> GatewayMetrics {
        let backends = self
            .pool
            .backends()
            .iter()
            .map(|b| BackendHealth {
                addr: b.addr().to_string(),
                healthy: b.is_healthy(),
                down_transitions: b.down_transitions(),
                breaker: b.breaker_state().to_string(),
            })
            .collect();
        let failpoints = domino_failpoint::snapshot()
            .into_iter()
            .map(|s| FailpointCounter {
                site: s.site,
                mode: s.mode,
                hits: s.hits,
                fires: s.fires,
            })
            .collect();
        GatewayMetrics {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            routed: self.routed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            peer_fills: self.peer_fills.load(Ordering::Relaxed),
            unroutable: self.unroutable.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            reactor: Some(self.front.counters()),
            backends,
            failpoints,
        }
    }
}

/// A running gateway: reactor front + health prober over a backend pool.
#[derive(Debug)]
pub struct Gateway {
    shared: Arc<GwShared>,
    reactor_handle: Option<JoinHandle<io::Result<()>>>,
    prober_handle: Option<JoinHandle<()>>,
}

impl Gateway {
    /// Binds, probes the fleet once (so routing starts with real health
    /// bits), spawns the reactor and the prober, and returns.
    ///
    /// # Errors
    ///
    /// [`io::Error`] when the listen address cannot be bound or the
    /// reactor cannot be set up.
    pub fn start(config: GatewayConfig) -> io::Result<Gateway> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let pool = Arc::new(BackendPool::new(&config.backends));
        pool.probe_once();

        let front = HttpFront::bind(
            listener,
            FrontConfig {
                name: "dominogw",
                idle_timeout: Duration::from_millis(config.idle_timeout_ms.max(1)),
                max_requests: config.max_requests_per_connection.max(1),
                max_connections: config.max_connections.max(1),
                handler_threads: GW_HANDLER_THREADS,
            },
        )?;

        let shared = Arc::new(GwShared {
            pool: Arc::clone(&pool),
            ids: Mutex::new(IdTable::default()),
            key_memo: KeyMemo::default(),
            retry: RetryPolicy::new(FAILOVER_RETRY_BUDGET),
            sync_flight: SyncFlight::default(),
            front: front.handle(),
            addr,
            started: Instant::now(),
            routed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            peer_fills: AtomicU64::new(0),
            unroutable: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            relays: std::sync::atomic::AtomicUsize::new(0),
        });

        let reactor_handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dominogw-reactor".into())
                .spawn(move || {
                    front.run(Arc::new(move |request, responder| {
                        route(&shared, request, responder);
                    }))
                })?
        };

        let prober_shared = Arc::clone(&shared);
        let prober_handle = pool.spawn_prober(config.probe_interval, move || {
            prober_shared.is_shutting_down()
        });

        Ok(Gateway {
            shared,
            reactor_handle: Some(reactor_handle),
            prober_handle: Some(prober_handle),
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The backend pool (for tests and the load harness).
    pub fn pool(&self) -> &Arc<BackendPool> {
        &self.shared.pool
    }

    /// A handle that lets a signal watcher request the drain.
    pub fn shutdown_handle(&self) -> GatewayShutdownHandle {
        GatewayShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Begins the drain and blocks until the gateway has fully stopped.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.join();
    }

    /// Blocks until the gateway exits (a drain requested over the wire or
    /// via [`Gateway::shutdown_handle`]).
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(handle) = self.reactor_handle.take() {
            while !self.shared.is_shutting_down() {
                std::thread::sleep(Duration::from_millis(10));
            }
            // The reactor bounds its own drain (idle connections close
            // immediately, stragglers are force-closed after a grace
            // period), so this join cannot hang forever.
            let _ = handle.join();
        }
        if let Some(handle) = self.prober_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        if !self.shared.is_shutting_down() {
            self.shared.begin_shutdown();
        }
        self.join();
    }
}

/// Lets a signal watcher thread request the gateway drain (the SIGTERM /
/// SIGINT path of `dominogw`).
#[derive(Clone)]
pub struct GatewayShutdownHandle {
    shared: Arc<GwShared>,
}

impl GatewayShutdownHandle {
    /// Requests the drain, exactly like `POST /shutdown`.
    pub fn request_shutdown(&self) {
        self.shared.begin_shutdown();
    }
}

impl std::fmt::Debug for GatewayShutdownHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayShutdownHandle").finish()
    }
}

fn error_reply(responder: Responder, status: u16, message: &str) {
    let body = ErrorReply::new(message).to_json().serialize();
    responder.respond(status, &[], body.as_bytes());
}

/// Releases one [`RELAY_CAP`] slot when a relay thread finishes (or
/// unwinds).
struct RelaySlot(Arc<GwShared>);

impl Drop for RelaySlot {
    fn drop(&mut self) {
        self.0.relays.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs `work` — a relay that may block on a backend for its whole
/// exchange (a `?wait=1` long-poll, an event-stream re-emission, any
/// round trip against a slow backend) — on its own detached thread, so
/// handler-pool threads never block and control endpoints stay
/// responsive. At [`RELAY_CAP`] concurrent relays the caller gets a
/// `503` with `Retry-After` instead of a queue slot.
fn spawn_relay(
    shared: &Arc<GwShared>,
    responder: Responder,
    work: impl FnOnce(Responder) + Send + 'static,
) {
    if shared.relays.fetch_add(1, Ordering::SeqCst) >= RELAY_CAP {
        shared.relays.fetch_sub(1, Ordering::SeqCst);
        let body = ErrorReply::new(format!("relay capacity reached: {RELAY_CAP} in flight"))
            .to_json()
            .serialize();
        responder.respond(503, &[("retry-after", "1")], body.as_bytes());
        return;
    }
    let slot = RelaySlot(Arc::clone(shared));
    // A failed spawn (thread exhaustion) consumes the closure, and the
    // responder with it: the client's connection closes at its idle
    // timeout. There is no better answer once the OS refuses threads —
    // the cap above keeps the gateway far from that cliff.
    let _ = std::thread::Builder::new()
        .name("dominogw-relay".into())
        .spawn(move || {
            let _slot = slot;
            work(responder);
        });
}

/// Splits `/jobs/42[/tail]` into the id and the remainder.
fn job_path(path: &str) -> Option<(u64, &str)> {
    let rest = path.strip_prefix("/jobs/")?;
    let (id, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, tail),
        None => (rest, ""),
    };
    Some((id.parse().ok()?, tail))
}

/// Classifies one request on a handler-pool thread. Control endpoints
/// answer inline (they touch no backend and must stay responsive);
/// everything that talks to a backend moves to a relay thread via
/// [`spawn_relay`].
fn route(shared: &Arc<GwShared>, request: Request, responder: Responder) {
    let method = request.method.clone();
    let path = request.path.clone();
    match (method.as_str(), path.as_str()) {
        ("GET", "/healthz") => {
            let healthy = shared
                .pool
                .backends()
                .iter()
                .filter(|b| b.is_healthy())
                .count();
            let body = Json::obj(vec![
                ("status", Json::Str("ok".into())),
                ("role", Json::Str("gateway".into())),
                ("backends", Json::Num(shared.pool.backends().len() as f64)),
                ("healthy", Json::Num(healthy as f64)),
            ]);
            responder.respond(200, &[], body.serialize().as_bytes());
        }
        ("GET", "/metrics") => {
            let body = shared.metrics_doc().to_json().serialize();
            responder.respond(200, &[], body.as_bytes());
        }
        ("POST", "/shutdown") => {
            let body = Json::obj(vec![("status", Json::Str("shutting-down".into()))]);
            responder.respond_close(200, &[], body.serialize().as_bytes());
            shared.begin_shutdown();
        }
        ("POST", "/jobs") => {
            let shared2 = Arc::clone(shared);
            spawn_relay(shared, responder, move |responder| {
                handle_submit(&request, &shared2, responder);
            });
        }
        _ => match job_path(&path) {
            Some((gw_id, tail @ ("" | "result"))) if method == "GET" => {
                let tail = tail.to_string();
                let shared2 = Arc::clone(shared);
                spawn_relay(shared, responder, move |responder| {
                    handle_job_fetch(&request, &shared2, gw_id, &tail, responder);
                });
            }
            Some((gw_id, "")) if method == "DELETE" => {
                let shared2 = Arc::clone(shared);
                spawn_relay(shared, responder, move |responder| {
                    handle_job_fetch(&request, &shared2, gw_id, "", responder);
                });
            }
            Some((gw_id, "events")) if method == "GET" => {
                let shared2 = Arc::clone(shared);
                spawn_relay(shared, responder, move |responder| {
                    handle_events(&shared2, gw_id, responder);
                });
            }
            Some((_, "" | "result" | "events")) => {
                error_reply(responder, 405, "method not allowed");
            }
            Some(_) | None => {
                error_reply(
                    responder,
                    404,
                    &format!("no such endpoint: {method} {path}"),
                );
            }
        },
    }
}

/// Relays `response` (status, `Retry-After` when present, body verbatim)
/// to the gateway's caller.
fn relay_verbatim(responder: Responder, response: &domino_serve::http::Response) {
    let retry_after = response.header("retry-after").map(str::to_string);
    let extra: Vec<(&str, &str)> = retry_after
        .as_deref()
        .map(|v| vec![("retry-after", v)])
        .unwrap_or_default();
    responder.respond(response.status, &extra, &response.body);
}

/// Replays a captured leader reply (status, optional `Retry-After`,
/// verbatim body) to a caller.
fn replay_stored(responder: Responder, reply: &StoredReply) {
    let (status, retry_after, body) = reply;
    let extra: Vec<(&str, &str)> = retry_after
        .as_deref()
        .map(|v| vec![("retry-after", v)])
        .unwrap_or_default();
    responder.respond(*status, &extra, body);
}

fn handle_submit(request: &Request, shared: &Arc<GwShared>, responder: Responder) {
    if shared.is_shutting_down() {
        return error_reply(responder, 503, "gateway is draining for shutdown");
    }
    // Compute the routing key exactly as the backend will: resolve the
    // spec and take its content-address. An unroutable spec fails here
    // with the same 400 a backend would give.
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return error_reply(responder, 400, "body is not UTF-8");
    };
    let spec = match parse(text)
        .map_err(|e| e.to_string())
        .and_then(|v| JobSpec::from_json(&v).map_err(|e| e.to_string()))
    {
        Ok(spec) => spec,
        Err(e) => return error_reply(responder, 400, &format!("invalid job spec: {e}")),
    };
    let key = match shared.key_memo.routing_key(spec) {
        Ok(key) => key,
        Err(e) => return error_reply(responder, 400, &format!("unresolvable job: {e}")),
    };

    // Only sync submissions coalesce at the gateway: their reply *is*
    // the outcome, so followers can replay the leader's bytes verbatim.
    // Async duplicates each get their own id and dedupe one hop later,
    // at the backend engine's own in-flight gate.
    if !request.wants_wait() {
        submit_routed(request, shared, &key, responder, None);
        return;
    }
    let gate = shared.sync_flight.acquire(&key);
    let mut slot = gate.lock().unwrap_or_else(|p| p.into_inner());
    match slot.clone() {
        Some(reply) => {
            shared.coalesced.fetch_add(1, Ordering::Relaxed);
            replay_stored(responder, &reply);
            drop(slot);
            shared.sync_flight.release(&key);
        }
        None => match submit_routed(request, shared, &key, responder, Some(&mut slot)) {
            // Leader with a captured reply: unlock and release the gate
            // first, then answer — see the gate-ordering note on
            // [`SyncFlight`].
            Some(deferred) => {
                let stored = slot.clone();
                drop(slot);
                shared.sync_flight.release(&key);
                if let Some(reply) = stored {
                    replay_stored(deferred, &reply);
                }
            }
            None => {
                drop(slot);
                shared.sync_flight.release(&key);
            }
        },
    }
}

/// The routing core of a submission: peer-warms the home cache, then
/// walks the failover sequence under the retry budget and each
/// backend's circuit breaker. A sync leader passes `capture` so its
/// verbatim-relayed reply is stored for coalesced followers; when a
/// reply was captured this *returns the responder unanswered* so the
/// caller can release the coalescing gate before replying (see the
/// ordering note on [`SyncFlight`]). On every other path the responder
/// is answered here and `None` comes back.
fn submit_routed(
    request: &Request,
    shared: &Arc<GwShared>,
    key: &str,
    responder: Responder,
    mut capture: Option<&mut Option<StoredReply>>,
) -> Option<Responder> {
    let ranked = shared.pool.ranked(key);
    if ranked.is_empty() {
        shared.unroutable.fetch_add(1, Ordering::Relaxed);
        error_reply(responder, 503, "no healthy backend");
        return None;
    }

    // Cache peering: if the home is cold for this key but a peer is warm,
    // fill the home before routing — the submit below is then answered
    // from the home's cache instead of recomputing. Peering is pure
    // opportunism on the control-plane client (short I/O timeout, see
    // `CONTROL_IO_TIMEOUT`): a home peek that *errors* (as opposed to a
    // confirmed miss) skips peering entirely, and a slow or half-up peer
    // costs the cold path at most the control timeout, never the data
    // plane's 30 s.
    if ranked.len() > 1 {
        if let Ok(None) = ranked[0].control_client().cache_peek(key) {
            for peer in &ranked[1..] {
                if let Ok(Some(bytes)) = peer.control_client().cache_peek(key) {
                    if ranked[0].control_client().cache_fill(key, &bytes).is_ok() {
                        shared.peer_fills.fetch_add(1, Ordering::Relaxed);
                    }
                    break;
                }
            }
        }
    }

    let target = request.target();
    let mut attempts: u32 = 0;
    for backend in ranked.iter() {
        // The retry budget bounds the walk; the breaker skips backends
        // that earned no more traffic (half-open admits one trial).
        if attempts > shared.retry.budget {
            break;
        }
        if !backend.breaker_allows() {
            continue;
        }
        if attempts > 0 {
            // Deterministic exponential backoff between failover hops:
            // a same-instant thundering herd against the runner-up is
            // exactly how one backend's crash topples the next.
            std::thread::sleep(shared.retry.delay(attempts - 1, None));
        }
        let forwarded = if domino_failpoint::should_fire("fleet.gateway.relay") {
            Err(ClientError::Unreachable(
                "failpoint fired: fleet.gateway.relay".to_string(),
            ))
        } else {
            backend
                .client()
                .forward("POST", &target, Some(&request.body))
        };
        attempts += 1;
        match forwarded {
            // Connect refused: the prober will confirm, but routing must
            // not wait for it — mark down and fail over now. Deterministic
            // because the rendezvous order is.
            Err(ClientError::Unreachable(_)) => {
                backend.mark_down();
                backend.record_failure();
                continue;
            }
            // The request may have reached the backend; resending could
            // double-submit, so report instead of failing over.
            Err(e) => {
                backend.record_failure();
                error_reply(responder, 502, &format!("backend {}: {e}", backend.addr()));
                return None;
            }
            Ok(response) => {
                backend.record_success();
                shared.routed.fetch_add(1, Ordering::Relaxed);
                if attempts > 1 {
                    shared.failovers.fetch_add(1, Ordering::Relaxed);
                }
                if response.status == 429 {
                    shared.rejected.fetch_add(1, Ordering::Relaxed);
                }
                // Sync submits answer with outcome bytes (or an error
                // body) — no id to rewrite, relay verbatim. Async submits
                // answer with a SubmitReply whose backend-local id must
                // become a gateway id.
                if request.wants_wait() || !(response.status == 200 || response.status == 202) {
                    if let Some(slot) = capture.take() {
                        *slot = Some((
                            response.status,
                            response.header("retry-after").map(str::to_string),
                            response.body.clone(),
                        ));
                        return Some(responder);
                    }
                    relay_verbatim(responder, &response);
                    return None;
                }
                let reply = response
                    .text()
                    .ok()
                    .and_then(|t| parse(&t).ok())
                    .and_then(|v| SubmitReply::from_json(&v).ok());
                let Some(mut reply) = reply else {
                    error_reply(
                        responder,
                        502,
                        &format!("backend {} sent an undecodable reply", backend.addr()),
                    );
                    return None;
                };
                let gw_id = shared
                    .ids
                    .lock()
                    .expect("id table")
                    .assign(backend.addr(), reply.id);
                reply.id = gw_id;
                responder.respond(response.status, &[], reply.to_json().serialize().as_bytes());
                return None;
            }
        }
    }
    shared.unroutable.fetch_add(1, Ordering::Relaxed);
    error_reply(responder, 503, "no healthy backend");
    None
}

/// Rebuilds the backend-side target for a job sub-path, preserving the
/// query string (`?wait=1` long-polls ride through unchanged).
fn backend_target(backend_id: u64, tail: &str, request: &Request) -> String {
    let mut target = format!("/jobs/{backend_id}");
    if !tail.is_empty() {
        target.push('/');
        target.push_str(tail);
    }
    let query: Vec<String> = request
        .query
        .iter()
        .map(|(k, v)| {
            if v.is_empty() {
                k.clone()
            } else {
                format!("{k}={v}")
            }
        })
        .collect();
    if !query.is_empty() {
        target.push('?');
        target.push_str(&query.join("&"));
    }
    target
}

/// `GET /jobs/:id[/result]` and `DELETE /jobs/:id`: forward to the job's
/// backend, rewriting ids in protocol documents and relaying result
/// bytes verbatim.
fn handle_job_fetch(
    request: &Request,
    shared: &Arc<GwShared>,
    gw_id: u64,
    tail: &str,
    responder: Responder,
) {
    let Some((addr, backend_id)) = shared.ids.lock().expect("id table").lookup(gw_id) else {
        return error_reply(responder, 404, &format!("no such job: {gw_id}"));
    };
    // Status lookups go to the job's backend even when it is marked
    // unhealthy — the mark may be a transient probe failure.
    let Some(backend) = shared
        .pool
        .backends()
        .iter()
        .find(|b| b.addr() == addr)
        .cloned()
    else {
        return error_reply(responder, 404, &format!("no such job: {gw_id}"));
    };
    let target = backend_target(backend_id, tail, request);
    let response = match backend.client().forward(&request.method, &target, None) {
        Ok(response) => {
            backend.record_success();
            response
        }
        Err(ClientError::Unreachable(e)) => {
            backend.mark_down();
            backend.record_failure();
            return error_reply(responder, 502, &format!("backend {addr} unreachable: {e}"));
        }
        Err(e) => {
            backend.record_failure();
            return error_reply(responder, 502, &format!("backend {addr}: {e}"));
        }
    };
    // Result bytes (and error bodies) are relayed verbatim; status
    // documents get their id rewritten back to the gateway's.
    if tail == "result" || response.status != 200 {
        return relay_verbatim(responder, &response);
    }
    let reply = response
        .text()
        .ok()
        .and_then(|t| parse(&t).ok())
        .and_then(|v| StatusReply::from_json(&v).ok());
    let Some(mut reply) = reply else {
        return error_reply(
            responder,
            502,
            &format!("backend {addr} sent an undecodable reply"),
        );
    };
    reply.id = gw_id;
    responder.respond(200, &[], reply.to_json().serialize().as_bytes());
}

/// `GET /jobs/:id/events`: re-emits the backend's event stream with
/// gateway ids. A status probe runs first so an unknown job answers 404
/// instead of an empty 200 stream.
fn handle_events(shared: &Arc<GwShared>, gw_id: u64, responder: Responder) {
    let Some((addr, backend_id)) = shared.ids.lock().expect("id table").lookup(gw_id) else {
        return error_reply(responder, 404, &format!("no such job: {gw_id}"));
    };
    let Some(backend) = shared
        .pool
        .backends()
        .iter()
        .find(|b| b.addr() == addr)
        .cloned()
    else {
        return error_reply(responder, 404, &format!("no such job: {gw_id}"));
    };
    match backend
        .client()
        .forward("GET", &format!("/jobs/{backend_id}"), None)
    {
        Ok(probe) if probe.status == 200 => backend.record_success(),
        Ok(probe) => {
            backend.record_success();
            let body = probe.text().unwrap_or_default();
            responder.respond(probe.status, &[], body.as_bytes());
            return;
        }
        Err(e) => {
            backend.record_failure();
            return error_reply(responder, 502, &format!("backend {addr}: {e}"));
        }
    }
    let mut stream = responder.begin_stream(200);
    let mut relay_failed = false;
    let streamed = backend.client().events(backend_id, |event| {
        if relay_failed {
            return;
        }
        // The caller hanging up mid-stream surfaces as a dead stream
        // handle (the reactor dropped the connection); stop relaying but
        // keep draining the backend stream to completion.
        if !stream.is_live() {
            relay_failed = true;
            return;
        }
        let mut event = event.clone();
        event.id = gw_id;
        let line = format!("{}\n", event.to_json().serialize());
        stream.chunk(line.as_bytes());
    });
    // Write the terminating zero-length chunk only for a stream that
    // ended cleanly AND whose every event reached the caller. A backend
    // stream that died mid-relay must leave the caller's stream visibly
    // truncated — terminating it would forge a complete-looking stream
    // missing its terminal event.
    if streamed.is_ok() && !relay_failed {
        stream.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_table_is_bounded_and_monotonic() {
        let mut table = IdTable::default();
        let first = table.assign("b1", 1);
        assert_eq!(first, 1);
        for i in 0..(ID_TABLE_CAP as u64 + 10) {
            table.assign("b1", i);
        }
        assert!(table.map.len() <= ID_TABLE_CAP);
        // The earliest mapping was evicted, the newest survives.
        assert_eq!(table.lookup(first), None);
        let newest = table.next;
        assert!(table.lookup(newest).is_some());
    }

    #[test]
    fn parse_args_requires_backends() {
        assert!(GatewayConfig::parse_args(&[]).is_err());
        let config = GatewayConfig::parse_args(&[
            "--addr".into(),
            "127.0.0.1:0".into(),
            "--backend".into(),
            "127.0.0.1:7171".into(),
            "--backend".into(),
            "127.0.0.1:7172".into(),
            "--probe-ms".into(),
            "100".into(),
        ])
        .expect("valid flags");
        assert_eq!(config.backends.len(), 2);
        assert_eq!(config.probe_interval, Duration::from_millis(100));
        assert!(GatewayConfig::parse_args(&["--nonesuch".into()]).is_err());
    }

    #[test]
    fn parse_args_accepts_shared_connection_flags() {
        let config = GatewayConfig::parse_args(&[
            "--backend".into(),
            "127.0.0.1:7171".into(),
            "--idle-ms".into(),
            "250".into(),
            "--max-requests".into(),
            "16".into(),
            "--max-connections".into(),
            "32".into(),
        ])
        .expect("valid flags");
        assert_eq!(config.idle_timeout_ms, 250);
        assert_eq!(config.max_requests_per_connection, 16);
        assert_eq!(config.max_connections, 32);
        assert!(GatewayConfig::parse_args(&[
            "--backend".into(),
            "b".into(),
            "--max-connections".into(),
            "0".into(),
        ])
        .is_err());
    }

    #[test]
    fn backend_target_preserves_query() {
        let request = Request {
            method: "GET".into(),
            path: "/jobs/7".into(),
            query: vec![("wait".into(), "1".into())],
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(backend_target(42, "", &request), "/jobs/42?wait=1");
        assert_eq!(
            backend_target(42, "result", &request),
            "/jobs/42/result?wait=1"
        );
    }
}
