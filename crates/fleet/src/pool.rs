//! The gateway's view of its `dominod` backends: one kept-alive
//! [`ServeClient`] per backend plus a health bit maintained by a probe
//! thread and by routing-time connect failures.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use domino_serve::ServeClient;

use crate::hash;

/// I/O bound for control-plane traffic (health probes, cache peek/fill
/// peering): connect, read and write each complete within this or the
/// call fails. Far below the data-plane client's 30 s read timeout — a
/// half-up backend (accepts TCP, never answers) must cost the routing
/// path at most this long, not serialize every cold submission behind a
/// 30 s stall per peer.
pub const CONTROL_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// One `dominod` backend as the gateway sees it.
#[derive(Debug)]
pub struct Backend {
    addr: String,
    client: ServeClient,
    control_client: ServeClient,
    healthy: AtomicBool,
    /// Times this backend was marked down (probe failure or routing-time
    /// connect failure).
    downs: AtomicU64,
}

impl Backend {
    fn new(addr: String) -> Self {
        let client = ServeClient::new(addr.clone());
        let control_client = ServeClient::with_io_timeout(addr.clone(), CONTROL_IO_TIMEOUT);
        Backend {
            addr,
            client,
            control_client,
            // Optimistic start: the first probe (or first routed request)
            // corrects it. Starting pessimistic would reject the whole
            // fleet's traffic until a probe cycle completes.
            healthy: AtomicBool::new(true),
            downs: AtomicU64::new(0),
        }
    }

    /// The backend's address (`host:port`) — also its rendezvous identity.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The kept-alive client for this backend (data plane: forwarded
    /// requests, relayed event streams).
    pub fn client(&self) -> &ServeClient {
        &self.client
    }

    /// The [`CONTROL_IO_TIMEOUT`]-bounded client for this backend
    /// (control plane: health probes, cache peek/fill peering).
    pub fn control_client(&self) -> &ServeClient {
        &self.control_client
    }

    /// Whether the last contact (probe or routed request) succeeded.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    /// Routing-time demotion: a connect failure means the next probe
    /// cycle must confirm recovery before this backend takes traffic.
    pub fn mark_down(&self) {
        if self.healthy.swap(false, Ordering::SeqCst) {
            self.downs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// How many times this backend transitioned healthy → down.
    pub fn down_transitions(&self) -> u64 {
        self.downs.load(Ordering::Relaxed)
    }

    fn probe(&self) {
        match self.control_client.healthz() {
            Ok(_) => {
                self.healthy.store(true, Ordering::SeqCst);
            }
            Err(_) => self.mark_down(),
        }
    }
}

/// The fleet membership: fixed at construction (membership churn within a
/// run is modeled as health, not as add/remove — rendezvous hashing makes
/// the distinction immaterial for placement).
#[derive(Debug)]
pub struct BackendPool {
    backends: Vec<Arc<Backend>>,
}

impl BackendPool {
    /// A pool over `addrs`, all initially presumed healthy.
    pub fn new(addrs: &[String]) -> Self {
        BackendPool {
            backends: addrs
                .iter()
                .map(|a| Arc::new(Backend::new(a.clone())))
                .collect(),
        }
    }

    /// All backends, healthy or not, in construction order.
    pub fn backends(&self) -> &[Arc<Backend>] {
        &self.backends
    }

    /// The *healthy* backends in rendezvous order for `key`: index 0 is
    /// the key's home, the rest the deterministic failover sequence.
    pub fn ranked(&self, key: &str) -> Vec<Arc<Backend>> {
        let names: Vec<&str> = self
            .backends
            .iter()
            .filter(|b| b.is_healthy())
            .map(|b| b.addr())
            .collect();
        hash::rank(&names, key)
            .into_iter()
            .filter_map(|addr| self.backends.iter().find(|b| b.addr() == addr).cloned())
            .collect()
    }

    /// Probes every backend's `/healthz` once, updating health bits.
    pub fn probe_once(&self) {
        for backend in &self.backends {
            backend.probe();
        }
    }

    /// Spawns the health-probe loop; returns its join handle. The loop
    /// exits when `stop` returns `true` (checked once per interval).
    pub fn spawn_prober(
        self: &Arc<Self>,
        interval: Duration,
        stop: impl Fn() -> bool + Send + 'static,
    ) -> std::thread::JoinHandle<()> {
        let pool = Arc::clone(self);
        std::thread::Builder::new()
            .name("gw-prober".into())
            .spawn(move || {
                while !stop() {
                    pool.probe_once();
                    // Sliced sleep so a long probe interval cannot pin
                    // the gateway's shutdown join for that long.
                    let mut remaining = interval;
                    while !stop() && remaining > Duration::ZERO {
                        let nap = remaining.min(Duration::from_millis(25));
                        std::thread::sleep(nap);
                        remaining -= nap;
                    }
                }
            })
            .expect("spawn prober")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranked_skips_unhealthy_backends() {
        let pool = BackendPool::new(&[
            "127.0.0.1:7101".to_string(),
            "127.0.0.1:7102".to_string(),
            "127.0.0.1:7103".to_string(),
        ]);
        let key = "deadbeefdeadbeefdeadbeefdeadbeef";
        let full = pool.ranked(key);
        assert_eq!(full.len(), 3);

        // Knock out the key's home: the runner-up becomes the home and
        // the down backend vanishes from the ranking entirely.
        full[0].mark_down();
        assert_eq!(full[0].down_transitions(), 1);
        let rerouted = pool.ranked(key);
        assert_eq!(rerouted.len(), 2);
        assert_eq!(rerouted[0].addr(), full[1].addr());

        // Double demotion counts once per healthy → down transition.
        full[0].mark_down();
        assert_eq!(full[0].down_transitions(), 1);
    }

    #[test]
    fn probe_against_dead_port_marks_down() {
        // Port 9 (discard) refuses connections on any sane machine.
        let pool = BackendPool::new(&["127.0.0.1:9".to_string()]);
        assert!(pool.backends()[0].is_healthy(), "optimistic start");
        pool.probe_once();
        assert!(!pool.backends()[0].is_healthy());
    }
}
