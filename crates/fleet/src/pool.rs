//! The gateway's view of its `dominod` backends: one kept-alive
//! [`ServeClient`] per backend plus a health bit maintained by a probe
//! thread and by routing-time connect failures.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

use domino_serve::ServeClient;

use crate::hash;

/// I/O bound for control-plane traffic (health probes, cache peek/fill
/// peering): connect, read and write each complete within this or the
/// call fails. Far below the data-plane client's 30 s read timeout — a
/// half-up backend (accepts TCP, never answers) must cost the routing
/// path at most this long, not serialize every cold submission behind a
/// 30 s stall per peer.
pub const CONTROL_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Consecutive data-plane failures that trip a backend's circuit
/// breaker open. Low enough that a wedged backend stops eating failover
/// latency quickly, high enough that one flaky request doesn't.
pub const BREAKER_TRIP_THRESHOLD: u32 = 3;

const BREAKER_CLOSED: u8 = 0;
const BREAKER_OPEN: u8 = 1;
const BREAKER_HALF_OPEN: u8 = 2;

/// One `dominod` backend as the gateway sees it.
#[derive(Debug)]
pub struct Backend {
    addr: String,
    client: ServeClient,
    control_client: ServeClient,
    healthy: AtomicBool,
    /// Times this backend was marked down (probe failure or routing-time
    /// connect failure).
    downs: AtomicU64,
    /// Consecutive data-plane failures since the last success; trips the
    /// breaker at [`BREAKER_TRIP_THRESHOLD`].
    consecutive_failures: AtomicU32,
    /// Circuit-breaker state: closed (normal), open (no traffic until a
    /// probe succeeds), half-open (one trial request allowed).
    breaker: AtomicU8,
}

impl Backend {
    fn new(addr: String) -> Self {
        let client = ServeClient::builder(addr.clone()).build();
        let control_client = ServeClient::builder(addr.clone())
            .io_timeout(CONTROL_IO_TIMEOUT)
            .build();
        Backend {
            addr,
            client,
            control_client,
            // Optimistic start: the first probe (or first routed request)
            // corrects it. Starting pessimistic would reject the whole
            // fleet's traffic until a probe cycle completes.
            healthy: AtomicBool::new(true),
            downs: AtomicU64::new(0),
            consecutive_failures: AtomicU32::new(0),
            breaker: AtomicU8::new(BREAKER_CLOSED),
        }
    }

    /// The backend's address (`host:port`) — also its rendezvous identity.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The kept-alive client for this backend (data plane: forwarded
    /// requests, relayed event streams).
    pub fn client(&self) -> &ServeClient {
        &self.client
    }

    /// The [`CONTROL_IO_TIMEOUT`]-bounded client for this backend
    /// (control plane: health probes, cache peek/fill peering).
    pub fn control_client(&self) -> &ServeClient {
        &self.control_client
    }

    /// Whether the last contact (probe or routed request) succeeded.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    /// Routing-time demotion: a connect failure means the next probe
    /// cycle must confirm recovery before this backend takes traffic.
    pub fn mark_down(&self) {
        if self.healthy.swap(false, Ordering::SeqCst) {
            self.downs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// How many times this backend transitioned healthy → down.
    pub fn down_transitions(&self) -> u64 {
        self.downs.load(Ordering::Relaxed)
    }

    /// A routed (data-plane) request against this backend failed.
    /// [`BREAKER_TRIP_THRESHOLD`] consecutive failures trip the breaker
    /// open; only a successful health probe re-arms it (half-open).
    pub fn record_failure(&self) {
        let failures = self.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
        if failures >= BREAKER_TRIP_THRESHOLD {
            self.breaker.store(BREAKER_OPEN, Ordering::SeqCst);
        }
    }

    /// A routed (data-plane) request against this backend succeeded:
    /// the failure streak resets and the breaker closes (this is how a
    /// half-open trial graduates back to closed).
    pub fn record_success(&self) {
        self.consecutive_failures.store(0, Ordering::SeqCst);
        self.breaker.store(BREAKER_CLOSED, Ordering::SeqCst);
    }

    /// Whether the breaker admits a request right now. Closed always
    /// admits. Open never admits. Half-open admits exactly one caller —
    /// the trial request — and reverts to open until that trial reports
    /// via [`record_success`](Self::record_success) /
    /// [`record_failure`](Self::record_failure).
    pub fn breaker_allows(&self) -> bool {
        match self.breaker.load(Ordering::SeqCst) {
            BREAKER_CLOSED => true,
            BREAKER_HALF_OPEN => self
                .breaker
                .compare_exchange(
                    BREAKER_HALF_OPEN,
                    BREAKER_OPEN,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok(),
            _ => false,
        }
    }

    /// The breaker state as a metrics-friendly label.
    pub fn breaker_state(&self) -> &'static str {
        match self.breaker.load(Ordering::SeqCst) {
            BREAKER_OPEN => "open",
            BREAKER_HALF_OPEN => "half-open",
            _ => "closed",
        }
    }

    fn probe_succeeded(&self) {
        self.healthy.store(true, Ordering::SeqCst);
        // A live /healthz does not prove the data plane works, so an
        // open breaker graduates only to half-open: one trial request
        // decides between closed and open again.
        let _ = self.breaker.compare_exchange(
            BREAKER_OPEN,
            BREAKER_HALF_OPEN,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    fn probe(&self) {
        if domino_failpoint::should_fire("fleet.pool.probe") {
            self.mark_down();
            return;
        }
        match self.control_client.healthz() {
            Ok(_) => self.probe_succeeded(),
            Err(_) => self.mark_down(),
        }
    }
}

/// The fleet membership: fixed at construction (membership churn within a
/// run is modeled as health, not as add/remove — rendezvous hashing makes
/// the distinction immaterial for placement).
#[derive(Debug)]
pub struct BackendPool {
    backends: Vec<Arc<Backend>>,
}

impl BackendPool {
    /// A pool over `addrs`, all initially presumed healthy.
    pub fn new(addrs: &[String]) -> Self {
        BackendPool {
            backends: addrs
                .iter()
                .map(|a| Arc::new(Backend::new(a.clone())))
                .collect(),
        }
    }

    /// All backends, healthy or not, in construction order.
    pub fn backends(&self) -> &[Arc<Backend>] {
        &self.backends
    }

    /// The *eligible* backends in rendezvous order for `key`: healthy,
    /// breaker not open; index 0 is the key's home, the rest the
    /// deterministic failover sequence.
    ///
    /// Fail-open: when *every* backend is filtered out (a probe blackout
    /// marks the whole fleet down at once), the full membership is
    /// ranked instead — the data plane keeps trying real connections
    /// rather than rejecting all traffic on control-plane evidence alone.
    pub fn ranked(&self, key: &str) -> Vec<Arc<Backend>> {
        let mut names: Vec<&str> = self
            .backends
            .iter()
            .filter(|b| b.is_healthy() && b.breaker_state() != "open")
            .map(|b| b.addr())
            .collect();
        if names.is_empty() {
            names = self.backends.iter().map(|b| b.addr()).collect();
        }
        hash::rank(&names, key)
            .into_iter()
            .filter_map(|addr| self.backends.iter().find(|b| b.addr() == addr).cloned())
            .collect()
    }

    /// Probes every backend's `/healthz` once, updating health bits.
    pub fn probe_once(&self) {
        for backend in &self.backends {
            backend.probe();
        }
    }

    /// This backend's deterministic probe-start offset within one probe
    /// interval. Hashing the address (not an index) keeps the offset
    /// stable across restarts and identical on every gateway, while
    /// spreading the fleet's first-probe times across the interval so a
    /// large pool doesn't hammer every `/healthz` at the same instant.
    pub fn probe_stagger(addr: &str, interval: Duration) -> Duration {
        let nanos = interval.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(hash::score(addr, "probe-stagger") % nanos)
    }

    /// Spawns the health-probe loop; returns its join handle. The loop
    /// exits when `stop` returns `true` (checked once per interval).
    /// The first probe of each backend is delayed by its
    /// [`probe_stagger`](Self::probe_stagger) offset; after that first
    /// staggered round, every cycle probes the whole pool.
    pub fn spawn_prober(
        self: &Arc<Self>,
        interval: Duration,
        stop: impl Fn() -> bool + Send + 'static,
    ) -> std::thread::JoinHandle<()> {
        let pool = Arc::clone(self);
        std::thread::Builder::new()
            .name("gw-prober".into())
            .spawn(move || {
                // Staggered first round: probe each backend once its
                // offset within the interval has elapsed.
                let offsets: Vec<Duration> = pool
                    .backends
                    .iter()
                    .map(|b| Self::probe_stagger(b.addr(), interval))
                    .collect();
                let mut probed = vec![false; offsets.len()];
                let mut elapsed = Duration::ZERO;
                while !stop() && probed.contains(&false) {
                    for (i, backend) in pool.backends.iter().enumerate() {
                        if !probed[i] && elapsed >= offsets[i] {
                            backend.probe();
                            probed[i] = true;
                        }
                    }
                    if probed.contains(&false) {
                        let nap = Duration::from_millis(5);
                        std::thread::sleep(nap);
                        elapsed += nap;
                    }
                }
                while !stop() {
                    // Sliced sleep so a long probe interval cannot pin
                    // the gateway's shutdown join for that long.
                    let mut remaining = interval;
                    while !stop() && remaining > Duration::ZERO {
                        let nap = remaining.min(Duration::from_millis(25));
                        std::thread::sleep(nap);
                        remaining -= nap;
                    }
                    if !stop() {
                        pool.probe_once();
                    }
                }
            })
            .expect("spawn prober")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranked_skips_unhealthy_backends() {
        let pool = BackendPool::new(&[
            "127.0.0.1:7101".to_string(),
            "127.0.0.1:7102".to_string(),
            "127.0.0.1:7103".to_string(),
        ]);
        let key = "deadbeefdeadbeefdeadbeefdeadbeef";
        let full = pool.ranked(key);
        assert_eq!(full.len(), 3);

        // Knock out the key's home: the runner-up becomes the home and
        // the down backend vanishes from the ranking entirely.
        full[0].mark_down();
        assert_eq!(full[0].down_transitions(), 1);
        let rerouted = pool.ranked(key);
        assert_eq!(rerouted.len(), 2);
        assert_eq!(rerouted[0].addr(), full[1].addr());

        // Double demotion counts once per healthy → down transition.
        full[0].mark_down();
        assert_eq!(full[0].down_transitions(), 1);
    }

    #[test]
    fn probe_against_dead_port_marks_down() {
        // Port 9 (discard) refuses connections on any sane machine.
        let pool = BackendPool::new(&["127.0.0.1:9".to_string()]);
        assert!(pool.backends()[0].is_healthy(), "optimistic start");
        pool.probe_once();
        assert!(!pool.backends()[0].is_healthy());
    }

    #[test]
    fn breaker_trips_on_consecutive_failures_and_half_open_admits_one_trial() {
        let pool = BackendPool::new(&["127.0.0.1:7101".to_string()]);
        let backend = &pool.backends()[0];
        assert_eq!(backend.breaker_state(), "closed");

        // Below the threshold the breaker stays closed...
        for _ in 0..BREAKER_TRIP_THRESHOLD - 1 {
            backend.record_failure();
            assert_eq!(backend.breaker_state(), "closed");
            assert!(backend.breaker_allows());
        }
        // ...and a success resets the streak entirely.
        backend.record_success();
        for _ in 0..BREAKER_TRIP_THRESHOLD - 1 {
            backend.record_failure();
        }
        assert_eq!(backend.breaker_state(), "closed");

        // The threshold-th consecutive failure trips it open.
        backend.record_failure();
        assert_eq!(backend.breaker_state(), "open");
        assert!(!backend.breaker_allows());

        // A successful probe re-arms to half-open; exactly one caller
        // wins the trial slot, everyone else keeps seeing open.
        backend.probe_succeeded();
        assert_eq!(backend.breaker_state(), "half-open");
        assert!(backend.breaker_allows(), "first caller takes the trial");
        assert!(!backend.breaker_allows(), "second caller is held back");
        assert_eq!(backend.breaker_state(), "open");

        // Trial succeeded: closed again and admitting freely.
        backend.record_success();
        assert_eq!(backend.breaker_state(), "closed");
        assert!(backend.breaker_allows());
    }

    #[test]
    fn ranked_excludes_open_breakers() {
        let pool = BackendPool::new(&["127.0.0.1:7101".to_string(), "127.0.0.1:7102".to_string()]);
        let key = "deadbeefdeadbeefdeadbeefdeadbeef";
        let full = pool.ranked(key);
        for _ in 0..BREAKER_TRIP_THRESHOLD {
            full[0].record_failure();
        }
        let rerouted = pool.ranked(key);
        assert_eq!(rerouted.len(), 1);
        assert_eq!(rerouted[0].addr(), full[1].addr());
    }

    #[test]
    fn ranked_fails_open_when_every_backend_is_filtered() {
        let pool = BackendPool::new(&["127.0.0.1:7101".to_string(), "127.0.0.1:7102".to_string()]);
        for backend in pool.backends() {
            backend.mark_down();
        }
        // A probe blackout must not zero the routing table: with nothing
        // eligible, the full membership is ranked so the data plane can
        // still try real connections.
        let ranked = pool.ranked("deadbeefdeadbeefdeadbeefdeadbeef");
        assert_eq!(ranked.len(), 2);
    }

    #[test]
    fn probe_stagger_is_deterministic_and_within_interval() {
        let interval = Duration::from_secs(1);
        let a = BackendPool::probe_stagger("127.0.0.1:7101", interval);
        let b = BackendPool::probe_stagger("127.0.0.1:7102", interval);
        assert_eq!(a, BackendPool::probe_stagger("127.0.0.1:7101", interval));
        assert_ne!(a, b, "near-identical addresses still spread apart");
        assert!(a < interval && b < interval);
        assert_eq!(
            BackendPool::probe_stagger("127.0.0.1:7101", Duration::ZERO),
            Duration::ZERO
        );
    }
}
