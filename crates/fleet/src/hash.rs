//! Rendezvous (highest-random-weight) hashing: the gateway's routing
//! function from a job's content-address to a backend.
//!
//! Every `(backend, key)` pair gets a pseudo-random 64-bit score; a key
//! is homed on the highest-scoring backend. The property that makes this
//! the right tool for cache affinity: when a backend joins or leaves,
//! the *only* keys that move are the ones homed on (or now won by) that
//! backend — every other key keeps its home, so the fleet's caches stay
//! warm through membership churn. The full descending score order is the
//! deterministic failover sequence: if the winner is down, the runner-up
//! is the same on every gateway that knows the same membership.

/// The pseudo-random score of `backend` for `key`.
///
/// FNV-1a over `backend \0 key` gives a seed that depends on the exact
/// pair; a splitmix64 finalizer then scrambles it so near-identical
/// backend names (`:7101` vs `:7102`) land far apart. Pure arithmetic —
/// no platform- or process-dependent state — so every gateway computes
/// identical placements.
pub fn score(backend: &str, key: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for byte in backend.bytes().chain(std::iter::once(0)).chain(key.bytes()) {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // splitmix64 finalizer.
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Backends ordered by descending score for `key` — index 0 is the key's
/// home, the rest the failover sequence. Ties (astronomically unlikely)
/// break by backend name so the order is still total and deterministic.
pub fn rank<'a>(backends: &[&'a str], key: &str) -> Vec<&'a str> {
    let mut scored: Vec<(u64, &str)> = backends.iter().map(|b| (score(b, key), *b)).collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(b.1)));
    scored.into_iter().map(|(_, b)| b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("{i:032x}")).collect()
    }

    #[test]
    fn ranking_is_deterministic_and_total() {
        let backends = ["127.0.0.1:7101", "127.0.0.1:7102", "127.0.0.1:7103"];
        for key in keys(64) {
            let a = rank(&backends, &key);
            let b = rank(&backends, &key);
            assert_eq!(a, b);
            assert_eq!(a.len(), backends.len());
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, {
                let mut s = backends.to_vec();
                s.sort_unstable();
                s
            });
        }
    }

    #[test]
    fn removing_a_backend_only_moves_its_own_keys() {
        let full = ["n1", "n2", "n3", "n4"];
        let without_n3 = ["n1", "n2", "n4"];
        for key in keys(512) {
            let before = rank(&full, &key);
            let after = rank(&without_n3, &key);
            if before[0] == "n3" {
                // A key homed on the removed backend re-homes to its
                // runner-up — exactly the failover the gateway would take.
                assert_eq!(after[0], before[1]);
            } else {
                assert_eq!(after[0], before[0], "unrelated key moved: {key}");
            }
        }
    }

    #[test]
    fn adding_a_backend_only_claims_keys_it_wins() {
        let before = ["n1", "n2", "n3"];
        let after = ["n1", "n2", "n3", "n4"];
        for key in keys(512) {
            let old = rank(&before, &key)[0];
            let new = rank(&after, &key)[0];
            assert!(new == old || new == "n4", "key moved between survivors");
        }
    }

    #[test]
    fn placement_is_roughly_balanced() {
        let backends = ["n1", "n2", "n3", "n4"];
        let mut counts = std::collections::HashMap::new();
        let n = 4096;
        for key in keys(n) {
            *counts.entry(rank(&backends, &key)[0]).or_insert(0usize) += 1;
        }
        for (&backend, &count) in &counts {
            let share = count as f64 / n as f64;
            assert!(
                (0.15..=0.35).contains(&share),
                "backend {backend} owns {share:.2} of keys"
            );
        }
    }

    #[test]
    fn near_identical_names_score_independently() {
        // Adjacent ports must not produce correlated scores.
        let agree = keys(256)
            .iter()
            .filter(|k| {
                let a = score("127.0.0.1:7101", k);
                let b = score("127.0.0.1:7102", k);
                a > b
            })
            .count();
        assert!(
            (64..=192).contains(&agree),
            "biased pair ordering: {agree}/256"
        );
    }
}
