//! End-to-end acceptance tests for the `dominogw` fleet gateway:
//!
//! * **byte-identity through the gateway** — outcomes fetched via the
//!   gateway are byte-identical to direct single-node runs and to local
//!   serial `FlowEngine` runs, with concurrent clients;
//! * **cache peering** — a key computed on one backend is answered warm
//!   by a *different* backend (which never computed it) after the
//!   gateway's peek-before-route fill;
//! * **deterministic failover** — killing a key's home backend reroutes
//!   the next submission to the rendezvous runner-up;
//! * **backpressure propagation** — a backend's `429` + `Retry-After`
//!   reaches the gateway's caller verbatim and is never failed over;
//! * **id scoping** — callers only ever see gateway-assigned ids, across
//!   submit, status, result, cancel and the event stream.

use std::sync::Arc;

use domino_engine::json::parse;
use domino_engine::{FlowEngine, JobSpec, ResultCache};
use domino_fleet::{hash, Gateway, GatewayConfig, GatewayMetrics};
use domino_serve::{ClientError, EventKind, JobStatus, ServeClient, ServeConfig, Server};

fn public_specs() -> Vec<JobSpec> {
    domino_workloads::public_row_names()
        .iter()
        .map(|name| {
            let mut spec = JobSpec::suite(name);
            spec.sim.cycles = 512;
            spec.sim.warmup = 8;
            spec
        })
        .collect()
}

fn local_outcome_json(spec: &JobSpec) -> String {
    let job = spec.clone().resolve().expect("spec resolves");
    let results = FlowEngine::serial().run_batch(&[job]);
    results[0]
        .outcome()
        .expect("local run completes")
        .to_json()
        .serialize()
}

fn start_backend(cache: Option<Arc<ResultCache>>) -> (Server, String) {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 16,
        cache,
        // Short idle timeout: shutdown drains wait for idle kept-alive
        // connections, and tests open many clients.
        idle_timeout_ms: 1_000,
        ..ServeConfig::default()
    })
    .expect("backend binds");
    let addr = server.addr().to_string();
    (server, addr)
}

fn start_gateway(backends: Vec<String>) -> (Gateway, ServeClient) {
    let gateway = Gateway::start(GatewayConfig {
        addr: "127.0.0.1:0".into(),
        backends,
        probe_interval: std::time::Duration::from_millis(100),
        idle_timeout_ms: 1_000,
        ..GatewayConfig::default()
    })
    .expect("gateway binds");
    let client = ServeClient::new(gateway.addr().to_string());
    (gateway, client)
}

fn gateway_metrics(client: &ServeClient) -> GatewayMetrics {
    let response = client.forward("GET", "/metrics", None).expect("metrics");
    let v = parse(&response.text().expect("utf-8")).expect("json");
    GatewayMetrics::from_json(&v).expect("decodes")
}

/// The routing key the gateway will compute for `spec`.
fn routing_key(spec: &JobSpec) -> String {
    spec.clone()
        .resolve()
        .expect("resolves")
        .cache_key()
        .to_string()
}

/// A variant of `base` (tweaked simulation budget, so a distinct cache
/// key) whose rendezvous home among `backends` is `want`. The search is
/// deterministic: the hash only depends on addresses and the key.
fn spec_homed_on(base: &JobSpec, backends: &[&str], want: &str) -> JobSpec {
    let mut spec = base.clone();
    for cycles in (256..512).step_by(8) {
        spec.sim.cycles = cycles;
        let key = routing_key(&spec);
        if hash::rank(backends, &key)[0] == want {
            return spec;
        }
    }
    panic!("no spec variant homed on {want}");
}

#[test]
fn gateway_outcomes_are_byte_identical_to_direct_runs() {
    let specs = public_specs();
    let expected: Vec<String> = specs.iter().map(local_outcome_json).collect();

    let (backend_a, addr_a) = start_backend(Some(Arc::new(ResultCache::in_memory())));
    let (backend_b, addr_b) = start_backend(Some(Arc::new(ResultCache::in_memory())));
    let (gateway, client) = start_gateway(vec![addr_a.clone(), addr_b.clone()]);

    // Concurrent clients submit the full suite through the gateway.
    let clients = 3;
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let (client, specs, expected) = (client.clone(), &specs, &expected);
            scope.spawn(move || {
                for (spec, want) in specs.iter().zip(expected) {
                    let admitted = client.submit(spec).expect("admitted");
                    let got = client.result(admitted.id, true).expect("job completes");
                    assert_eq!(&got, want, "gateway outcome differs from local run");
                }
            });
        }
    });

    // Sync mode rides through too, byte-identical.
    let sync = client.run_sync(&specs[0]).expect("sync submit");
    assert_eq!(&sync, &expected[0]);

    // Direct single-node check: ask the home backend for the same spec.
    let key = routing_key(&specs[0]);
    let home = hash::rank(&[addr_a.as_str(), addr_b.as_str()], &key)[0];
    let direct = ServeClient::new(home.to_string());
    assert_eq!(direct.run_sync(&specs[0]).expect("direct run"), expected[0]);

    let metrics = gateway_metrics(&client);
    assert_eq!(
        metrics.routed,
        (clients * specs.len()) as u64 + 1,
        "every submission was forwarded"
    );
    assert_eq!(metrics.unroutable, 0);
    assert_eq!(metrics.failovers, 0, "healthy fleet never fails over");

    gateway.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn cache_peering_lets_an_uncomputed_backend_answer_warm() {
    let cache_a = Arc::new(ResultCache::in_memory());
    let cache_b = Arc::new(ResultCache::in_memory());
    let (backend_a, addr_a) = start_backend(Some(Arc::clone(&cache_a)));
    let (backend_b, addr_b) = start_backend(Some(Arc::clone(&cache_b)));

    // A spec homed on B — but computed cold on A, directly, before the
    // gateway ever routes it.
    let spec = spec_homed_on(
        &public_specs()[0],
        &[addr_a.as_str(), addr_b.as_str()],
        &addr_b,
    );
    let direct_a = ServeClient::new(addr_a.clone());
    let computed_on_a = direct_a.run_sync(&spec).expect("cold run on A");
    assert!(cache_a.stats().misses > 0, "A computed it cold");

    // Routed through the gateway, the job homes on B; the peek-fill pass
    // moves A's entry into B before forwarding, so B answers warm without
    // ever running the flow.
    let (gateway, client) = start_gateway(vec![addr_a.clone(), addr_b.clone()]);
    let admitted = client.submit(&spec).expect("admitted");
    let status = client.status(admitted.id, true).expect("terminal");
    assert_eq!(status.status, JobStatus::Completed);
    assert_eq!(status.cached, Some(true), "B answered from cache");
    let via_gateway = client.result(admitted.id, false).expect("stored");
    assert_eq!(via_gateway, computed_on_a, "peer-warmed bytes identical");

    let b_stats = cache_b.stats();
    assert_eq!(b_stats.misses, 0, "B never computed anything");
    assert!(b_stats.stores >= 1, "B holds the peered entry");
    let metrics = gateway_metrics(&client);
    assert_eq!(metrics.peer_fills, 1, "exactly one peek-fill");

    gateway.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn killing_a_backend_reroutes_to_the_rendezvous_runner_up() {
    let (backend_a, addr_a) = start_backend(Some(Arc::new(ResultCache::in_memory())));
    let (backend_b, addr_b) = start_backend(Some(Arc::new(ResultCache::in_memory())));
    let backends = [addr_a.as_str(), addr_b.as_str()];

    let spec = spec_homed_on(&public_specs()[0], &backends, &addr_b);
    let expected = local_outcome_json(&spec);
    let key = routing_key(&spec);
    assert_eq!(
        hash::rank(&backends, &key),
        vec![addr_b.as_str(), addr_a.as_str()]
    );

    // Long probe interval: the *routing path* must discover the death,
    // not the prober.
    let gateway = Gateway::start(GatewayConfig {
        addr: "127.0.0.1:0".into(),
        backends: vec![addr_a.clone(), addr_b.clone()],
        probe_interval: std::time::Duration::from_secs(3600),
        idle_timeout_ms: 1_000,
        ..GatewayConfig::default()
    })
    .expect("gateway binds");
    let client = ServeClient::new(gateway.addr().to_string());

    // Kill the home backend, then submit: connect-refused fails over to
    // the runner-up and the job still completes with identical bytes.
    backend_b.shutdown();
    let got = client.run_sync(&spec).expect("failover run");
    assert_eq!(got, expected, "failover preserved byte-identity");

    let metrics = gateway_metrics(&client);
    assert_eq!(metrics.failovers, 1);
    let b_entry = metrics
        .backends
        .iter()
        .find(|b| b.addr == addr_b)
        .expect("B is listed");
    assert!(!b_entry.healthy, "B is marked down");
    assert_eq!(b_entry.down_transitions, 1, "one down transition");

    // Subsequent submissions route straight to A — no more failovers.
    let again = client.run_sync(&spec).expect("rerouted run");
    assert_eq!(again, expected);
    assert_eq!(gateway_metrics(&client).failovers, 1);

    gateway.shutdown();
    backend_a.shutdown();
}

#[test]
fn backend_backpressure_reaches_the_caller_verbatim() {
    // One worker, one queue slot, no cache: easy to overflow.
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 1,
        cache: None,
        ..ServeConfig::default()
    })
    .expect("backend binds");
    let (gateway, client) = start_gateway(vec![server.addr().to_string()]);

    let mut slow = JobSpec::suite("apex7");
    slow.name = "slowpoke".into();
    slow.sim.cycles = 1 << 20;
    let running = client.submit(&slow).expect("admitted");
    loop {
        let status = client.status(running.id, false).expect("known job");
        if status.status == JobStatus::Running {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let mut queued = public_specs().remove(1);
    queued.name = "queued".into();
    let queued = client.submit(&queued).expect("fits the queue");

    // The backend's 429 + Retry-After must reach us unchanged, and the
    // gateway must not "helpfully" retry it elsewhere.
    match client.submit(&public_specs()[0]) {
        Err(ClientError::Api {
            status: 429,
            retry_after,
            ..
        }) => assert_eq!(retry_after, Some(1), "Retry-After propagated"),
        other => panic!("expected 429 through the gateway, got {other:?}"),
    }
    let metrics = gateway_metrics(&client);
    assert_eq!(metrics.rejected, 1);
    assert_eq!(metrics.failovers, 0, "backpressure is never failed over");

    // Cancelling through the gateway frees the slot (gateway-scoped id).
    let cancelled = client.cancel(queued.id).expect("known job");
    assert_eq!(cancelled.status, JobStatus::Cancelled);
    assert_eq!(cancelled.id, queued.id, "reply carries the gateway id");
    client.cancel(running.id).expect("stop the slow job");

    gateway.shutdown();
    server.shutdown();
}

#[test]
fn job_ids_and_event_streams_are_gateway_scoped() {
    let (backend_a, addr_a) = start_backend(None);
    let (backend_b, addr_b) = start_backend(None);
    let (gateway, client) = start_gateway(vec![addr_a, addr_b]);

    // Submit several jobs so gateway ids and backend-local ids diverge
    // (two backends each assign their own 1, 2, ... sequence).
    let mut spec = public_specs().swap_remove(0);
    spec.sim.cycles = 256;
    let ids: Vec<u64> = (0..4)
        .map(|i| {
            let mut spec = spec.clone();
            spec.sim.cycles = 256 + i * 8; // distinct keys, both backends used
            client.submit(&spec).expect("admitted").id
        })
        .collect();
    let mut unique = ids.clone();
    unique.dedup();
    assert_eq!(unique, ids, "gateway ids are strictly increasing");

    for &id in &ids {
        let status = client.status(id, true).expect("terminal");
        assert_eq!(status.id, id, "status carries the gateway id");
        assert_eq!(status.status, JobStatus::Completed);
        client.result(id, false).expect("result by gateway id");
    }

    // The event stream is re-emitted with the gateway's id on every line.
    let mut spec = spec.clone();
    spec.sim.cycles = 300;
    let id = client.submit(&spec).expect("admitted").id;
    let events = client.events(id, |_| {}).expect("stream completes");
    assert!(!events.is_empty());
    assert!(events.iter().all(|e| e.id == id), "all events rewritten");
    assert_eq!(events.last().map(|e| e.kind), Some(EventKind::Finished));

    // An id the gateway never assigned is 404, even though some backend
    // does have a job numbered 1.
    match client.status(999, false) {
        Err(ClientError::Api { status: 404, .. }) => {}
        other => panic!("expected 404 for a foreign id, got {other:?}"),
    }

    gateway.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

/// A backend whose event stream dies mid-relay must leave the gateway's
/// caller with a visibly *truncated* stream (an I/O error) — never a
/// well-formed, terminated stream missing its terminal event. Uses a
/// scripted fake backend so the mid-stream death is deterministic.
#[test]
fn truncated_backend_event_stream_is_not_forged_complete() {
    use domino_serve::http::{ChunkedWriter, HttpConnection, NextRequest};
    use domino_serve::{EventRecord, StatusReply, SubmitReply};
    use std::net::TcpListener;

    let listener = TcpListener::bind("127.0.0.1:0").expect("fake backend binds");
    let addr = listener.local_addr().expect("addr").to_string();
    let spec = {
        let mut spec = public_specs().swap_remove(0);
        spec.sim.cycles = 256;
        spec
    };
    let key = routing_key(&spec);

    // The scripted backend: health and submit answer normally; the
    // status probe reports the job running; the event stream emits one
    // event and then dies without the chunked terminator.
    std::thread::spawn(move || loop {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        let key = key.clone();
        std::thread::spawn(move || {
            let mut conn = HttpConnection::new(stream);
            while let Ok(NextRequest::Request(request)) = conn.next_request() {
                match (request.method.as_str(), request.path.as_str()) {
                    ("POST", "/jobs") => {
                        let reply = SubmitReply {
                            id: 7,
                            name: "fake".into(),
                            key: key.clone(),
                            status: JobStatus::Queued,
                            queue_depth: 1,
                        };
                        let body = reply.to_json().serialize();
                        conn.write_response(202, &[], body.as_bytes(), true)
                            .expect("submit reply");
                    }
                    ("GET", "/jobs/7") => {
                        let reply = StatusReply {
                            id: 7,
                            name: "fake".into(),
                            key: key.clone(),
                            status: JobStatus::Running,
                            cached: None,
                            queue_ms: Some(0),
                            exec_ms: None,
                            error: None,
                            outcome: None,
                        };
                        let body = reply.to_json().serialize();
                        conn.write_response(200, &[], body.as_bytes(), true)
                            .expect("status reply");
                    }
                    ("GET", "/jobs/7/events") => {
                        let record = EventRecord {
                            seq: 0,
                            id: 7,
                            kind: EventKind::Queued,
                            name: "fake".into(),
                            cached: None,
                            elapsed_ms: None,
                            error: None,
                        };
                        let line = format!("{}\n", record.to_json().serialize());
                        let mut writer =
                            ChunkedWriter::begin(conn.stream_mut(), 200).expect("chunked head");
                        writer.chunk(line.as_bytes()).expect("one event");
                        // Die mid-stream: no terminating chunk.
                        return;
                    }
                    // Health probes and anything else.
                    _ => {
                        conn.write_response(200, &[], b"{\"status\":\"ok\"}", true)
                            .expect("health reply");
                    }
                }
            }
        });
    });

    let (gateway, client) = start_gateway(vec![addr]);
    let id = client.submit(&spec).expect("admitted through gateway").id;
    match client.events(id, |_| {}) {
        Err(ClientError::Io(_)) => {}
        other => panic!("a truncated backend stream must surface as an I/O error, got {other:?}"),
    }
    gateway.shutdown();
}
