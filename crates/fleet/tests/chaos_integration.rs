//! Chaos acceptance tests: a real multi-process fleet driven through
//! seeded failpoint schedules, pinning that recovery is *byte-identical*
//! to fault-free runs.
//!
//! * **crash consistency** — a backend killed between its cache temp
//!   write and the rename leaves no partial entry; the restarted process
//!   sweeps the orphan temp and recomputes identical bytes;
//! * **request coalescing** — duplicate in-flight submissions of one
//!   cache key compute exactly once, at both `dominod` (engine
//!   single-flight) and `dominogw` (sync-submit coalescing);
//! * **fail-open routing** — a probe blackout (every probe failing by
//!   injection) must not take down the data plane;
//! * **deterministic failover** — an injected relay fault fails over to
//!   the rendezvous runner-up with identical bytes;
//! * **fault surfacing** — a `once` schedule fires exactly once and the
//!   fleet is clean afterwards, with hit counts visible in `/metrics`.
//!
//! Backends are subprocesses of this test binary itself (the hidden
//! [`chaos_backend_helper`] below, selected via `DOMINO_CHAOS_ROLE`) —
//! `cargo test -p domino-fleet` does not build `dominod`, but it always
//! builds this binary and `dominogw`.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use domino_engine::json::parse;
use domino_engine::{FlowEngine, JobSpec, ResultCache};
use domino_fleet::GatewayMetrics;
use domino_serve::{ServeClient, ServeConfig, Server};

/// Exit code `engine.cache.crash_rename` kills the process with.
const CRASH_RENAME_EXIT: i32 = 86;

/// Subprocess role: when `DOMINO_CHAOS_ROLE=backend`, this "test" is a
/// `dominod`-equivalent server process (same `Server`, same engine, same
/// on-disk cache) that serves until `POST /shutdown` or a kill. In a
/// normal test run the env var is absent and this is a no-op.
#[test]
fn chaos_backend_helper() {
    if std::env::var("DOMINO_CHAOS_ROLE").as_deref() != Ok("backend") {
        return;
    }
    let cache_dir = std::env::var("DOMINO_CHAOS_CACHE").expect("DOMINO_CHAOS_CACHE is set");
    let cache = Arc::new(ResultCache::on_disk(cache_dir).expect("cache dir opens"));
    let mut server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 16,
        cache: Some(cache),
        idle_timeout_ms: 1_000,
        ..ServeConfig::default()
    })
    .expect("backend binds");
    // The parent parses this exact line for the ephemeral port.
    println!("dominod listening on {}", server.addr());
    server.wait();
}

/// A child process that is killed (not leaked) however the test exits.
struct Proc(Child);

impl Proc {
    fn wait_code(mut self) -> Option<i32> {
        let status = self.0.wait().expect("child reaped");
        status.code()
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Reads the child's stdout until the `<name> listening on <addr>`
/// marker (a *substring* search — the backend helper's line is prefixed
/// by libtest's own `test ... ` chatter), returns the addr, and keeps
/// draining the pipe in the background.
fn await_listening(child: &mut Child, marker: &str) -> String {
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).expect("child stdout readable") == 0 {
            panic!("child exited before printing '{marker}'");
        }
        if let Some(at) = line.find(marker).map(|at| at + marker.len()) {
            let rest = &line[at..];
            let addr = rest.trim().to_string();
            std::thread::spawn(move || {
                let mut sink = String::new();
                while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
                    sink.clear();
                }
            });
            return addr;
        }
    }
}

/// Spawns a backend subprocess (self-exec of this test binary in its
/// `chaos_backend_helper` role) with an optional failpoint schedule.
fn spawn_backend(cache_dir: &Path, failpoints: Option<(&str, u64)>) -> (Proc, String) {
    let exe = std::env::current_exe().expect("own path");
    let mut cmd = Command::new(exe);
    cmd.args([
        "chaos_backend_helper",
        "--exact",
        "--nocapture",
        "--test-threads=1",
    ])
    .env("DOMINO_CHAOS_ROLE", "backend")
    .env("DOMINO_CHAOS_CACHE", cache_dir)
    .env_remove("DOMINO_FAILPOINTS")
    .env_remove("DOMINO_FAILPOINT_SEED")
    .stdout(Stdio::piped())
    .stderr(Stdio::null());
    if let Some((spec, seed)) = failpoints {
        cmd.env("DOMINO_FAILPOINTS", spec)
            .env("DOMINO_FAILPOINT_SEED", seed.to_string());
    }
    let mut child = cmd.spawn().expect("spawn backend subprocess");
    let addr = await_listening(&mut child, "dominod listening on ");
    (Proc(child), addr)
}

/// Spawns the real `dominogw` binary over `backends`, with an optional
/// failpoint schedule passed via the CLI flags under test.
fn spawn_gateway(
    backends: &[String],
    failpoints: Option<(&str, u64)>,
    probe_ms: u64,
) -> (Proc, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dominogw"));
    cmd.args(["--addr", "127.0.0.1:0", "--idle-ms", "1000"])
        .args(["--probe-ms", &probe_ms.to_string()])
        .env_remove("DOMINO_FAILPOINTS")
        .env_remove("DOMINO_FAILPOINT_SEED")
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for backend in backends {
        cmd.args(["--backend", backend]);
    }
    if let Some((spec, seed)) = failpoints {
        cmd.args(["--failpoints", spec])
            .args(["--failpoint-seed", &seed.to_string()]);
    }
    let mut child = cmd.spawn().expect("spawn dominogw");
    let addr = await_listening(&mut child, "dominogw listening on ");
    (Proc(child), addr)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dominolp-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn chaos_spec(cycles: usize) -> JobSpec {
    let mut spec = JobSpec::suite(domino_workloads::public_row_names()[0]);
    spec.sim.cycles = cycles;
    spec.sim.warmup = 8;
    spec
}

fn local_outcome_json(spec: &JobSpec) -> String {
    let job = spec.clone().resolve().expect("spec resolves");
    let results = FlowEngine::serial().run_batch(&[job]);
    results[0]
        .outcome()
        .expect("local run completes")
        .to_json()
        .serialize()
}

fn gateway_metrics(client: &ServeClient) -> GatewayMetrics {
    let response = client.forward("GET", "/metrics", None).expect("metrics");
    let v = parse(&response.text().expect("utf-8")).expect("json");
    GatewayMetrics::from_json(&v).expect("decodes")
}

fn disk_entries(dir: &Path) -> (Vec<String>, Vec<String>) {
    let mut entries = Vec::new();
    let mut temps = Vec::new();
    for entry in std::fs::read_dir(dir).expect("cache dir lists") {
        let entry = entry.expect("dir entry");
        if !entry.file_type().expect("file type").is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.contains(".tmp") {
            temps.push(name);
        } else {
            entries.push(name);
        }
    }
    (entries, temps)
}

/// Satellite 3 + tentpole (c): a backend killed deterministically between
/// its cache temp write and the publishing rename leaves a consistent
/// cache — no partial entry, and the orphan temp is swept on restart —
/// and the recomputed outcome is byte-identical.
#[test]
fn kill_mid_cache_write_leaves_consistent_cache_and_recovers() {
    let spec = chaos_spec(384);
    let expected = local_outcome_json(&spec);
    let cache_dir = temp_dir("crash-rename");

    let (backend, addr) = spawn_backend(&cache_dir, Some(("engine.cache.crash_rename=once", 0)));
    let client = ServeClient::new(addr);
    // The process dies mid-request (after the temp write, before the
    // rename), so the caller sees a connection failure, not bytes.
    client
        .run_sync(&spec)
        .expect_err("the injected crash cuts the connection");
    assert_eq!(
        backend.wait_code(),
        Some(CRASH_RENAME_EXIT),
        "the failpoint's distinctive exit code proves the injected kill"
    );

    // Crash consistency on disk: the entry was never published, only an
    // orphan temp remains.
    let (entries, temps) = disk_entries(&cache_dir);
    assert!(
        entries.is_empty(),
        "no partial entry may be visible: {entries:?}"
    );
    assert!(!temps.is_empty(), "the interrupted temp write is on disk");

    // Restart on the same cache dir: the open sweeps the orphan...
    let (backend, addr) = spawn_backend(&cache_dir, None);
    let (entries, temps) = disk_entries(&cache_dir);
    assert!(temps.is_empty(), "restart swept the orphan temp: {temps:?}");
    assert!(entries.is_empty());

    // ...and the recomputation is byte-identical to a fault-free run.
    let client = ServeClient::new(addr);
    let got = client.run_sync(&spec).expect("recovered run completes");
    assert_eq!(got, expected, "recovery is byte-identical");
    let (entries, _) = disk_entries(&cache_dir);
    assert_eq!(entries.len(), 1, "the recomputed entry is published");
    client.shutdown().expect("graceful drain");
    assert_eq!(backend.wait_code(), Some(0));
}

/// Tentpole (d), `dominod` half: duplicate in-flight submissions of one
/// cache key share a single engine computation (the cache counts exactly
/// one miss and one store) and every caller gets identical bytes.
#[test]
fn duplicate_submissions_coalesce_at_backend_engine() {
    // A longer simulation keeps the leader's computation in flight while
    // the duplicates arrive, so the coalescing is actually exercised.
    let spec = chaos_spec(16_384);
    let expected = local_outcome_json(&spec);
    let cache_dir = temp_dir("backend-coalesce");
    let (backend, addr) = spawn_backend(&cache_dir, None);
    let client = ServeClient::new(addr);

    let outcomes: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let client = client.clone();
                let spec = spec.clone();
                scope.spawn(move || client.run_sync(&spec).expect("duplicate completes"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for got in &outcomes {
        assert_eq!(got, &expected, "every duplicate got identical bytes");
    }

    let metrics = client.metrics().expect("metrics");
    let cache = metrics.cache.expect("backend runs cached");
    assert_eq!(cache.misses, 1, "the flow was computed exactly once");
    assert_eq!(cache.stores, 1, "and stored exactly once");
    assert!(cache.hits() >= 2, "the duplicates were answered warm");
    client.shutdown().expect("graceful drain");
    assert_eq!(backend.wait_code(), Some(0));
}

/// Tentpole (d), `dominogw` half: duplicate in-flight sync submissions
/// of one routing key collapse onto the leader's backend round trip —
/// the gateway replays the leader's exact bytes and the fleet computes
/// the flow exactly once.
#[test]
fn duplicate_sync_submissions_coalesce_at_gateway_and_compute_once() {
    // A longer simulation keeps the leader's round trip in flight while
    // the duplicates arrive, so the coalescing is actually exercised.
    let spec = chaos_spec(16_400);
    let expected = local_outcome_json(&spec);
    let dir_a = temp_dir("gw-coalesce-a");
    let dir_b = temp_dir("gw-coalesce-b");
    let (backend_a, addr_a) = spawn_backend(&dir_a, None);
    let (backend_b, addr_b) = spawn_backend(&dir_b, None);
    let (gateway, gw_addr) = spawn_gateway(&[addr_a.clone(), addr_b.clone()], None, 100);
    let client = ServeClient::new(gw_addr);

    let outcomes: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let client = client.clone();
                let spec = spec.clone();
                scope.spawn(move || client.run_sync(&spec).expect("duplicate completes"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for got in &outcomes {
        assert_eq!(got, &expected, "every duplicate got identical bytes");
    }

    let metrics = gateway_metrics(&client);
    assert!(
        metrics.coalesced >= 1,
        "concurrent duplicates coalesced at the gateway (got {})",
        metrics.coalesced
    );
    // Fleet-wide, the flow ran once: summed over both backends, exactly
    // one miss and one store.
    let (mut misses, mut stores) = (0, 0);
    for addr in [&addr_a, &addr_b] {
        let cache = ServeClient::new(addr.clone())
            .metrics()
            .expect("backend metrics")
            .cache
            .expect("backend runs cached");
        misses += cache.misses;
        stores += cache.stores;
    }
    assert_eq!(misses, 1, "the fleet computed the flow exactly once");
    assert_eq!(stores, 1);

    client.shutdown().expect("gateway drains");
    drop(gateway);
    for (backend, addr) in [(backend_a, addr_a), (backend_b, addr_b)] {
        ServeClient::new(addr).shutdown().expect("backend drains");
        assert_eq!(backend.wait_code(), Some(0));
    }
}

/// Tentpole (b) fail-open: a probe blackout — every health probe failing
/// by injection, the whole fleet marked down — must not take down the
/// data plane. Submissions keep flowing (fail-open ranking) and the
/// injected schedule is visible in the gateway's `/metrics`.
#[test]
fn probe_blackout_fails_open_and_reports_failpoint_hits() {
    let spec = chaos_spec(408);
    let expected = local_outcome_json(&spec);
    let dir_a = temp_dir("blackout-a");
    let dir_b = temp_dir("blackout-b");
    let (_backend_a, addr_a) = spawn_backend(&dir_a, None);
    let (_backend_b, addr_b) = spawn_backend(&dir_b, None);
    let (_gateway, gw_addr) = spawn_gateway(
        &[addr_a, addr_b],
        Some(("fleet.pool.probe=every(1)", 11)),
        50,
    );
    let client = ServeClient::new(gw_addr);

    let got = client.run_sync(&spec).expect("blackout run completes");
    assert_eq!(got, expected, "fail-open routing preserved byte-identity");

    let metrics = gateway_metrics(&client);
    assert_eq!(metrics.unroutable, 0, "the data plane never went dark");
    assert!(metrics.routed >= 1);
    assert!(
        metrics.backends.iter().all(|b| !b.healthy),
        "every probe was failed by injection: {:?}",
        metrics.backends
    );
    let probe_site = metrics
        .failpoints
        .iter()
        .find(|f| f.site == "fleet.pool.probe")
        .expect("the schedule is visible in /metrics");
    assert!(probe_site.fires >= 2, "probes kept firing: {probe_site:?}");
    assert_eq!(probe_site.mode, "every(1)");
}

/// Tentpole failover determinism: an injected relay fault on the home
/// attempt fails over to the rendezvous runner-up, with the retry
/// consumed from the budget, the fault counted in `/metrics`, and the
/// outcome byte-identical.
#[test]
fn relay_fault_fails_over_byte_identical() {
    let spec = chaos_spec(416);
    let expected = local_outcome_json(&spec);
    let dir_a = temp_dir("relay-a");
    let dir_b = temp_dir("relay-b");
    let (_backend_a, addr_a) = spawn_backend(&dir_a, None);
    let (_backend_b, addr_b) = spawn_backend(&dir_b, None);
    let (_gateway, gw_addr) = spawn_gateway(
        &[addr_a, addr_b],
        Some(("fleet.gateway.relay=once", 3)),
        100,
    );
    let client = ServeClient::new(gw_addr);

    let got = client.run_sync(&spec).expect("failover run completes");
    assert_eq!(got, expected, "failover preserved byte-identity");

    let metrics = gateway_metrics(&client);
    assert_eq!(metrics.failovers, 1, "exactly one failover hop");
    let relay_site = metrics
        .failpoints
        .iter()
        .find(|f| f.site == "fleet.gateway.relay")
        .expect("the schedule is visible in /metrics");
    assert_eq!(relay_site.fires, 1, "`once` fired exactly once");

    // The schedule is spent: the next submission relays cleanly with no
    // further failovers.
    let again = client.run_sync(&spec).expect("clean run");
    assert_eq!(again, expected);
    assert_eq!(gateway_metrics(&client).failovers, 1);
}

/// A `once` schedule at a backend's connection-read boundary fires
/// exactly once — the first caller sees a connection failure, every
/// later request is clean — and the site's counters surface in the
/// backend's `/metrics`.
#[test]
fn injected_read_fault_fires_exactly_once_then_clears() {
    let spec = chaos_spec(424);
    let expected = local_outcome_json(&spec);
    let cache_dir = temp_dir("read-fault");
    let (backend, addr) = spawn_backend(&cache_dir, Some(("serve.http.read=once", 5)));
    let client = ServeClient::new(addr);

    client
        .run_sync(&spec)
        .expect_err("the injected read fault cuts the first request");
    let got = client.run_sync(&spec).expect("second request is clean");
    assert_eq!(got, expected, "recovery is byte-identical");

    let metrics = client.metrics().expect("metrics");
    let read_site = metrics
        .failpoints
        .iter()
        .find(|f| f.site == "serve.http.read")
        .expect("the schedule is visible in /metrics");
    assert_eq!(read_site.fires, 1, "`once` fired exactly once");
    assert!(read_site.hits >= 2, "later reads were evaluated and passed");
    client.shutdown().expect("graceful drain");
    assert_eq!(backend.wait_code(), Some(0));
}
