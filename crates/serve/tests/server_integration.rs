//! End-to-end acceptance tests for the `dominod` wire protocol:
//!
//! * **determinism across the wire** — for any spec, the outcome JSON
//!   fetched from the server is byte-identical to a local serial
//!   `FlowEngine` run (what `dominoc run --jsonl` emits), cold or warm
//!   cache, with many concurrent clients and workers;
//! * **warm requests recompute nothing** — a second wave of identical
//!   submissions is answered entirely by the shared cache: the hit
//!   counter delta equals the request count and the miss counter is flat;
//! * **backpressure** — a full admission queue answers `429` +
//!   `Retry-After` while every *admitted* job still reaches a terminal
//!   state (nothing is silently dropped), and cancelling a queued job
//!   frees its slot;
//! * **event streams** — the chunked `/jobs/:id/events` feed delivers the
//!   dense `queued → started → finished` sequence and terminates;
//! * **graceful shutdown** — `POST /shutdown` drains admitted jobs before
//!   the workers exit, and the HTTP surface goes away afterwards.

use std::io::Write;
use std::sync::Arc;

use domino_engine::{FlowEngine, JobSpec, ResultCache};
use domino_serve::{ClientError, EventKind, JobStatus, ServeClient, ServeConfig, Server};

/// The public-suite specs used throughout, with short simulations so the
/// debug-profile tests stay quick. Identical specs are what byte-identity
/// is claimed over.
fn public_specs() -> Vec<JobSpec> {
    domino_workloads::public_row_names()
        .iter()
        .map(|name| {
            let mut spec = JobSpec::suite(name);
            spec.sim.cycles = 512;
            spec.sim.warmup = 8;
            spec
        })
        .collect()
}

/// A spec that keeps a debug-profile worker busy for a while (large
/// simulation budget, adaptive stop disabled by default).
fn slow_spec() -> JobSpec {
    let mut spec = JobSpec::suite("apex7");
    spec.name = "slowpoke".to_string();
    spec.sim.cycles = 65_536;
    spec
}

/// The reference bytes: what `dominoc run --jsonl` writes for `spec`.
fn local_outcome_json(spec: &JobSpec) -> String {
    let job = spec.clone().resolve().expect("spec resolves");
    let results = FlowEngine::serial().run_batch(&[job]);
    results[0]
        .outcome()
        .expect("local run completes")
        .to_json()
        .serialize()
}

fn start_server(config: ServeConfig) -> (Server, ServeClient) {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("ephemeral bind");
    let client = ServeClient::new(server.addr().to_string());
    (server, client)
}

#[test]
fn concurrent_submissions_are_byte_identical_to_local_runs() {
    let specs = public_specs();
    let expected: Vec<String> = specs.iter().map(local_outcome_json).collect();

    let cache = Arc::new(ResultCache::in_memory());
    let (server, client) = start_server(ServeConfig {
        workers: 4,
        queue_capacity: 64,
        cache: Some(Arc::clone(&cache)),
        ..ServeConfig::default()
    });

    // Cold wave: 3 clients submit the full suite concurrently (12 jobs).
    let clients = 3;
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let (client, specs, expected) = (client.clone(), &specs, &expected);
            scope.spawn(move || {
                let ids: Vec<u64> = specs
                    .iter()
                    .map(|spec| client.submit(spec).expect("admitted").id)
                    .collect();
                for (id, want) in ids.iter().zip(expected) {
                    let got = client.result(*id, true).expect("job completes");
                    assert_eq!(&got, want, "wire outcome differs from local run");
                }
            });
        }
    });

    let cold = client.metrics().expect("metrics");
    assert_eq!(cold.completed, (clients * specs.len()) as u64);
    assert_eq!(cold.failed, 0);
    let cold_cache = cold.cache.expect("server runs cached");
    assert_eq!(cold_cache.misses + cold_cache.hits(), cold.completed);

    // Warm wave: every request must be answered by the cache — hit delta
    // == request count, zero new misses — and stay byte-identical.
    let warm_requests = specs.len() as u64;
    for (spec, want) in specs.iter().zip(&expected) {
        let id = client.submit(spec).expect("admitted").id;
        let status = client.status(id, true).expect("terminal");
        assert_eq!(status.status, JobStatus::Completed);
        assert_eq!(status.cached, Some(true), "warm request recomputed");
        assert_eq!(&client.result(id, false).expect("stored"), want);
    }
    let warm = client.metrics().expect("metrics");
    let warm_cache = warm.cache.expect("server runs cached");
    assert_eq!(
        warm_cache.hits() - cold_cache.hits(),
        warm_requests,
        "every warm request is a cache hit"
    );
    assert_eq!(
        warm_cache.misses, cold_cache.misses,
        "no warm recomputation"
    );
    assert_eq!(warm.warm - cold.warm, warm_requests);

    // Synchronous mode (`POST /jobs?wait=1`) serves the same exact bytes
    // in a single round trip.
    let sync = client.run_sync(&specs[0]).expect("sync submit");
    assert_eq!(&sync, &expected[0]);

    server.shutdown();
}

#[test]
fn restart_over_snapshot_dir_serves_first_request_without_kernel_builds() {
    let base = std::env::temp_dir().join(format!("dominolp-serve-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let snap_dir = base.join("snapshots");
    let mut spec = JobSpec::suite("frg1");
    spec.sim.cycles = 512;
    spec.sim.warmup = 8;
    let expected = local_outcome_json(&spec);

    // Cold "process": empty snapshot store, fresh result cache.
    let first = {
        let store = domino_engine::SnapshotStore::on_disk(&snap_dir).expect("snapshot dir");
        let (server, client) = start_server(ServeConfig {
            workers: 1,
            cache: Some(Arc::new(ResultCache::in_memory())),
            snapshots: Some(Arc::new(store)),
            ..ServeConfig::default()
        });
        let got = client.run_sync(&spec).expect("cold run");
        let snap = client
            .metrics()
            .expect("metrics")
            .snapshot
            .expect("snapshot section present");
        assert_eq!(snap.kernel_builds, 1, "cold run builds the kernel once");
        assert!(snap.stores >= 1, "cold run persists the kernel");
        server.shutdown();
        got
    };
    assert_eq!(first, expected, "snapshotted run matches the local bytes");

    // Restarted "process": same snapshot dir, FRESH result cache — the
    // restart-warm contract: first request byte-identical with zero
    // kernel builds.
    let store = domino_engine::SnapshotStore::on_disk(&snap_dir).expect("snapshot dir");
    let (server, client) = start_server(ServeConfig {
        workers: 1,
        cache: Some(Arc::new(ResultCache::in_memory())),
        snapshots: Some(Arc::new(store)),
        ..ServeConfig::default()
    });
    let got = client.run_sync(&spec).expect("warm restart run");
    assert_eq!(got, expected, "restart-warm outcome is byte-identical");
    let snap = client
        .metrics()
        .expect("metrics")
        .snapshot
        .expect("snapshot section present");
    assert_eq!(snap.kernel_builds, 0, "no kernel rebuilt after restart");
    assert!(snap.hits >= 1, "the persisted snapshot warmed the run");
    assert!(snap.disk_entries >= 1);
    server.shutdown();
    std::fs::remove_dir_all(&base).expect("cleanup");
}

#[test]
fn full_queue_backpressures_and_drops_nothing() {
    let (server, client) = start_server(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        cache: None,
        ..ServeConfig::default()
    });

    // Occupy the single worker...
    let slow = client.submit(&slow_spec()).expect("admitted");
    loop {
        let status = client.status(slow.id, false).expect("known job");
        if status.status == JobStatus::Running {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    // ...fill the queue...
    let mut queued_spec = public_specs().remove(1);
    queued_spec.name = "queued".to_string();
    let queued = client.submit(&queued_spec).expect("fits the queue");

    // ...and overflow it: explicit 429 + Retry-After, nothing enqueued.
    let overflow = client.submit(&public_specs()[0]);
    match overflow {
        Err(ClientError::Api {
            status: 429,
            retry_after,
            ..
        }) => assert_eq!(retry_after, Some(1), "429 carries Retry-After"),
        other => panic!("expected 429, got {other:?}"),
    }

    // Cancelling the queued job frees its slot immediately...
    let cancelled = client.cancel(queued.id).expect("known job");
    assert_eq!(cancelled.status, JobStatus::Cancelled);
    // ...so the next submission is admitted again.
    let replacement = client.submit(&public_specs()[0]).expect("slot freed");

    // Every admitted job reaches a terminal state; nothing silently lost.
    assert_eq!(
        client.status(slow.id, true).unwrap().status,
        JobStatus::Completed
    );
    assert_eq!(
        client.status(replacement.id, true).unwrap().status,
        JobStatus::Completed
    );
    assert_eq!(
        client.status(queued.id, false).unwrap().status,
        JobStatus::Cancelled
    );
    let result_of_cancelled = client.result(queued.id, false);
    assert!(
        matches!(
            result_of_cancelled,
            Err(ClientError::Api { status: 409, .. })
        ),
        "cancelled job has no outcome: {result_of_cancelled:?}"
    );

    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.submitted, 3, "slow + queued + replacement admitted");
    assert_eq!(metrics.rejected, 1, "exactly one explicit 429");
    assert_eq!(metrics.completed, 2);
    assert_eq!(metrics.cancelled, 1);
    assert_eq!(
        metrics.submitted,
        metrics.completed + metrics.cancelled,
        "admitted = terminal: no job was silently dropped"
    );

    server.shutdown();
}

#[test]
fn cache_peering_warms_a_cold_node() {
    let cache_a = Arc::new(ResultCache::in_memory());
    let cache_b = Arc::new(ResultCache::in_memory());
    let (server_a, client_a) = start_server(ServeConfig {
        workers: 1,
        queue_capacity: 4,
        cache: Some(Arc::clone(&cache_a)),
        ..ServeConfig::default()
    });
    let (server_b, client_b) = start_server(ServeConfig {
        workers: 1,
        queue_capacity: 4,
        cache: Some(Arc::clone(&cache_b)),
        ..ServeConfig::default()
    });

    // Node A computes an outcome the normal way.
    let spec = public_specs().remove(0);
    let admitted = client_a.submit(&spec).expect("admitted");
    assert_eq!(
        client_a.status(admitted.id, true).expect("terminal").status,
        JobStatus::Completed
    );
    let bytes = client_a.result(admitted.id, false).expect("stored");

    // Peek answers the exact stored bytes without touching the hit/miss
    // accounting (gateway probing must not distort the node's stats).
    let stats_before = cache_a.stats();
    let peeked = client_a
        .cache_peek(&admitted.key)
        .expect("peek works")
        .expect("node A holds the entry");
    assert_eq!(peeked, bytes, "peek serves the stored bytes verbatim");
    let stats_after = cache_a.stats();
    assert_eq!(stats_after.hits(), stats_before.hits(), "peek is silent");
    assert_eq!(stats_after.misses, stats_before.misses, "peek is silent");

    // Node B has never seen the key.
    assert_eq!(
        client_b.cache_peek(&admitted.key).expect("peek works"),
        None
    );

    // Peer-fill node B; an identical submission there is now a pure cache
    // hit — byte-identical result, zero recomputation.
    client_b
        .cache_fill(&admitted.key, &peeked)
        .expect("fill accepted");
    let warm = client_b.submit(&spec).expect("admitted");
    assert_eq!(warm.key, admitted.key, "same spec, same routing key");
    let status = client_b.status(warm.id, true).expect("terminal");
    assert_eq!(status.status, JobStatus::Completed);
    assert_eq!(status.cached, Some(true), "peer-warmed node served cached");
    assert_eq!(client_b.result(warm.id, false).expect("stored"), bytes);
    assert_eq!(
        cache_b.stats().misses,
        0,
        "peer-warmed node recomputed nothing"
    );

    // A fill whose outcome does not match the key is rejected: peering
    // must not be able to poison a node's cache.
    match client_b.cache_fill("00000000000000000000000000000000", &peeked) {
        Err(ClientError::Api { status: 400, .. }) => {}
        other => panic!("expected 400 for key mismatch, got {other:?}"),
    }

    server_a.shutdown();
    server_b.shutdown();
}

#[test]
fn event_stream_delivers_dense_lifecycle_and_terminates() {
    let (server, client) = start_server(ServeConfig {
        workers: 1,
        queue_capacity: 8,
        cache: None,
        ..ServeConfig::default()
    });
    let mut spec = public_specs().swap_remove(0);
    spec.sim.cycles = 256;
    let id = client.submit(&spec).expect("admitted").id;

    // The stream blocks until the terminal event, then ends on its own.
    let mut streamed = Vec::new();
    let events = client
        .events(id, |e| streamed.push(e.kind))
        .expect("stream completes");
    let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![EventKind::Queued, EventKind::Started, EventKind::Finished]
    );
    assert_eq!(streamed, kinds, "callback saw the same sequence");
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![0, 1, 2], "dense sequence numbers");
    assert_eq!(events[2].cached, Some(false));
    assert!(events[2].elapsed_ms.is_some());

    server.shutdown();
}

#[test]
fn malformed_requests_get_4xx_not_silence() {
    let (server, client) = start_server(ServeConfig {
        workers: 1,
        queue_capacity: 4,
        cache: None,
        ..ServeConfig::default()
    });

    // Unknown job id.
    match client.status(999, false) {
        Err(ClientError::Api { status: 404, .. }) => {}
        other => panic!("expected 404, got {other:?}"),
    }

    // A body that is not a JobSpec.
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"POST /jobs HTTP/1.1\r\ncontent-length: 8\r\n\r\nnot json")
        .unwrap();
    let mut conn = domino_serve::http::HttpConnection::new(stream);
    let response = conn.read_response().unwrap();
    assert_eq!(response.status, 400);

    // An unknown endpoint.
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"GET /nonesuch HTTP/1.1\r\n\r\n").unwrap();
    let mut conn = domino_serve::http::HttpConnection::new(stream);
    let response = conn.read_response().unwrap();
    assert_eq!(response.status, 404);

    // A spec naming an unknown suite row fails at resolve time.
    match client.submit(&JobSpec::suite("nonesuch")) {
        Err(ClientError::Api { status: 400, .. }) => {}
        other => panic!("expected 400, got {other:?}"),
    }

    server.shutdown();
}

#[test]
fn unreachable_server_is_distinguished_from_job_failure() {
    // Port 9 (discard) on localhost is refused in any sane environment.
    let client = ServeClient::new("127.0.0.1:9");
    match client.metrics() {
        Err(ClientError::Unreachable(_)) => {}
        other => panic!("expected Unreachable, got {other:?}"),
    }
}

#[test]
fn graceful_shutdown_drains_admitted_jobs() {
    let cache = Arc::new(ResultCache::in_memory());
    let (mut server, client) = start_server(ServeConfig {
        workers: 1,
        queue_capacity: 8,
        cache: Some(cache),
        ..ServeConfig::default()
    });

    let specs = public_specs();
    let ids: Vec<u64> = specs[..3]
        .iter()
        .map(|spec| client.submit(spec).expect("admitted").id)
        .collect();

    // The wire-level shutdown: admissions stop, the drain begins.
    client.shutdown().expect("shutdown accepted");
    match client.submit(&specs[3]) {
        // 503 while draining; Unreachable/Io once the dying listener is
        // past accepting (the kernel backlog may still take — then reset —
        // the connection). All three mean: not admitted, told explicitly.
        Err(
            ClientError::Api { status: 503, .. } | ClientError::Unreachable(_) | ClientError::Io(_),
        ) => {}
        other => panic!("expected refusal during drain, got {other:?}"),
    }

    // wait() returns only after every admitted job was executed.
    server.wait();
    let metrics = server.metrics();
    assert_eq!(metrics.completed, ids.len() as u64, "drain ran every job");
    assert_eq!(metrics.queue_depth, 0);

    // The HTTP surface is gone after the drain.
    match client.healthz() {
        Err(ClientError::Unreachable(_)) => {}
        other => panic!("expected Unreachable after drain, got {other:?}"),
    }
}
