//! Edge-of-the-wire acceptance tests for the reactor-fronted `dominod`
//! connection handling — the cases a thread-per-connection server gets
//! wrong for free and an event-driven one must prove:
//!
//! * **slow loris** — a connection that sends half a request and goes
//!   silent is closed by the idle-timeout wheel, not parked on a reader
//!   thread forever;
//! * **mid-stream disconnect** — a client that vanishes in the middle of
//!   a chunked `/jobs/:id/events` stream is detected and its connection
//!   released; the job itself still completes;
//! * **accept burst past `--max-connections`** — connections beyond the
//!   cap get a clean `503` + close, held connections stay untouched, and
//!   nothing leaks: once the held ones close, the server accepts again;
//! * **drain with idle keep-alive herd** — shutdown with dozens of idle
//!   kept-alive connections completes promptly (the reactor force-closes
//!   idlers instead of waiting out their timeouts).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use domino_engine::JobSpec;
use domino_serve::{JobStatus, ServeClient, ServeConfig, Server};

/// A cheap spec (short simulation) for liveness probes.
fn quick_spec() -> JobSpec {
    let mut spec = JobSpec::suite("frg1");
    spec.sim.cycles = 256;
    spec.sim.warmup = 8;
    spec
}

/// A spec that keeps a debug-profile worker busy long enough to race
/// against (large simulation budget).
fn slow_spec() -> JobSpec {
    let mut spec = JobSpec::suite("apex7");
    spec.name = "slowpoke".to_string();
    spec.sim.cycles = 65_536;
    spec
}

fn start_server(config: ServeConfig) -> (Server, String) {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        ..config
    })
    .expect("ephemeral bind");
    let addr = server.addr().to_string();
    (server, addr)
}

/// Opens a raw connection, serves one `GET /healthz` on it, and returns
/// it still open (kept alive) — a registered, idle connection from the
/// reactor's point of view.
fn open_idle_keepalive(addr: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: test\r\nconnection: keep-alive\r\n\r\n")
        .expect("write healthz");
    let head = read_response_head(&mut stream);
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "healthz on a fresh connection must answer 200, got: {head}"
    );
    stream
}

/// Reads one HTTP response (head + content-length body) off `stream`,
/// returning everything read as text. Panics on timeout.
fn read_response_head(stream: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    // Read the head byte-by-byte (test-grade, not perf-grade).
    while !buf.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => buf.push(byte[0]),
            Err(e) => panic!("reading response head: {e}"),
        }
    }
    let head = String::from_utf8_lossy(&buf).to_string();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_string)
        })
        .map(|v| v.trim().parse().expect("content-length parses"))
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        stream.read_exact(&mut body).expect("read body");
    }
    format!("{head}{}", String::from_utf8_lossy(&body))
}

/// Polls the server's in-process metrics until `pred` holds or the
/// deadline passes; returns the last observed open-connection count.
fn wait_for_open_connections(
    server: &Server,
    deadline: Duration,
    pred: impl Fn(u64) -> bool,
) -> u64 {
    let start = Instant::now();
    loop {
        let open = server
            .metrics()
            .reactor
            .expect("reactor counters present")
            .open_connections;
        if pred(open) || start.elapsed() > deadline {
            return open;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn slow_loris_partial_request_is_idle_timed_out() {
    let (server, addr) = start_server(ServeConfig {
        idle_timeout_ms: 200,
        ..ServeConfig::default()
    });

    // Half a request line, then silence — a reader thread would block in
    // `read` forever; the reactor's timer wheel must reap it.
    let mut loris = TcpStream::connect(&addr).expect("connect");
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    loris
        .write_all(b"POST /jobs HTTP/1.1\r\ncontent-le")
        .expect("write partial request");

    let mut buf = [0u8; 64];
    let n = loris.read(&mut buf).expect("server closes, not timeout");
    assert_eq!(n, 0, "a timed-out slow loris gets EOF, not a response");

    let reactor = server.metrics().reactor.expect("reactor counters present");
    assert!(
        reactor.timeouts >= 1,
        "the idle-timeout counter must record the reaped connection"
    );

    // The server is unharmed: a real client is served normally.
    let outcome = ServeClient::new(addr).run_sync(&quick_spec());
    assert!(outcome.is_ok(), "server serves after reaping a slow loris");
    server.shutdown();
}

#[test]
fn client_disconnect_mid_event_stream_releases_the_connection() {
    let (server, addr) = start_server(ServeConfig::default());
    let client = ServeClient::new(addr.clone());

    let admit = client.submit(&slow_spec()).expect("slow job admitted");

    // Follow the chunked event stream just far enough to see it live,
    // then vanish without a goodbye.
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        stream
            .write_all(
                format!(
                    "GET /jobs/{}/events HTTP/1.1\r\nhost: test\r\n\r\n",
                    admit.id
                )
                .as_bytes(),
            )
            .expect("write events request");
        let mut byte = [0u8; 1];
        let mut seen = Vec::new();
        // Read until the first event line has arrived (one full chunk).
        while !seen.ends_with(b"\n\r\n") {
            match stream.read(&mut byte) {
                Ok(0) => panic!("stream ended before the first event"),
                Ok(_) => seen.push(byte[0]),
                Err(e) => panic!("reading event stream: {e}"),
            }
        }
        let text = String::from_utf8_lossy(&seen);
        assert!(
            text.starts_with("HTTP/1.1 200"),
            "event stream opens with 200, got: {text}"
        );
        // `stream` drops here: RST/EOF mid-stream from the server's view.
    }

    // The abandoned job still completes — a vanished spectator must not
    // take the worker with it.
    let status = client.status(admit.id, true).expect("job reaches terminal");
    assert_eq!(status.status, JobStatus::Completed);

    // The reactor notices the dead stream once the next event write
    // fails, and releases the connection. Only the pooled client
    // connection (at most) may remain.
    let open = wait_for_open_connections(&server, Duration::from_secs(5), |open| open <= 1);
    assert!(
        open <= 1,
        "dead event-stream connection must be released, {open} still open"
    );
    server.shutdown();
}

#[test]
fn accept_burst_beyond_max_connections_gets_clean_503_and_leaks_nothing() {
    let cap = 8usize;
    let (server, addr) = start_server(ServeConfig {
        max_connections: cap,
        idle_timeout_ms: 60_000,
        ..ServeConfig::default()
    });

    // Fill the cap with live kept-alive connections.
    let held: Vec<TcpStream> = (0..cap).map(|_| open_idle_keepalive(&addr)).collect();

    // Everything beyond the cap is turned away at accept: a `503` with
    // `retry-after`, then close — never silence, never a hang.
    for i in 0..2 * cap {
        let mut extra = TcpStream::connect(&addr).expect("connect beyond cap");
        extra
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let mut reply = String::new();
        extra
            .read_to_string(&mut reply)
            .expect("over-cap reply then EOF");
        assert!(
            reply.starts_with("HTTP/1.1 503"),
            "over-cap connection {i} must get a 503, got: {reply}"
        );
        assert!(
            reply.to_ascii_lowercase().contains("retry-after"),
            "over-cap 503 carries retry-after: {reply}"
        );
    }

    // The held connections were untouched by the burst.
    let reactor = server.metrics().reactor.expect("reactor counters present");
    assert_eq!(
        reactor.open_connections, cap as u64,
        "the burst must not displace held connections"
    );

    // No leak: once the held connections close, the server accepts and
    // serves again.
    drop(held);
    let open = wait_for_open_connections(&server, Duration::from_secs(5), |open| open == 0);
    assert_eq!(open, 0, "closed connections must be fully released");
    let outcome = ServeClient::new(addr).run_sync(&quick_spec());
    assert!(outcome.is_ok(), "server serves normally after the burst");
    server.shutdown();
}

#[test]
fn drain_with_a_herd_of_idle_keepalive_connections_is_prompt() {
    let herd = 64usize;
    let (server, addr) = start_server(ServeConfig {
        // Idle timeout far beyond the test's patience: only the drain
        // logic may close these.
        idle_timeout_ms: 600_000,
        max_connections: herd + 16,
        ..ServeConfig::default()
    });

    let held: Vec<TcpStream> = (0..herd).map(|_| open_idle_keepalive(&addr)).collect();
    let reactor = server.metrics().reactor.expect("reactor counters present");
    assert_eq!(reactor.open_connections, herd as u64);

    // Shutdown must not wait out 64 ten-minute idle timeouts.
    let start = Instant::now();
    server.shutdown();
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(10),
        "drain with {herd} idle connections took {elapsed:?}"
    );

    // Every held connection was closed by the drain.
    for mut stream in held {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        let mut buf = [0u8; 64];
        // EOF, possibly after a final in-flight response's bytes.
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) => panic!("drained connection must close cleanly: {e}"),
            }
        }
    }
}
