//! The event-driven connection front shared by `dominod` and `dominogw`.
//!
//! Earlier revisions spawned one thread per accepted connection and ran
//! the blocking [`serve_connection`](crate::http::serve_connection) loop
//! on it. That puts an OS thread behind every kept-alive socket — fine
//! for tens of clients, hopeless for thousands. This module replaces the
//! per-connection threads with one reactor thread multiplexing every
//! socket over [`domino_reactor::Poller`] (epoll readiness), while
//! keeping the protocol machinery — [`RequestParser`], the
//! [`render_response`] family — byte-identical to the blocking path.
//!
//! # Shape
//!
//! ```text
//!              ┌────────────────────────────┐   (Request, Responder)
//!   sockets ──►│ reactor thread             ├──► handler pool (route())
//!              │  poll / parse / flush      │◄── Op queue + waker
//!              │  timer wheel (idle)        │      Responder::respond
//!              └────────────────────────────┘      StreamHandle::chunk
//! ```
//!
//! The reactor owns every socket. Parsed requests are handed to a small
//! handler pool; handlers never touch the socket — they answer through a
//! [`Responder`] (or a [`StreamHandle`] for chunked `/events` replies),
//! which enqueues an op and wakes the reactor. Because a `Responder` is
//! `Send + 'static`, a handler may also park it on a waiter pump and
//! return immediately, so long-polls (`?wait=1`) hold no thread at all.
//!
//! One request is in flight per connection at a time; read interest is
//! dropped while a response is pending, and responses flush strictly in
//! order, so pipelined clients observe exactly the blocking server's
//! behaviour.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use domino_reactor::{Interest, Poller, TimerWheel, WakeHandle, Waker};

use crate::http::{
    render_chunk, render_chunk_end, render_chunked_head, render_response, Request, RequestParser,
};
use crate::protocol::ReactorCounters;

/// Token of the accept socket in the poller.
const LISTENER_TOKEN: u64 = 0;
/// Token of the wake pipe in the poller.
const WAKER_TOKEN: u64 = 1;
/// First token handed to an accepted connection. Tokens are monotonic
/// and never reused, so a stale timer or op for a closed connection
/// simply misses the map.
const FIRST_CONN_TOKEN: u64 = 2;

/// Idle-timeout granularity of the timer wheel.
const TIMER_TICK: Duration = Duration::from_millis(10);
/// Slot count of the timer wheel.
const TIMER_SLOTS: usize = 512;
/// How long a draining reactor waits for in-flight connections before
/// force-closing them.
const DRAIN_GRACE: Duration = Duration::from_secs(10);
/// Per-`read(2)` buffer size.
const READ_CHUNK: usize = 16 * 1024;
/// Most bytes one `read_ready` invocation consumes from a single
/// connection. Level-triggered polling picks the remainder up on the
/// next wait, so the cap costs nothing — but it keeps one fire-hosing
/// client from monopolizing the reactor thread or stacking requests in
/// its parser beyond the one the server is willing to hold.
const READ_BUDGET: usize = 4 * READ_CHUNK;

/// The body sent with a `400` on an unparseable request — the same bytes
/// the blocking loop writes.
const MALFORMED: &[u8] = b"{\"error\":\"malformed request\"}";
/// The body sent with the `503` that answers an accept beyond
/// `max_connections`.
const OVER_CAPACITY: &[u8] = b"{\"error\":\"connection limit reached\"}";

/// Tuning for one [`HttpFront`].
#[derive(Debug, Clone)]
pub struct FrontConfig {
    /// Thread-name prefix (`dominod`, `dominogw`) for the reactor and
    /// handler threads.
    pub name: &'static str,
    /// How long a connection may sit with no complete request before the
    /// reactor closes it.
    pub idle_timeout: Duration,
    /// Requests served on one connection before the server forces
    /// `Connection: close`.
    pub max_requests: u32,
    /// Open connections before further accepts are answered with a `503`
    /// and an immediate close.
    pub max_connections: usize,
    /// Threads in the handler pool the reactor dispatches requests to.
    pub handler_threads: usize,
}

/// The request handler: called on a pool thread with each parsed request
/// and the [`Responder`] that answers it.
pub type FrontHandler = Arc<dyn Fn(Request, Responder) + Send + Sync>;

/// An op enqueued by a [`Responder`]/[`StreamHandle`] for the reactor.
enum Op {
    /// A complete fixed-length response.
    Respond {
        token: u64,
        status: u16,
        headers: Vec<(String, String)>,
        body: Vec<u8>,
        force_close: bool,
    },
    /// The head of a chunked stream (always `Connection: close`).
    StreamBegin { token: u64, status: u16 },
    /// One chunk of an open stream.
    StreamChunk { token: u64, data: Vec<u8> },
    /// The terminating zero-length chunk; the connection closes after
    /// the flush.
    StreamEnd { token: u64 },
    /// Abandon the connection without a terminal chunk (a relay that
    /// died mid-stream has nothing truthful left to say).
    Abort { token: u64 },
}

/// State shared between the reactor thread and everyone holding a
/// [`Responder`], [`StreamHandle`] or [`FrontHandle`].
struct FrontShared {
    ops: Mutex<VecDeque<Op>>,
    wake: WakeHandle,
    /// Tokens of currently-open connections — lets a waiter pump notice
    /// a dead client without writing to it.
    live: Mutex<HashSet<u64>>,
    draining: AtomicBool,
    open_connections: AtomicU64,
    accepts: AtomicU64,
    timeouts: AtomicU64,
}

impl FrontShared {
    fn push(&self, op: Op) {
        self.ops.lock().expect("ops lock").push_back(op);
        self.wake.wake();
    }

    fn is_live(&self, token: u64) -> bool {
        self.live.lock().expect("live lock").contains(&token)
    }
}

/// The single-use reply channel for one request. Consuming it enqueues
/// the response with the reactor; dropping it without responding leaves
/// the connection idle until its timeout closes it.
pub struct Responder {
    token: u64,
    shared: Arc<FrontShared>,
}

impl std::fmt::Debug for Responder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Responder")
            .field("token", &self.token)
            .finish()
    }
}

impl Responder {
    /// Answers with a fixed-length response. The reactor decides the
    /// `Connection` header from the request's wishes, the per-connection
    /// request budget and drain state — exactly the blocking loop's
    /// keep-alive negotiation.
    pub fn respond(self, status: u16, extra_headers: &[(&str, &str)], body: &[u8]) {
        self.finish_with(status, extra_headers, body, false);
    }

    /// Answers and unconditionally closes the connection afterwards
    /// (`POST /shutdown`'s goodbye, protocol-fatal errors).
    pub fn respond_close(self, status: u16, extra_headers: &[(&str, &str)], body: &[u8]) {
        self.finish_with(status, extra_headers, body, true);
    }

    /// Starts a chunked-transfer response (always `Connection: close`)
    /// and returns the handle that feeds it.
    pub fn begin_stream(self, status: u16) -> StreamHandle {
        self.shared.push(Op::StreamBegin {
            token: self.token,
            status,
        });
        StreamHandle {
            token: self.token,
            shared: Arc::clone(&self.shared),
            finished: false,
        }
    }

    /// `false` once the reactor has closed this connection — a parked
    /// long-poll can be dropped instead of answered.
    pub fn is_live(&self) -> bool {
        self.shared.is_live(self.token)
    }

    fn finish_with(self, status: u16, extra_headers: &[(&str, &str)], body: &[u8], close: bool) {
        self.shared.push(Op::Respond {
            token: self.token,
            status,
            headers: extra_headers
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: body.to_vec(),
            force_close: close,
        });
    }
}

/// An open chunked stream. Dropping it without [`StreamHandle::finish`]
/// aborts the connection — the client sees a truncated stream, exactly
/// what the blocking relay produced when a backend died mid-stream.
pub struct StreamHandle {
    token: u64,
    shared: Arc<FrontShared>,
    finished: bool,
}

impl std::fmt::Debug for StreamHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamHandle")
            .field("token", &self.token)
            .field("finished", &self.finished)
            .finish()
    }
}

impl StreamHandle {
    /// Enqueues one chunk. Empty data is skipped — an empty chunk would
    /// terminate the stream.
    pub fn chunk(&mut self, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        self.shared.push(Op::StreamChunk {
            token: self.token,
            data: data.to_vec(),
        });
    }

    /// Writes the terminating chunk and closes the connection.
    pub fn finish(mut self) {
        self.finished = true;
        self.shared.push(Op::StreamEnd { token: self.token });
    }

    /// `false` once the client is gone — the feeder should stop.
    pub fn is_live(&self) -> bool {
        self.shared.is_live(self.token)
    }
}

impl Drop for StreamHandle {
    fn drop(&mut self) {
        if !self.finished {
            self.shared.push(Op::Abort { token: self.token });
        }
    }
}

/// A cloneable control handle onto a running [`HttpFront`].
#[derive(Clone)]
pub struct FrontHandle {
    shared: Arc<FrontShared>,
}

impl std::fmt::Debug for FrontHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontHandle").finish()
    }
}

impl FrontHandle {
    /// Starts the drain: the listener closes, idle connections close
    /// now, in-flight ones finish their response and close. The
    /// [`HttpFront::run`] call returns once every connection is gone
    /// (force-closing stragglers after a grace period).
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.wake.wake();
    }

    /// `true` once [`FrontHandle::shutdown`] has been called.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// A snapshot of the reactor's counters for `/metrics`.
    pub fn counters(&self) -> ReactorCounters {
        ReactorCounters {
            open_connections: self.shared.open_connections.load(Ordering::SeqCst),
            accepts: self.shared.accepts.load(Ordering::SeqCst),
            timeouts: self.shared.timeouts.load(Ordering::SeqCst),
        }
    }
}

/// A bound, not-yet-running connection front. [`HttpFront::bind`] sets
/// up the poller; [`HttpFront::run`] (typically on a dedicated thread)
/// loops until drained.
pub struct HttpFront {
    listener: TcpListener,
    cfg: FrontConfig,
    poller: Poller,
    waker: Waker,
    shared: Arc<FrontShared>,
}

impl std::fmt::Debug for HttpFront {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpFront").field("cfg", &self.cfg).finish()
    }
}

impl HttpFront {
    /// Wraps an already-bound listener in a reactor front.
    ///
    /// # Errors
    ///
    /// [`io::Error`] creating the epoll instance or wake pipe.
    pub fn bind(listener: TcpListener, cfg: FrontConfig) -> io::Result<HttpFront> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        let waker = Waker::new()?;
        poller.add(&listener, LISTENER_TOKEN, Interest::READABLE)?;
        poller.add(&waker, WAKER_TOKEN, Interest::READABLE)?;
        let shared = Arc::new(FrontShared {
            ops: Mutex::new(VecDeque::new()),
            wake: waker.handle()?,
            live: Mutex::new(HashSet::new()),
            draining: AtomicBool::new(false),
            open_connections: AtomicU64::new(0),
            accepts: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
        });
        Ok(HttpFront {
            listener,
            cfg,
            poller,
            waker,
            shared,
        })
    }

    /// The control handle (cloneable; give one to the shutdown path and
    /// one to `/metrics`).
    pub fn handle(&self) -> FrontHandle {
        FrontHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the reactor until drained. Spawns the handler pool, owns
    /// every socket, and joins the pool before returning.
    ///
    /// # Errors
    ///
    /// [`io::Error`] from `epoll_wait` or handler-thread spawning;
    /// per-connection I/O errors close that connection only.
    pub fn run(self, handler: FrontHandler) -> io::Result<()> {
        let HttpFront {
            listener,
            cfg,
            poller,
            waker,
            shared,
        } = self;

        let (tx, rx) = mpsc::channel::<(Request, Responder)>();
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::new();
        for i in 0..cfg.handler_threads.max(1) {
            let rx = Arc::clone(&rx);
            let handler = Arc::clone(&handler);
            pool.push(
                std::thread::Builder::new()
                    .name(format!("{}-handler-{i}", cfg.name))
                    .spawn(move || loop {
                        let job = {
                            let guard = rx.lock().expect("handler rx lock");
                            guard.recv()
                        };
                        match job {
                            Ok((request, responder)) => handler(request, responder),
                            Err(_) => break,
                        }
                    })?,
            );
        }

        let mut reactor = Reactor {
            cfg,
            poller,
            shared,
            conns: HashMap::new(),
            wheel: TimerWheel::new(TIMER_TICK, TIMER_SLOTS),
            tx,
            next_token: FIRST_CONN_TOKEN,
        };
        let result = reactor.run(&listener, &waker);
        // Closing the dispatch channel ends idle pool threads. They are
        // detached, not joined: a gateway handler can sit in a blocking
        // relay against a hung backend, and the drain must stay bounded
        // — the reactor has already force-closed that handler's client.
        drop(reactor);
        drop(pool);
        result
    }
}

/// Per-connection dispatch state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Between requests: read interest armed, idle timer running.
    Idle,
    /// A request was handed to the pool; its response has not been
    /// enqueued yet. Read interest is dropped.
    InFlight,
    /// A chunked stream is open on this connection.
    Streaming,
}

struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    out: Vec<u8>,
    out_pos: usize,
    state: ConnState,
    served: u32,
    req_wants_close: bool,
    close_after_flush: bool,
    /// The peer half-closed (EPOLLRDHUP) while a request was in flight.
    /// No further request can arrive, so the pending response (if its
    /// handler still answers) is the connection's last; the idle timer
    /// is re-armed as a bound in case the handler never does. Once set,
    /// the connection re-registers without RDHUP interest — re-reporting
    /// a known half-close every level-triggered wait is a busy loop.
    peer_half_closed: bool,
    /// Bumped on every (re)arm/cancel; a timer firing with a stale seq
    /// is ignored — lazy cancellation.
    timer_seq: u64,
    interest: Interest,
}

struct Reactor {
    cfg: FrontConfig,
    poller: Poller,
    shared: Arc<FrontShared>,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel,
    tx: mpsc::Sender<(Request, Responder)>,
    next_token: u64,
}

impl Reactor {
    fn run(&mut self, listener: &TcpListener, waker: &Waker) -> io::Result<()> {
        let mut events = Vec::new();
        let mut fired: Vec<(u64, u64)> = Vec::new();
        let mut listener_registered = true;
        let mut drain_deadline: Option<Instant> = None;

        loop {
            let draining = self.shared.draining.load(Ordering::SeqCst);
            if draining && drain_deadline.is_none() {
                drain_deadline = Some(Instant::now() + DRAIN_GRACE);
                if listener_registered {
                    let _ = self.poller.delete(listener);
                    listener_registered = false;
                }
                // Idle connections with nothing left to flush have been
                // told `keep-alive`, but a draining server gets to renege
                // — the client's next request would be refused anyway.
                let idle: Vec<u64> = self
                    .conns
                    .iter()
                    .filter(|(_, c)| c.state == ConnState::Idle && c.out.len() == c.out_pos)
                    .map(|(t, _)| *t)
                    .collect();
                for token in idle {
                    self.close_conn(token);
                }
            }
            if draining && self.conns.is_empty() {
                return Ok(());
            }
            if let Some(deadline) = drain_deadline {
                if Instant::now() >= deadline {
                    let all: Vec<u64> = self.conns.keys().copied().collect();
                    for token in all {
                        self.close_conn(token);
                    }
                    return Ok(());
                }
            }

            loop {
                let op = self.shared.ops.lock().expect("ops lock").pop_front();
                match op {
                    Some(op) => self.apply(op),
                    None => break,
                }
            }

            let timeout = if self.conns.is_empty() && drain_deadline.is_none() {
                None // nothing to time out; ops and accepts wake us
            } else {
                Some(Duration::from_millis(25))
            };
            self.poller.wait(&mut events, timeout)?;
            for ev in std::mem::take(&mut events) {
                match ev.token {
                    WAKER_TOKEN => waker.drain(),
                    LISTENER_TOKEN => self.accept_ready(listener),
                    token => self.conn_event(token, ev.readable, ev.writable, ev.hangup, ev.error),
                }
            }

            self.wheel.advance(Instant::now(), &mut fired);
            for (token, seq) in fired.drain(..) {
                // An idle connection past its deadline, or a half-closed
                // one whose response never came — both are reaped.
                let expired = self.conns.get(&token).is_some_and(|c| {
                    c.timer_seq == seq && (c.state == ConnState::Idle || c.peer_half_closed)
                });
                if expired {
                    self.shared.timeouts.fetch_add(1, Ordering::SeqCst);
                    self.close_conn(token);
                }
            }
        }
    }

    fn accept_ready(&mut self, listener: &TcpListener) {
        loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            };
            self.shared.accepts.fetch_add(1, Ordering::SeqCst);
            if domino_failpoint::should_fire("serve.http.accept") {
                continue; // injected accept fault: drop the socket
            }
            if self.shared.draining.load(Ordering::SeqCst) {
                continue;
            }
            if self.conns.len() >= self.cfg.max_connections {
                // Best-effort 503 so the client learns why; a full send
                // buffer just means they get a bare close instead.
                let _ = stream.set_nonblocking(true);
                let goodbye = render_response(503, &[("retry-after", "1")], OVER_CAPACITY, false);
                let _ = (&stream).write(&goodbye);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            if self.poller.add(&stream, token, Interest::READABLE).is_err() {
                continue;
            }
            self.conns.insert(
                token,
                Conn {
                    stream,
                    parser: RequestParser::new(),
                    out: Vec::new(),
                    out_pos: 0,
                    state: ConnState::Idle,
                    served: 0,
                    req_wants_close: false,
                    close_after_flush: false,
                    peer_half_closed: false,
                    timer_seq: 0,
                    interest: Interest::READABLE,
                },
            );
            self.shared.live.lock().expect("live lock").insert(token);
            self.shared.open_connections.fetch_add(1, Ordering::SeqCst);
            self.enter_idle(token);
        }
    }

    fn conn_event(
        &mut self,
        token: u64,
        readable: bool,
        writable: bool,
        hangup: bool,
        error: bool,
    ) {
        if !self.conns.contains_key(&token) {
            return; // closed earlier in this batch
        }
        if error {
            self.close_conn(token);
            return;
        }
        if writable {
            self.flush(token);
        }
        if !self.conns.contains_key(&token) {
            return;
        }
        let state = self.conns[&token].state;
        if readable || (hangup && state == ConnState::Idle) {
            // A half-close between requests is a goodbye: the read below
            // sees EOF.
            self.read_ready(token);
        }
        if !hangup {
            return;
        }
        match self.conns.get(&token).map(|c| c.state) {
            // The stream's consumer is gone; drop the connection so the
            // feeder observes `!is_live()` and stops.
            Some(ConnState::Streaming) => self.close_conn(token),
            // A half-close with a request in flight: the client may still
            // be reading, so the pending response is served and then the
            // connection closes — but note the hangup exactly once (and
            // drop RDHUP interest), or the level-triggered poller would
            // re-report it every wait and spin the reactor for as long as
            // the handler takes to answer. The re-armed idle timer bounds
            // a handler that never does (a dropped Responder, a parked
            // long-poll whose client vanished): the close flips
            // `is_live()` false, letting the pump drop the waiter.
            Some(ConnState::InFlight) => {
                let conn = self.conns.get_mut(&token).expect("state just read");
                if !conn.peer_half_closed {
                    conn.peer_half_closed = true;
                    self.arm_idle_timer(token);
                    self.sync_interest(token);
                }
            }
            Some(ConnState::Idle) | None => {}
        }
    }

    /// Reads from `token` until a complete request parses, the socket
    /// runs dry, or [`READ_BUDGET`] is spent (level-triggered polling
    /// resumes where we stopped). Stopping at one parsed request keeps
    /// the protocol invariant that a peer can never force the server to
    /// hold more than one parsed request — pipelined extras stay in the
    /// kernel's socket buffer, throttled by TCP flow control.
    fn read_ready(&mut self, token: u64) {
        let mut buf = [0u8; READ_CHUNK];
        let mut consumed = 0usize;
        let mut progressed = false;
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.state != ConnState::Idle {
                return; // a request is in flight; its response gates reads
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    // EOF. Mid-request bytes die with the connection,
                    // matching the blocking loop's clean-close handling.
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    conn.parser.feed(&buf[..n]);
                    progressed = true;
                    consumed += n;
                    match conn.parser.try_next() {
                        Err(_) => {
                            self.refuse_malformed(token);
                            return;
                        }
                        Ok(Some(request)) => {
                            self.dispatch(token, request);
                            return;
                        }
                        Ok(None) => {}
                    }
                    if consumed >= READ_BUDGET {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        if progressed {
            // Partial-request activity pushes the idle deadline, like
            // the blocking per-read timeout did.
            self.arm_idle_timer(token);
        }
    }

    fn apply(&mut self, op: Op) {
        match op {
            Op::Respond {
                token,
                status,
                headers,
                body,
                force_close,
            } => {
                if !self.conns.contains_key(&token) {
                    return; // client left before the answer was ready
                }
                if domino_failpoint::should_fire("serve.http.write") {
                    // The blocking path surfaced this as a write error
                    // that killed the connection; so do we.
                    self.close_conn(token);
                    return;
                }
                let draining = self.shared.draining.load(Ordering::SeqCst);
                let conn = self.conns.get_mut(&token).expect("checked above");
                let keep_alive = !force_close
                    && !draining
                    && conn.served < self.cfg.max_requests
                    && !conn.req_wants_close
                    // A half-closed peer can send no further request:
                    // this response is the connection's last.
                    && !conn.peer_half_closed;
                let header_refs: Vec<(&str, &str)> = headers
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                let message = render_response(status, &header_refs, &body, keep_alive);
                conn.out.extend_from_slice(&message);
                conn.close_after_flush = !keep_alive;
                conn.state = ConnState::Idle;
                if keep_alive {
                    self.enter_idle(token);
                }
                self.flush(token);
            }
            Op::StreamBegin { token, status } => {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                conn.out.extend_from_slice(&render_chunked_head(status));
                conn.state = ConnState::Streaming;
                // Cancel a half-close reaper: the handler is alive and
                // feeding. A consumer that fully vanishes surfaces as a
                // chunk-write failure (or EPOLLERR) and closes then.
                conn.timer_seq += 1;
                self.flush(token);
            }
            Op::StreamChunk { token, data } => {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.state != ConnState::Streaming {
                    return;
                }
                conn.out.extend_from_slice(&render_chunk(&data));
                self.flush(token);
            }
            Op::StreamEnd { token } => {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.state != ConnState::Streaming {
                    return;
                }
                conn.out.extend_from_slice(render_chunk_end());
                conn.close_after_flush = true;
                self.flush(token);
            }
            Op::Abort { token } => {
                if self.conns.contains_key(&token) {
                    self.flush(token); // push out already-queued chunks
                    self.close_conn(token);
                }
            }
        }
    }

    /// Entered between requests: runs the read failpoint (the blocking
    /// loop hit it at the top of `next_request`), then either dispatches
    /// a pipelined request already in the parser or arms read interest
    /// and the idle timer.
    fn enter_idle(&mut self, token: u64) {
        if domino_failpoint::should_fire("serve.http.read") {
            self.refuse_malformed(token);
            return;
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match conn.parser.try_next() {
            Err(_) => self.refuse_malformed(token),
            Ok(Some(request)) => self.dispatch(token, request),
            Ok(None) => {
                self.arm_idle_timer(token);
                self.sync_interest(token);
            }
        }
    }

    /// The blocking loop answered both injected read faults and truly
    /// malformed bytes with the same `400` and a close.
    fn refuse_malformed(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.out
            .extend_from_slice(&render_response(400, &[], MALFORMED, false));
        conn.close_after_flush = true;
        conn.state = ConnState::Idle;
        conn.timer_seq += 1; // cancel the idle timer
        self.flush(token);
    }

    fn dispatch(&mut self, token: u64, request: Request) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.served += 1;
        conn.req_wants_close = request.wants_close();
        conn.state = ConnState::InFlight;
        conn.timer_seq += 1; // no idle timeout while a handler owns it
        self.sync_interest(token);
        let responder = Responder {
            token,
            shared: Arc::clone(&self.shared),
        };
        // Send fails only once the pool is gone, i.e. during teardown.
        let _ = self.tx.send((request, responder));
    }

    fn arm_idle_timer(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.timer_seq += 1;
        let seq = conn.timer_seq;
        let deadline = Instant::now() + self.cfg.idle_timeout;
        self.wheel.schedule(token, seq, deadline);
    }

    /// Writes as much buffered output as the socket accepts right now.
    fn flush(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.out_pos >= conn.out.len() {
                conn.out.clear();
                conn.out_pos = 0;
                if conn.close_after_flush {
                    self.close_conn(token);
                } else {
                    self.sync_interest(token);
                }
                return;
            }
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.sync_interest(token);
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
    }

    /// Re-registers the connection for exactly the readiness it needs:
    /// readable only between requests, writable only with queued output.
    fn sync_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let desired = Interest {
            readable: conn.state == ConnState::Idle && !conn.close_after_flush,
            writable: conn.out_pos < conn.out.len(),
            // A noted half-close must leave the mask, or the level-
            // triggered poller re-reports it forever (see
            // `Conn::peer_half_closed`).
            rdhup: !conn.peer_half_closed,
        };
        if desired != conn.interest && self.poller.modify(&conn.stream, token, desired).is_ok() {
            conn.interest = desired;
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.delete(&conn.stream);
            self.shared.live.lock().expect("live lock").remove(&token);
            self.shared.open_connections.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream as BlockingStream;

    fn start_echo_front(
        idle_timeout: Duration,
        max_connections: usize,
    ) -> (
        std::net::SocketAddr,
        FrontHandle,
        std::thread::JoinHandle<()>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let front = HttpFront::bind(
            listener,
            FrontConfig {
                name: "front-test",
                idle_timeout,
                max_requests: 1024,
                max_connections,
                handler_threads: 2,
            },
        )
        .expect("front");
        let handle = front.handle();
        let join = std::thread::spawn(move || {
            front
                .run(Arc::new(|req: Request, responder: Responder| {
                    if req.path == "/stream" {
                        let mut stream = responder.begin_stream(200);
                        stream.chunk(b"one\n");
                        stream.chunk(b"two\n");
                        stream.finish();
                    } else {
                        responder.respond(200, &[], req.path.as_bytes());
                    }
                }))
                .expect("run");
        });
        (addr, handle, join)
    }

    fn get(stream: &mut BlockingStream, path: &str) -> (u16, String, String) {
        write!(stream, "GET {path} HTTP/1.1\r\nhost: t\r\n\r\n").expect("write");
        read_reply(stream)
    }

    fn read_reply(stream: &mut BlockingStream) -> (u16, String, String) {
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .expect("code")
            .parse()
            .expect("u16");
        let mut connection = String::new();
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).expect("header");
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some(v) = header.strip_prefix("connection: ") {
                connection = v.to_string();
            }
            if let Some(v) = header.strip_prefix("content-length: ") {
                content_length = v.parse().expect("len");
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        (status, connection, String::from_utf8(body).expect("utf8"))
    }

    #[test]
    fn serves_keep_alive_requests_and_drains() {
        let (addr, handle, join) = start_echo_front(Duration::from_secs(5), 64);
        let mut stream = BlockingStream::connect(addr).expect("connect");
        for i in 0..3 {
            let (status, connection, body) = get(&mut stream, &format!("/ping/{i}"));
            assert_eq!(status, 200);
            assert_eq!(connection, "keep-alive");
            assert_eq!(body, format!("/ping/{i}"));
        }
        assert!(handle.counters().open_connections >= 1);
        handle.shutdown();
        join.join().expect("reactor exits");
        assert_eq!(handle.counters().open_connections, 0);
    }

    #[test]
    fn streams_chunks_then_closes() {
        let (addr, handle, join) = start_echo_front(Duration::from_secs(5), 64);
        let mut stream = BlockingStream::connect(addr).expect("connect");
        write!(stream, "GET /stream HTTP/1.1\r\nhost: t\r\n\r\n").expect("write");
        let mut reader = BufReader::new(stream);
        let mut all = Vec::new();
        reader.read_to_end(&mut all).expect("read to close");
        let text = String::from_utf8(all).expect("utf8");
        assert!(text.contains("transfer-encoding: chunked"));
        assert!(text.contains("one\n") && text.contains("two\n"));
        assert!(text.ends_with("0\r\n\r\n"), "terminal chunk then close");
        handle.shutdown();
        join.join().expect("reactor exits");
    }

    #[test]
    fn idle_connections_time_out() {
        let (addr, handle, join) = start_echo_front(Duration::from_millis(80), 64);
        let mut stream = BlockingStream::connect(addr).expect("connect");
        // Half a request, then silence: the slow-loris peer is cut off.
        write!(stream, "GET /slow HTTP/1.1\r\nhost:").expect("write");
        let mut end = Vec::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let n = stream.read_to_end(&mut end).expect("server closes");
        assert_eq!(n, 0, "no response bytes for a half request");
        assert!(handle.counters().timeouts >= 1);
        handle.shutdown();
        join.join().expect("reactor exits");
    }

    /// A front whose `/park` handler stashes the responder instead of
    /// answering — the reactor-side shape of a `?wait=1` long-poll.
    fn start_parking_front(
        idle_timeout: Duration,
    ) -> (
        std::net::SocketAddr,
        FrontHandle,
        std::thread::JoinHandle<()>,
        Arc<Mutex<Vec<Responder>>>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let front = HttpFront::bind(
            listener,
            FrontConfig {
                name: "front-park-test",
                idle_timeout,
                max_requests: 1024,
                max_connections: 64,
                handler_threads: 2,
            },
        )
        .expect("front");
        let handle = front.handle();
        let parked: Arc<Mutex<Vec<Responder>>> = Arc::new(Mutex::new(Vec::new()));
        let parked_in = Arc::clone(&parked);
        let join = std::thread::spawn(move || {
            front
                .run(Arc::new(move |req: Request, responder: Responder| {
                    if req.path == "/park" {
                        parked_in.lock().expect("parked").push(responder);
                    } else {
                        responder.respond(200, &[], req.path.as_bytes());
                    }
                }))
                .expect("run");
        });
        (addr, handle, join, parked)
    }

    #[test]
    fn vanished_inflight_client_is_reaped_and_goes_dead() {
        let (addr, handle, join, parked) = start_parking_front(Duration::from_millis(80));
        let mut stream = BlockingStream::connect(addr).expect("connect");
        write!(stream, "GET /park HTTP/1.1\r\nhost: t\r\n\r\n").expect("write");
        // Wait for the handler to park the responder, then vanish.
        let deadline = Instant::now() + Duration::from_secs(5);
        while parked.lock().expect("parked").is_empty() {
            assert!(Instant::now() < deadline, "request never dispatched");
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(stream);
        // The half-close is noted once (no busy loop) and the idle timer
        // reaps the connection, flipping `is_live()` so a waiter pump
        // would drop the parked reply.
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.counters().open_connections != 0 {
            assert!(Instant::now() < deadline, "vanished client never reaped");
            std::thread::sleep(Duration::from_millis(5));
        }
        let responder = parked.lock().expect("parked").pop().expect("one parked");
        assert!(!responder.is_live(), "reaped connection must read as dead");
        handle.shutdown();
        join.join().expect("reactor exits");
    }

    #[test]
    fn half_closed_client_still_gets_its_pending_response() {
        let (addr, handle, join, parked) = start_parking_front(Duration::from_secs(5));
        let mut stream = BlockingStream::connect(addr).expect("connect");
        write!(stream, "GET /park HTTP/1.1\r\nhost: t\r\n\r\n").expect("write");
        let deadline = Instant::now() + Duration::from_secs(5);
        while parked.lock().expect("parked").is_empty() {
            assert!(Instant::now() < deadline, "request never dispatched");
            std::thread::sleep(Duration::from_millis(5));
        }
        // Half-close: no more requests will come, but the client still
        // reads. The pending response must arrive and then close the
        // connection.
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        std::thread::sleep(Duration::from_millis(50));
        let responder = parked.lock().expect("parked").pop().expect("one parked");
        responder.respond(200, &[], b"late answer");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let (status, connection, body) = read_reply(&mut stream);
        assert_eq!(status, 200);
        assert_eq!(connection, "close", "half-closed peer gets a final close");
        assert_eq!(body, "late answer");
        handle.shutdown();
        join.join().expect("reactor exits");
    }

    #[test]
    fn accepts_beyond_the_cap_get_a_503() {
        let (addr, handle, join) = start_echo_front(Duration::from_secs(5), 2);
        let mut keep1 = BlockingStream::connect(addr).expect("connect");
        let mut keep2 = BlockingStream::connect(addr).expect("connect");
        let (s1, ..) = get(&mut keep1, "/a");
        let (s2, ..) = get(&mut keep2, "/b");
        assert_eq!((s1, s2), (200, 200));
        let mut over = BlockingStream::connect(addr).expect("connect");
        over.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let (status, connection, body) = read_reply(&mut over);
        assert_eq!(status, 503);
        assert_eq!(connection, "close");
        assert!(body.contains("connection limit reached"));
        handle.shutdown();
        join.join().expect("reactor exits");
    }
}
