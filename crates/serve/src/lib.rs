//! `dominod` — a long-running phase-assignment service over the
//! [`domino_engine`] batch flow engine, plus the `dominoc` CLI that talks
//! to it.
//!
//! PR 1–4 made single flows fast and deterministic; this crate makes them
//! *servable*: instead of paying BDD/search/sim warmup per `dominoc`
//! invocation, a resident `dominod` process keeps one
//! [`FlowEngine`](domino_engine::FlowEngine) and one shared
//! [`ResultCache`](domino_engine::ResultCache) hot across every caller.
//! The wire layer is hand-rolled HTTP/1.1 on [`std::net`] — the build
//! environment has no registry access, so (following the `crates/compat`
//! precedent) there are no external dependencies.
//!
//! # Endpoints
//!
//! | endpoint | purpose |
//! |---|---|
//! | `POST /jobs` | submit a [`JobSpec`](domino_engine::JobSpec) JSON body; `202` + id, or `429` + `Retry-After` when the admission queue is full; `?wait=1` blocks and answers with the outcome bytes (one round trip) |
//! | `GET /jobs/:id` | status document (`?wait=1` long-polls until terminal) |
//! | `GET /jobs/:id/result` | the engine's exact serialized outcome bytes — byte-identical to `dominoc run` |
//! | `GET /jobs/:id/events` | chunked stream of lifecycle events, one JSON line each |
//! | `DELETE /jobs/:id` | cooperative cancellation |
//! | `GET /metrics` | queue depth, lifecycle counters, stage timings, cache hit/miss |
//! | `GET /healthz` | liveness |
//! | `POST /shutdown` | graceful drain: finish admitted jobs, then exit |
//!
//! # Example
//!
//! ```
//! use domino_serve::{ServeClient, ServeConfig, Server};
//! use domino_engine::JobSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = Server::start(ServeConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     workers: 2,
//!     ..ServeConfig::default()
//! })?;
//! let client = ServeClient::new(server.addr().to_string());
//!
//! let mut spec = JobSpec::suite("frg1");
//! spec.sim.cycles = 256; // keep the doctest quick
//! let admitted = client.submit(&spec)?;
//! let outcome_json = client.result(admitted.id, true)?; // blocks until done
//! assert!(outcome_json.starts_with("{\"name\":\"frg1\""));
//!
//! server.shutdown(); // drain and join
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod client;
pub mod config;
pub mod front;
pub mod http;
pub mod protocol;
mod registry;
mod server;

pub use client::{ClientBuilder, ClientError, RetryPolicy, ServeClient};
pub use config::{ArgTable, ParsedArgs, DEFAULT_MAX_CONNECTIONS};
pub use protocol::{
    CacheCounters, ErrorReply, EventKind, EventRecord, FailpointCounter, JobStatus, MetricsDoc,
    MetricsReply, ReactorCounters, StatusReply, SubmitReply,
};
pub use registry::{AdmitError, Registry, RETAINED_TERMINAL_JOBS};
pub use server::{ServeConfig, Server, ShutdownHandle, DEFAULT_PORT};
